/**
 * @file
 * Bit-sliced evaluation of up to 64 t-error-correcting BCH words at
 * once.
 *
 * BCH encoding and power-sum syndrome evaluation are GF(2)-linear, so
 * both become masked XOR-reductions over precomputed per-position
 * matrices in the transposed gf2::BitSlice64 layout, exactly like the
 * sliced Hamming datapath. What is *not* linear is the correction step
 * (Berlekamp-Massey + Chien search), so the sliced decoder resolves it
 * through a syndrome -> decode-action memo table instead:
 *
 *  - per lane, the packed 2t*m-bit syndrome is extracted with a 64x64
 *    bit transpose and looked up in the table;
 *  - a hit applies the memoized data-bit flips with one XOR per flip;
 *  - a miss falls back to the scalar allocation-free
 *    BchCode::decodeInto and populates the table.
 *
 * The memoization is *exact*: BM + Chien are pure syndrome decoding,
 * so the decode action (which positions to flip, or "detected
 * uncorrectable") is a function of the syndrome alone. Under the
 * repository's fault models each word sees few distinct pre-correction
 * error patterns, so hit rates approach 1 after warm-up and steady
 * state costs ~one hash lookup per erroneous lane.
 *
 * All lanes must carry the *same* code function: a BCH code is fully
 * determined by (k, t) (there is no per-lane arrangement freedom as in
 * the random Hamming codes), which is also what makes the shared memo
 * table valid across lanes. Results are bit-identical to the scalar
 * BchCode::decode path per lane.
 *
 * Thread safety: the memo table and scratch are per-instance mutable
 * state; decodeData() on a shared instance needs external
 * synchronization. Engines own their instance, so this never arises on
 * the standard paths.
 */

#ifndef HARP_ECC_SLICED_BCH_HH
#define HARP_ECC_SLICED_BCH_HH

#include <array>
#include <cstdint>
#include <unordered_map>
#include <vector>

#include "ecc/bch_general.hh"
#include "ecc/sliced_code.hh"
#include "gf2/bit_slice.hh"
#include "gf2/bit_vector.hh"

namespace harp::ecc {

/**
 * Up to 64 words of one t-error-correcting BCH code evaluated
 * lane-parallel, with memoized syndrome decoding.
 */
class SlicedBchCode final : public SlicedCode
{
  public:
    /**
     * Build from one code per lane (1..64 entries). All entries must
     * describe the same code: equal k and equal generator polynomial.
     * The codes are only read during construction; the fallback
     * decoder is a private copy, so no references are retained.
     *
     * @param prewarm Pre-populate the syndrome->action memo with every
     *        error pattern of weight <= t at construction (see
     *        memoPrewarmed()). On by default; automatically skipped
     *        when the enumeration would exceed prewarmEntryCap.
     */
    explicit SlicedBchCode(const std::vector<const BchCode *> &codes,
                           bool prewarm = true);

    /** Homogeneous convenience: the same code in @p lanes lanes. */
    SlicedBchCode(const BchCode &code, std::size_t lanes,
                  bool prewarm = true);

    /**
     * Largest sum_{w=1..t} C(n, w) the construction pre-warm will
     * enumerate; beyond it the memo starts cold (memoPrewarmed() ==
     * false) and fills through scalar-decode fallbacks as before. The
     * cap bounds both construction time and table memory (~100 bytes
     * per entry).
     */
    static constexpr std::size_t prewarmEntryCap = 1u << 17;

    std::size_t k() const override { return code_.k(); }
    std::size_t n() const override { return code_.n(); }
    std::size_t lanes() const override { return lanes_; }
    /** Correction capability t shared by all lanes. */
    std::size_t t() const { return code_.t(); }

    void encode(const gf2::BitSlice64 &data,
                gf2::BitSlice64 &codeword) const override;

    /**
     * Per-lane packed power-sum syndromes of a received codeword
     * slice: @p out[b] gets the lane mask of syndrome bit b, where bit
     * b = j*m + u is bit u of S_{j+1} over GF(2^m) (b <
     * syndromeBits()).
     */
    void syndromes(const gf2::BitSlice64 &received,
                   std::uint64_t *out) const;

    /** Packed syndrome width 2t*m in bits. */
    std::size_t syndromeBits() const { return syndromeBits_; }

    void decodeData(const gf2::BitSlice64 &received,
                    gf2::BitSlice64 &data_out) const override;

    /** Memo lookups that hit since construction. */
    std::uint64_t memoHits() const { return memoHits_; }
    /** Memo lookups that missed (scalar-decode fallbacks). */
    std::uint64_t memoMisses() const { return memoMisses_; }
    /** Distinct nonzero syndromes memoized so far. */
    std::size_t memoEntries() const { return memo_.size(); }
    /**
     * True iff construction pre-warmed the memo with every weight <= t
     * error syndrome. Pre-warming needs no decoder runs — a weight <=
     * t pattern is corrected exactly (minimum distance >= 2t+1), so
     * its action is its own data-bit positions and its syndrome is the
     * XOR of the per-position columns — and eliminates the cold-start
     * share of the miss rate: the only remaining fallbacks are
     * uncorrectable (weight > t) patterns.
     */
    bool memoPrewarmed() const { return memoPrewarmed_; }

  private:
    /** Packed syndrome key (up to 256 bits; 2t*m <= 224 for t <= 8,
     *  m <= 14). Unused words are zero. */
    struct MemoKey
    {
        std::array<std::uint64_t, 4> words{};
        bool operator==(const MemoKey &o) const { return words == o.words; }
    };
    struct MemoKeyHash
    {
        std::size_t operator()(const MemoKey &key) const
        {
            std::uint64_t h = 1469598103934665603ull;
            for (const std::uint64_t w : key.words) {
                h ^= w;
                h *= 1099511628211ull;
            }
            return static_cast<std::size_t>(h);
        }
    };
    /** Memoized outcome of one nonzero syndrome: the data-bit flips to
     *  apply. Parity-only corrections and detected-uncorrectable
     *  syndromes both memoize an empty flip list — either way the
     *  dataword is left untouched, exactly as the scalar decoder
     *  reports it. */
    struct MemoAction
    {
        std::uint8_t numFlips = 0;
        std::array<std::uint16_t, 8> flips{};
    };

    void build(const std::vector<const BchCode *> &codes, bool prewarm);
    void prewarmMemo();
    const MemoAction &lookupAction(const MemoKey &key,
                                   const gf2::BitSlice64 &received,
                                   std::size_t lane) const;

    BchCode code_;
    std::size_t lanes_ = 0;
    std::size_t syndromeBits_ = 0;
    /** CSR of parity-bit indices per data position: encoding XORs data
     *  lane i into parity lanes parityIdx_[parityOff_[i]..[i+1]). */
    std::vector<std::uint32_t> parityOff_;
    std::vector<std::uint32_t> parityIdx_;
    /** CSR of packed-syndrome bit indices per codeword position. */
    std::vector<std::uint32_t> synOff_;
    std::vector<std::uint32_t> synIdx_;

    // Decode scratch + memo (see the thread-safety note above).
    mutable std::vector<std::uint64_t> synScratch_;
    mutable std::array<std::array<std::uint64_t, 64>, 4> laneKeyScratch_;
    mutable gf2::BitVector wordScratch_;
    mutable BchGeneralDecodeResult decodeScratch_;
    mutable std::unordered_map<MemoKey, MemoAction, MemoKeyHash> memo_;
    mutable std::uint64_t memoHits_ = 0;
    mutable std::uint64_t memoMisses_ = 0;
    bool memoPrewarmed_ = false;
};

} // namespace harp::ecc

#endif // HARP_ECC_SLICED_BCH_HH
