/**
 * @file
 * Bit-sliced evaluation of up to W*64 t-error-correcting BCH words at
 * once.
 *
 * BCH encoding and power-sum syndrome evaluation are GF(2)-linear, so
 * both become masked XOR-reductions over precomputed per-position
 * matrices in the transposed gf2::BitSliceW layout, exactly like the
 * sliced Hamming datapath. What is *not* linear is the correction step
 * (Berlekamp-Massey + Chien search), so the sliced decoder resolves it
 * through a syndrome -> decode-action memo table instead:
 *
 *  - per lane, the packed 2t*m-bit syndrome is extracted with a 64x64
 *    bit transpose (one per 64-lane sub-word) and looked up;
 *  - a hit applies the memoized data-bit flips with one XOR per flip;
 *  - a miss falls back to the scalar allocation-free
 *    BchCode::decodeInto and populates the table.
 *
 * The memoization is *exact*: BM + Chien are pure syndrome decoding,
 * so the decode action (which positions to flip, or "detected
 * uncorrectable") is a function of the syndrome alone. Under the
 * repository's fault models each word sees few distinct pre-correction
 * error patterns, so hit rates approach 1 after warm-up and steady
 * state costs ~one hash lookup per erroneous lane.
 *
 * All lanes must carry the *same* code function: a BCH code is fully
 * determined by (k, t) (there is no per-lane arrangement freedom as in
 * the random Hamming codes), which is also what makes the shared memo
 * table valid across lanes. Results are bit-identical to the scalar
 * BchCode::decode path per lane at every width.
 *
 * Thread safety: the memo table (ecc/sliced_bch_memo.hh) is internally
 * synchronized and *shared by copies* — copying a SlicedBchCodeW gives
 * the copy private decode scratch but the same memo, so the per-worker
 * datapath pattern for sharded jobs is simply one copy per worker. The
 * decode scratch itself is per-instance mutable state, so decodeData()
 * on one shared *instance* still needs external synchronization; never
 * share an instance across pool workers, share copies.
 */

#ifndef HARP_ECC_SLICED_BCH_HH
#define HARP_ECC_SLICED_BCH_HH

#include <array>
#include <cstdint>
#include <memory>
#include <vector>

#include "ecc/bch_general.hh"
#include "ecc/sliced_bch_memo.hh"
#include "ecc/sliced_code.hh"
#include "gf2/bit_slice.hh"
#include "gf2/bit_vector.hh"
#include "gf2/lane.hh"

namespace harp::ecc {

/**
 * Up to W*64 words of one t-error-correcting BCH code evaluated
 * lane-parallel, with memoized syndrome decoding.
 *
 * Copyable; copies share the syndrome memo (thread-safe) while owning
 * private decode scratch, which makes a copy the unit of per-worker
 * parallelism.
 */
template <std::size_t W>
class SlicedBchCodeW final : public SlicedCodeW<W>
{
  public:
    using Lane = gf2::LaneOf<W>;

    /**
     * Build from one code per lane (1..W*64 entries). All entries must
     * describe the same code: equal k and equal generator polynomial.
     * The codes are only read during construction; the fallback
     * decoder is a private copy, so no references are retained.
     *
     * @param prewarm Pre-populate the syndrome->action memo with every
     *        error pattern of weight <= t at construction (see
     *        memoPrewarmed()). On by default; automatically skipped
     *        when the enumeration would exceed prewarmEntryCap.
     * @param memo  Share an existing memo (e.g. across independently
     *        constructed per-shard datapaths of the same code); null
     *        allocates a fresh one. A shared memo that is already
     *        prewarmed skips re-enumeration.
     */
    explicit SlicedBchCodeW(const std::vector<const BchCode *> &codes,
                            bool prewarm = true,
                            std::shared_ptr<SlicedBchMemo> memo = nullptr);

    /** Homogeneous convenience: the same code in @p lanes lanes. */
    SlicedBchCodeW(const BchCode &code, std::size_t lanes,
                   bool prewarm = true,
                   std::shared_ptr<SlicedBchMemo> memo = nullptr);

    /**
     * Largest sum_{w=1..t} C(n, w) the construction pre-warm will
     * enumerate; beyond it the memo starts cold (memoPrewarmed() ==
     * false) and fills through scalar-decode fallbacks as before. The
     * cap bounds both construction time and table memory (~100 bytes
     * per entry).
     */
    static constexpr std::size_t prewarmEntryCap = 1u << 17;

    std::size_t k() const override { return code_.k(); }
    std::size_t n() const override { return code_.n(); }
    std::size_t lanes() const override { return lanes_; }
    /** Correction capability t shared by all lanes. */
    std::size_t t() const { return code_.t(); }

    void encode(const gf2::BitSliceW<W> &data,
                gf2::BitSliceW<W> &codeword) const override;

    /**
     * Per-lane packed power-sum syndromes of a received codeword
     * slice: @p out[b] gets the lane mask of syndrome bit b, where bit
     * b = j*m + u is bit u of S_{j+1} over GF(2^m) (b <
     * syndromeBits()).
     */
    void syndromes(const gf2::BitSliceW<W> &received, Lane *out) const;

    /** Packed syndrome width 2t*m in bits. */
    std::size_t syndromeBits() const { return syndromeBits_; }

    void decodeData(const gf2::BitSliceW<W> &received,
                    gf2::BitSliceW<W> &data_out) const override;

    /** The shared syndrome memo (never null). */
    const std::shared_ptr<SlicedBchMemo> &memo() const { return memo_; }

    /** Memo lookups that hit since memo construction. */
    std::uint64_t memoHits() const { return memo_->hits(); }
    /** Memo lookups that missed (scalar-decode fallbacks). */
    std::uint64_t memoMisses() const { return memo_->misses(); }
    /** Distinct nonzero syndromes memoized so far. */
    std::size_t memoEntries() const { return memo_->entries(); }
    /**
     * True iff construction pre-warmed the memo with every weight <= t
     * error syndrome. Pre-warming needs no decoder runs — a weight <=
     * t pattern is corrected exactly (minimum distance >= 2t+1), so
     * its action is its own data-bit positions and its syndrome is the
     * XOR of the per-position columns — and eliminates the cold-start
     * share of the miss rate: the only remaining fallbacks are
     * uncorrectable (weight > t) patterns.
     */
    bool memoPrewarmed() const { return memo_->prewarmed(); }

  private:
    using MemoKey = SlicedBchMemo::Key;
    using MemoAction = SlicedBchMemo::Action;

    void build(const std::vector<const BchCode *> &codes, bool prewarm);
    void prewarmMemo();
    const MemoAction &lookupAction(const MemoKey &key,
                                   const gf2::BitSliceW<W> &received,
                                   std::size_t lane) const;

    BchCode code_;
    std::size_t lanes_ = 0;
    std::size_t syndromeBits_ = 0;
    /** CSR of parity-bit indices per data position: encoding XORs data
     *  lane i into parity lanes parityIdx_[parityOff_[i]..[i+1]). */
    std::vector<std::uint32_t> parityOff_;
    std::vector<std::uint32_t> parityIdx_;
    /** CSR of packed-syndrome bit indices per codeword position. */
    std::vector<std::uint32_t> synOff_;
    std::vector<std::uint32_t> synIdx_;

    // Private decode scratch (per instance; see thread-safety note) and
    // the shared, internally synchronized memo.
    mutable std::vector<Lane> synScratch_;
    mutable std::array<std::array<std::uint64_t, 64>, 4> laneKeyScratch_;
    mutable gf2::BitVector wordScratch_;
    mutable BchGeneralDecodeResult decodeScratch_;
    std::shared_ptr<SlicedBchMemo> memo_;
};

/** The historical 64-lane name. */
using SlicedBchCode = SlicedBchCodeW<1>;
/** The wide 256-lane variant. */
using SlicedBchCode256 = SlicedBchCodeW<4>;

extern template class SlicedBchCodeW<1>;
extern template class SlicedBchCodeW<4>;

} // namespace harp::ecc

#endif // HARP_ECC_SLICED_BCH_HH
