#include "ecc/gf2_poly.hh"

#include <bit>
#include <cassert>
#include <set>
#include <vector>

namespace harp::ecc {

std::uint64_t
polyMultiply(std::uint64_t a, std::uint64_t b)
{
    std::uint64_t result = 0;
    for (int i = 0; i < 64 && (a >> i) != 0; ++i)
        if ((a >> i) & 1)
            result ^= b << i;
    return result;
}

int
polyDegree(std::uint64_t poly)
{
    assert(poly != 0);
    return 63 - std::countl_zero(poly);
}

std::uint64_t
minimalPolynomial(const Gf2m &field, std::uint64_t e)
{
    // Conjugacy class of exponents under squaring.
    std::set<std::uint64_t> exponents;
    std::uint64_t exp = e % field.order();
    while (exponents.insert(exp).second)
        exp = (exp * 2) % field.order();

    // poly(x) = prod (x + alpha^exp); the product over a full conjugacy
    // class has GF(2) coefficients.
    std::vector<Gf2m::Element> coeffs = {1};
    for (const std::uint64_t root_exp : exponents) {
        const Gf2m::Element root = field.alphaPow(root_exp);
        std::vector<Gf2m::Element> next(coeffs.size() + 1, 0);
        for (std::size_t i = 0; i < coeffs.size(); ++i) {
            next[i + 1] ^= coeffs[i];
            next[i] ^= field.multiply(coeffs[i], root);
        }
        coeffs = std::move(next);
    }
    std::uint64_t mask = 0;
    for (std::size_t i = 0; i < coeffs.size(); ++i) {
        assert(coeffs[i] <= 1 && "minimal polynomial is over GF(2)");
        if (coeffs[i])
            mask |= std::uint64_t{1} << i;
    }
    return mask;
}

} // namespace harp::ecc
