/**
 * @file
 * Double-error-correcting (DEC) binary BCH code with systematic
 * encoding, shortened to an arbitrary dataword length.
 *
 * This implements the "stronger on-die ECC" generalization the paper
 * defers to future work (section 2.5.1 footnote 9, section 6.3.2): with
 * a DEC on-die code, at most N = 2 indirect errors can occur
 * concurrently, so HARP's reactive phase needs a double-error-correcting
 * secondary ECC. The extension bench (`bench/extension_dec_on_die_ecc`)
 * demonstrates exactly that bound.
 *
 * Codeword layout matches the repository convention: positions [0, k)
 * are data bits, positions [k, k+p) are parity bits (p = 2m for BCH over
 * GF(2^m)). Internally data bit i is polynomial coefficient x^(p+i) and
 * parity bit j is coefficient x^j of a code polynomial divisible by the
 * generator g(x) = m1(x) · m3(x).
 */

#ifndef HARP_ECC_BCH_CODE_HH
#define HARP_ECC_BCH_CODE_HH

#include <cstdint>
#include <optional>
#include <vector>

#include "ecc/gf2m.hh"
#include "gf2/bit_vector.hh"

namespace harp::ecc {

/** Outcome of one DEC BCH decode. */
struct BchDecodeResult
{
    /** Post-correction dataword d' (length k). */
    gf2::BitVector dataword;
    /** Codeword positions the decoder flipped (0, 1 or 2 entries). */
    std::vector<std::size_t> correctedPositions;
    /** True when the syndromes were inconsistent with <= 2 in-range
     *  errors; the decoder then performs no correction. */
    bool detectedUncorrectable = false;
};

/**
 * Shortened systematic DEC BCH code over GF(2^m).
 */
class BchDecCode
{
  public:
    /**
     * Build a DEC BCH code for @p k data bits. The field degree m is
     * the smallest with 2^m - 1 - 2m >= k (m = 7 for the (78,64)
     * configuration mirroring the paper's 64-bit on-die ECC words).
     */
    explicit BchDecCode(std::size_t k);

    std::size_t k() const { return k_; }
    /** Parity-bit count p = 2m. */
    std::size_t p() const { return parityBits_; }
    std::size_t n() const { return k_ + parityBits_; }
    /** Correction capability t = 2. */
    static constexpr std::size_t correctionCapability() { return 2; }

    const Gf2m &field() const { return field_; }

    bool isDataPosition(std::size_t pos) const { return pos < k_; }

    /** Encode dataword (length k) into codeword (length n). */
    gf2::BitVector encode(const gf2::BitVector &dataword) const;

    /** Syndrome decode with up-to-two-error correction. */
    BchDecodeResult decode(const gf2::BitVector &codeword) const;

    /**
     * Post-correction *data* error positions produced by a raw error
     * pattern (valid for any linear code: decode the error vector
     * against the zero codeword). Used by the at-risk analyses.
     */
    std::vector<std::size_t>
    decodeErrorPattern(const std::vector<std::size_t> &error_positions)
        const;

    /**
     * Parity row @p j as a length-k vector over the dataword: parity bit
     * j of the codeword equals row · d (parity is linear in the data).
     */
    const gf2::BitVector &parityRow(std::size_t j) const
    {
        return parityRows_[j];
    }

    /** Generator polynomial g(x) as a GF(2) bitmask (bit i = coeff x^i). */
    std::uint64_t generatorPolynomial() const { return generator_; }

  private:
    /** Polynomial coefficient index of codeword position @p pos. */
    std::size_t coefficientOf(std::size_t pos) const;
    /** Codeword position of polynomial coefficient @p coeff, if it maps
     *  into the shortened code. */
    std::optional<std::size_t> positionOf(std::size_t coeff) const;

    /** Syndromes (S1, S3) of a set of flipped coefficient indices. */
    void syndromesOf(const std::vector<std::size_t> &coeffs,
                     Gf2m::Element &s1, Gf2m::Element &s3) const;

    /** Error-coefficient candidates (<= 2) for syndromes (S1, S3);
     *  nullopt when inconsistent with <= 2 in-range errors. */
    std::optional<std::vector<std::size_t>>
    locateErrors(Gf2m::Element s1, Gf2m::Element s3) const;

    std::size_t k_;
    Gf2m field_;
    std::size_t parityBits_;
    std::uint64_t generator_;
    /** x^(p+i) mod g(x) for data bit i, as a p-bit parity mask. */
    std::vector<std::uint32_t> parityMasks_;
    std::vector<gf2::BitVector> parityRows_;
    /** Per codeword position: alpha^coeff and alpha^(3*coeff). */
    std::vector<Gf2m::Element> alphaPow_;
    std::vector<Gf2m::Element> alpha3Pow_;
};

} // namespace harp::ecc

#endif // HARP_ECC_BCH_CODE_HH
