#include "ecc/gf2m.hh"

#include <cassert>
#include <stdexcept>

namespace harp::ecc {

namespace {

/** Primitive polynomials over GF(2), indexed by degree m (bit i = x^i). */
constexpr std::uint32_t primitivePolys[] = {
    0,      0,      0x7,    0xB,     0x13,    0x25,   0x43,   0x89,
    0x11D,  0x211,  0x409,  0x805,   0x1053,  0x201B, 0x4443, 0x8003,
    0x1100B,
};

} // namespace

Gf2m::Gf2m(unsigned m)
    : m_(m)
{
    if (m < 2 || m > 16)
        throw std::invalid_argument("Gf2m: m must be in [2, 16]");
    poly_ = primitivePolys[m];

    antilog_.assign(order(), 0);
    logTable_.assign(size(), 0);
    Element x = 1;
    for (std::uint32_t i = 0; i < order(); ++i) {
        antilog_[i] = x;
        logTable_[x] = i;
        // Multiply by alpha (shift) and reduce by the primitive poly.
        x <<= 1;
        if (x & size())
            x ^= poly_;
    }
    assert(x == 1 && "alpha is primitive: order must be 2^m - 1");
}

Gf2m::Element
Gf2m::alphaPow(std::uint64_t e) const
{
    return antilog_[e % order()];
}

std::uint32_t
Gf2m::log(Element x) const
{
    assert(x != 0 && x < size());
    return logTable_[x];
}

Gf2m::Element
Gf2m::multiply(Element a, Element b) const
{
    if (a == 0 || b == 0)
        return 0;
    return antilog_[(log(a) + log(b)) % order()];
}

Gf2m::Element
Gf2m::inverse(Element a) const
{
    assert(a != 0);
    return antilog_[(order() - log(a)) % order()];
}

Gf2m::Element
Gf2m::divide(Element a, Element b) const
{
    assert(b != 0);
    if (a == 0)
        return 0;
    return antilog_[(log(a) + order() - log(b)) % order()];
}

Gf2m::Element
Gf2m::power(Element a, std::uint64_t e) const
{
    if (e == 0)
        return 1;
    if (a == 0)
        return 0;
    return antilog_[(static_cast<std::uint64_t>(log(a)) * (e % order())) %
                    order()];
}

Gf2m::Element
Gf2m::trace(Element x) const
{
    Element acc = 0;
    Element term = x;
    for (unsigned i = 0; i < m_; ++i) {
        acc ^= term;
        term = multiply(term, term); // Frobenius: term^2
    }
    assert(acc == 0 || acc == 1);
    return acc;
}

Gf2m::Element
Gf2m::solveQuadratic(Element c) const
{
    if (c == 0)
        return 0; // z^2 + z = 0 -> z = 0 (or 1)
    if (trace(c) != 0)
        return 0xFFFFFFFF;
    // Half-trace for odd m: z = sum_{i=0}^{(m-1)/2} c^(2^(2i)).
    if (m_ % 2 == 1) {
        Element z = 0;
        Element term = c;
        for (unsigned i = 0; i <= (m_ - 1) / 2; ++i) {
            z ^= term;
            term = multiply(term, term);
            term = multiply(term, term); // term^(4)
        }
        return z;
    }
    // Even m: brute-force over the field (tables make this cheap; the
    // DEC decoder uses odd-m fields in practice).
    for (Element z = 0; z < size(); ++z)
        if (static_cast<Element>(multiply(z, z) ^ z) == c)
            return z;
    return 0xFFFFFFFF;
}

} // namespace harp::ecc
