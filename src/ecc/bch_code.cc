#include "ecc/bch_code.hh"

#include <algorithm>
#include <cassert>
#include <stdexcept>

#include "ecc/gf2_poly.hh"

namespace harp::ecc {

namespace {

/** Smallest field degree m with 2^m - 1 - 2m >= k (room for the data). */
unsigned
fieldDegreeFor(std::size_t k)
{
    for (unsigned m = 4; m <= 16; ++m) {
        const std::size_t n_full = (std::size_t{1} << m) - 1;
        if (n_full >= k + 2 * m)
            return m;
    }
    throw std::invalid_argument("BchDecCode: k too large");
}

} // namespace

BchDecCode::BchDecCode(std::size_t k)
    : k_(k), field_(fieldDegreeFor(k))
{
    // Generator g(x) = m1(x) * m3(x); for DEC BCH these are the minimal
    // polynomials of alpha and alpha^3 (distinct irreducibles for m>=3).
    const std::uint64_t m1 = minimalPolynomial(field_, 1);
    const std::uint64_t m3 = minimalPolynomial(field_, 3);
    assert(m1 != m3);
    generator_ = polyMultiply(m1, m3);
    parityBits_ = static_cast<std::size_t>(polyDegree(generator_));
    if (k_ + parityBits_ > field_.order())
        throw std::invalid_argument("BchDecCode: shortened length exceeds "
                                    "the mother code");

    // Parity mask of data bit i: x^(p+i) mod g(x), computed
    // incrementally (multiply by x, reduce).
    parityMasks_.assign(k_, 0);
    std::uint64_t rem = 1; // x^0
    for (std::size_t c = 1; c <= parityBits_ + k_ - 1; ++c) {
        rem <<= 1;
        if ((rem >> parityBits_) & 1)
            rem ^= generator_;
        if (c >= parityBits_)
            parityMasks_[c - parityBits_] =
                static_cast<std::uint32_t>(rem);
    }

    parityRows_.assign(parityBits_, gf2::BitVector(k_));
    for (std::size_t i = 0; i < k_; ++i)
        for (std::size_t j = 0; j < parityBits_; ++j)
            if ((parityMasks_[i] >> j) & 1)
                parityRows_[j].set(i, true);

    alphaPow_.assign(n(), 0);
    alpha3Pow_.assign(n(), 0);
    for (std::size_t pos = 0; pos < n(); ++pos) {
        const std::size_t c = coefficientOf(pos);
        alphaPow_[pos] = field_.alphaPow(c);
        alpha3Pow_[pos] = field_.alphaPow(3 * static_cast<std::uint64_t>(c));
    }
}

std::size_t
BchDecCode::coefficientOf(std::size_t pos) const
{
    assert(pos < n());
    return pos < k_ ? parityBits_ + pos : pos - k_;
}

std::optional<std::size_t>
BchDecCode::positionOf(std::size_t coeff) const
{
    if (coeff >= n())
        return std::nullopt; // beyond the shortened length
    if (coeff < parityBits_)
        return k_ + coeff;
    return coeff - parityBits_;
}

gf2::BitVector
BchDecCode::encode(const gf2::BitVector &dataword) const
{
    assert(dataword.size() == k_);
    gf2::BitVector codeword(n());
    std::uint32_t parity = 0;
    dataword.forEachSetBit([&](std::size_t i) {
        codeword.set(i, true);
        parity ^= parityMasks_[i];
    });
    for (std::size_t j = 0; j < parityBits_; ++j)
        if ((parity >> j) & 1)
            codeword.set(k_ + j, true);
    return codeword;
}

void
BchDecCode::syndromesOf(const std::vector<std::size_t> &coeffs,
                        Gf2m::Element &s1, Gf2m::Element &s3) const
{
    s1 = 0;
    s3 = 0;
    for (const std::size_t c : coeffs) {
        s1 ^= field_.alphaPow(c);
        s3 ^= field_.alphaPow(3 * static_cast<std::uint64_t>(c));
    }
}

std::optional<std::vector<std::size_t>>
BchDecCode::locateErrors(Gf2m::Element s1, Gf2m::Element s3) const
{
    if (s1 == 0 && s3 == 0)
        return std::vector<std::size_t>{};
    if (s1 == 0)
        return std::nullopt; // >= 3 errors (no single/double solution)

    const Gf2m::Element s1_cubed =
        field_.multiply(field_.multiply(s1, s1), s1);
    if (s3 == s1_cubed) {
        // Single error at coefficient log(S1).
        const std::size_t c = field_.log(s1);
        if (c >= n())
            return std::nullopt; // outside the shortened code
        return std::vector<std::size_t>{c};
    }

    // Double error: locators X1, X2 are the roots of
    //   X^2 + S1 X + (S3 + S1^3)/S1 = 0.
    // Substituting X = S1 z gives z^2 + z = (S3 + S1^3) / S1^3.
    const Gf2m::Element rhs =
        field_.divide(static_cast<Gf2m::Element>(s3 ^ s1_cubed),
                      s1_cubed);
    const Gf2m::Element z = field_.solveQuadratic(rhs);
    if (z == 0xFFFFFFFF)
        return std::nullopt; // no roots: >= 3 errors detected
    const Gf2m::Element x1 = field_.multiply(s1, z);
    const Gf2m::Element x2 = static_cast<Gf2m::Element>(x1 ^ s1);
    if (x1 == 0 || x2 == 0 || x1 == x2)
        return std::nullopt;
    const std::size_t c1 = field_.log(x1);
    const std::size_t c2 = field_.log(x2);
    if (c1 >= n() || c2 >= n())
        return std::nullopt; // locator outside the shortened code
    return std::vector<std::size_t>{c1, c2};
}

BchDecodeResult
BchDecCode::decode(const gf2::BitVector &codeword) const
{
    assert(codeword.size() == n());
    BchDecodeResult result;

    Gf2m::Element s1 = 0, s3 = 0;
    codeword.forEachSetBit([&](std::size_t pos) {
        s1 ^= alphaPow_[pos];
        s3 ^= alpha3Pow_[pos];
    });

    gf2::BitVector corrected = codeword;
    const auto located = locateErrors(s1, s3);
    if (!located) {
        result.detectedUncorrectable = true;
    } else {
        for (const std::size_t c : *located) {
            const auto pos = positionOf(c);
            assert(pos.has_value());
            corrected.flip(*pos);
            result.correctedPositions.push_back(*pos);
        }
        std::sort(result.correctedPositions.begin(),
                  result.correctedPositions.end());
    }
    result.dataword = corrected.slice(0, k_);
    return result;
}

std::vector<std::size_t>
BchDecCode::decodeErrorPattern(
    const std::vector<std::size_t> &error_positions) const
{
    // Linear code: the decode outcome of (codeword ^ e) relative to the
    // codeword equals the outcome of e against the zero codeword.
    gf2::BitVector error_vector(n());
    for (const std::size_t pos : error_positions)
        error_vector.set(pos, true);
    const BchDecodeResult decoded = decode(error_vector);
    return decoded.dataword.setBits();
}

} // namespace harp::ecc
