/**
 * @file
 * Extended Hamming (SECDED) code used as the memory controller's secondary
 * ECC during HARP's reactive profiling phase (HARP section 6.3).
 *
 * Corrects any single error and *detects* (without miscorrecting) any
 * double error, which is what makes reactive identification of indirect
 * errors "safe" once active profiling has achieved full direct coverage.
 */

#ifndef HARP_ECC_EXTENDED_HAMMING_CODE_HH
#define HARP_ECC_EXTENDED_HAMMING_CODE_HH

#include <cstdint>
#include <optional>

#include "ecc/hamming_code.hh"

namespace harp::ecc {

/** Classification of one secondary-ECC decode. */
enum class SecondaryDecodeStatus
{
    NoError,             ///< Clean word.
    CorrectedSingle,     ///< One error corrected (position reported).
    DetectedUncorrectable ///< ≥2 errors detected; data not trustworthy.
};

/** Outcome of a secondary-ECC decode. */
struct SecondaryDecodeResult
{
    SecondaryDecodeStatus status = SecondaryDecodeStatus::NoError;
    /** Corrected codeword position (data or check bit) when status is
     *  CorrectedSingle. */
    std::optional<std::size_t> correctedPosition;
    /** Post-correction dataword. Valid unless status is
     *  DetectedUncorrectable. */
    gf2::BitVector dataword;
};

/**
 * SECDED code: an inner SEC Hamming code plus one overall parity bit.
 *
 * Codeword layout: [data (k) | inner parity (p) | overall parity (1)].
 */
class ExtendedHammingCode
{
  public:
    /** Build over an inner SEC code (takes a copy). */
    explicit ExtendedHammingCode(HammingCode inner);

    /** Random SECDED instance over @p k data bits. */
    static ExtendedHammingCode randomSecDed(std::size_t k,
                                            common::Xoshiro256 &rng);

    std::size_t k() const { return inner_.k(); }
    /** Check-bit count including the overall parity bit. */
    std::size_t checkBits() const { return inner_.p() + 1; }
    std::size_t n() const { return inner_.n() + 1; }

    const HammingCode &inner() const { return inner_; }

    /** Encode a dataword into a SECDED codeword. */
    gf2::BitVector encode(const gf2::BitVector &dataword) const;

    /** Decode with single-correction / double-detection semantics. */
    SecondaryDecodeResult decode(const gf2::BitVector &codeword) const;

  private:
    HammingCode inner_;
};

} // namespace harp::ecc

#endif // HARP_ECC_EXTENDED_HAMMING_CODE_HH
