/**
 * @file
 * Code-agnostic scalar encode/decode view used by the profiling-round
 * engines.
 *
 * The scalar RoundEngine (core/round_engine.hh) only ever needs three
 * things from an on-die code: the geometry (k, n), systematic encoding
 * into a caller-owned codeword buffer, and the post-correction
 * dataword of a received codeword. This header defines that minimal
 * interface plus thin adapters over the concrete code classes, so the
 * same engine drives SEC Hamming words and t-error BCH words — the
 * scalar twin of ecc::SlicedCode (ecc/sliced_code.hh).
 *
 * The `Into` signatures are allocation-free: both output vectors are
 * pre-sized scratch owned by the engine and reused every round.
 */

#ifndef HARP_ECC_WORD_CODEC_HH
#define HARP_ECC_WORD_CODEC_HH

#include <cstddef>

#include "ecc/bch_general.hh"
#include "ecc/hamming_code.hh"
#include "gf2/bit_vector.hh"

namespace harp::ecc {

/**
 * Minimal scalar encode/syndrome-decode interface of one ECC word.
 */
class WordCodec
{
  public:
    virtual ~WordCodec() = default;

    /** Dataword length. */
    virtual std::size_t k() const = 0;
    /** Codeword length. */
    virtual std::size_t n() const = 0;

    /** Encode @p data (length k) into @p codeword (pre-sized n). */
    virtual void encodeInto(const gf2::BitVector &data,
                            gf2::BitVector &codeword) const = 0;

    /**
     * Post-correction dataword of @p received (length n) into
     * @p data_out (pre-sized k), exactly as the underlying code's
     * decode() reports it (detected-uncorrectable words keep the
     * uncorrected data).
     */
    virtual void decodeDataInto(const gf2::BitVector &received,
                                gf2::BitVector &data_out) const = 0;
};

/**
 * WordCodec over a systematic SEC Hamming code. Holds a reference; the
 * code must outlive the adapter.
 */
class HammingWordCodec final : public WordCodec
{
  public:
    explicit HammingWordCodec(const HammingCode &code) : code_(code) {}

    std::size_t k() const override { return code_.k(); }
    std::size_t n() const override { return code_.n(); }

    void encodeInto(const gf2::BitVector &data,
                    gf2::BitVector &codeword) const override
    {
        code_.encodeInto(data, codeword);
    }

    void decodeDataInto(const gf2::BitVector &received,
                        gf2::BitVector &data_out) const override
    {
        code_.decodeDataInto(received, data_out);
    }

  private:
    const HammingCode &code_;
};

/**
 * WordCodec over a general t-error-correcting BCH code. Holds a
 * reference; the code must outlive the adapter. Decoding goes through
 * BchCode::decodeInto's reusable scratch, so each concurrently-driven
 * word needs its own BchCode instance (see bch_general.hh).
 */
class BchWordCodec final : public WordCodec
{
  public:
    explicit BchWordCodec(const BchCode &code) : code_(code) {}

    std::size_t k() const override { return code_.k(); }
    std::size_t n() const override { return code_.n(); }

    void encodeInto(const gf2::BitVector &data,
                    gf2::BitVector &codeword) const override
    {
        code_.encodeInto(data, codeword);
    }

    void decodeDataInto(const gf2::BitVector &received,
                        gf2::BitVector &data_out) const override
    {
        code_.decodeInto(received, scratch_);
        data_out.assignPrefix(scratch_.dataword);
    }

  private:
    const BchCode &code_;
    /** Reused decode result (capacity persists across rounds). */
    mutable BchGeneralDecodeResult scratch_;
};

} // namespace harp::ecc

#endif // HARP_ECC_WORD_CODEC_HH
