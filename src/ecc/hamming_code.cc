#include "ecc/hamming_code.hh"

#include <algorithm>
#include <bit>
#include <cassert>
#include <stdexcept>

namespace harp::ecc {

std::size_t
HammingCode::minParityBits(std::size_t k)
{
    // Need 2^p - 1 - p >= k distinct weight>=2 columns for the data bits.
    std::size_t p = 2;
    while (((std::size_t{1} << p) - 1 - p) < k)
        ++p;
    return p;
}

HammingCode::HammingCode(std::size_t k, std::vector<std::uint32_t> data_cols)
    : k_(k), p_(minParityBits(k)), dataCols_(std::move(data_cols))
{
    if (dataCols_.size() != k_)
        throw std::invalid_argument("HammingCode: need exactly k columns");
    const std::uint32_t limit = std::uint32_t{1} << p_;
    std::vector<bool> used(limit, false);
    for (const std::uint32_t col : dataCols_) {
        if (col == 0 || col >= limit)
            throw std::invalid_argument("HammingCode: column out of range");
        if (std::popcount(col) < 2)
            throw std::invalid_argument(
                "HammingCode: data column collides with a parity column");
        if (used[col])
            throw std::invalid_argument("HammingCode: duplicate column");
        used[col] = true;
    }

    parityRows_.assign(p_, gf2::BitVector(k_));
    for (std::size_t i = 0; i < k_; ++i)
        for (std::size_t j = 0; j < p_; ++j)
            if ((dataCols_[i] >> j) & 1)
                parityRows_[j].set(i, true);

    syndromeMap_.assign(limit, -1);
    for (std::size_t i = 0; i < k_; ++i)
        syndromeMap_[dataCols_[i]] = static_cast<std::int32_t>(i);
    for (std::size_t j = 0; j < p_; ++j)
        syndromeMap_[std::uint32_t{1} << j] =
            static_cast<std::int32_t>(k_ + j);
}

HammingCode
HammingCode::randomSec(std::size_t k, common::Xoshiro256 &rng)
{
    const std::size_t p = minParityBits(k);
    std::vector<std::uint32_t> candidates;
    candidates.reserve((std::size_t{1} << p) - 1 - p);
    for (std::uint32_t col = 1; col < (std::uint32_t{1} << p); ++col)
        if (std::popcount(col) >= 2)
            candidates.push_back(col);
    assert(candidates.size() >= k);
    // Partial Fisher-Yates: the first k slots become a uniform sample.
    for (std::size_t i = 0; i < k; ++i) {
        const std::size_t j =
            i + rng.nextBelow(candidates.size() - i);
        std::swap(candidates[i], candidates[j]);
    }
    candidates.resize(k);
    return HammingCode(k, std::move(candidates));
}

std::uint32_t
HammingCode::codewordColumn(std::size_t pos) const
{
    assert(pos < n());
    if (pos < k_)
        return dataCols_[pos];
    return std::uint32_t{1} << (pos - k_);
}

gf2::BitVector
HammingCode::encode(const gf2::BitVector &dataword) const
{
    gf2::BitVector codeword(n());
    encodeInto(dataword, codeword);
    return codeword;
}

void
HammingCode::encodeInto(const gf2::BitVector &dataword,
                        gf2::BitVector &codeword) const
{
    assert(dataword.size() == k_);
    assert(codeword.size() == n());
    codeword.fill(false);
    for (std::size_t i = 0; i < k_; ++i)
        codeword.set(i, dataword.get(i));
    for (std::size_t j = 0; j < p_; ++j)
        codeword.set(k_ + j, parityRows_[j].dot(dataword));
}

void
HammingCode::decodeDataInto(const gf2::BitVector &received,
                            gf2::BitVector &data_out) const
{
    assert(data_out.size() == k_);
    data_out.assignPrefix(received);
    // syndrome() semantics without its data-slice allocation: data_out
    // already holds the received prefix the parity rows dot against.
    std::uint32_t s = 0;
    for (std::size_t j = 0; j < p_; ++j)
        if (parityRows_[j].dot(data_out) != received.get(k_ + j))
            s |= std::uint32_t{1} << j;
    if (s == 0)
        return;
    if (const auto pos = syndromeToPosition(s))
        if (isDataPosition(*pos))
            data_out.flip(*pos);
}

std::uint32_t
HammingCode::syndrome(const gf2::BitVector &codeword) const
{
    assert(codeword.size() == n());
    const gf2::BitVector data = codeword.slice(0, k_);
    std::uint32_t s = 0;
    for (std::size_t j = 0; j < p_; ++j) {
        const bool parity_mismatch =
            parityRows_[j].dot(data) != codeword.get(k_ + j);
        if (parity_mismatch)
            s |= std::uint32_t{1} << j;
    }
    return s;
}

std::uint32_t
HammingCode::syndromeOfErrors(const std::vector<std::size_t> &positions) const
{
    std::uint32_t s = 0;
    for (const std::size_t pos : positions)
        s ^= codewordColumn(pos);
    return s;
}

std::optional<std::size_t>
HammingCode::syndromeToPosition(std::uint32_t syndrome) const
{
    if (syndrome == 0 || syndrome >= syndromeMap_.size())
        return std::nullopt;
    const std::int32_t pos = syndromeMap_[syndrome];
    if (pos < 0)
        return std::nullopt;
    return static_cast<std::size_t>(pos);
}

DecodeResult
HammingCode::decode(const gf2::BitVector &codeword) const
{
    DecodeResult result;
    result.syndrome = syndrome(codeword);
    gf2::BitVector corrected = codeword;
    if (result.syndrome != 0) {
        const auto pos = syndromeToPosition(result.syndrome);
        if (pos) {
            corrected.flip(*pos);
            result.correctedPosition = pos;
        } else {
            // Shortened code: the syndrome matches no column. A real
            // on-die SEC decoder silently returns the data uncorrected.
            result.detectedUncorrectable = true;
        }
    }
    result.dataword = corrected.slice(0, k_);
    return result;
}

gf2::BitMatrix
HammingCode::parityCheckMatrix() const
{
    gf2::BitMatrix h(p_, n());
    for (std::size_t j = 0; j < p_; ++j) {
        for (std::size_t i = 0; i < k_; ++i)
            h.set(j, i, (dataCols_[i] >> j) & 1);
        h.set(j, k_ + j, true);
    }
    return h;
}

gf2::BitMatrix
HammingCode::generatorMatrix() const
{
    gf2::BitMatrix g(n(), k_);
    for (std::size_t i = 0; i < k_; ++i)
        g.set(i, i, true);
    for (std::size_t j = 0; j < p_; ++j)
        for (std::size_t i = 0; i < k_; ++i)
            g.set(k_ + j, i, (dataCols_[i] >> j) & 1);
    return g;
}

} // namespace harp::ecc
