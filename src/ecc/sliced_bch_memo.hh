/**
 * @file
 * Thread-safe syndrome -> decode-action memo shared by sliced BCH
 * datapaths of every lane width.
 *
 * The memo maps a packed power-sum syndrome (a pure function of the
 * pre-correction error pattern) to the data-bit flips the scalar
 * Berlekamp-Massey + Chien decoder would apply. It is the only state a
 * sliced BCH datapath ever *shares*: when one (point, repeat) job is
 * sharded across the ThreadPool, every worker carries its own
 * ecc::SlicedBchCodeW copy (private scratch, private CSR views) but all
 * copies point at one SlicedBchMemo, so a syndrome any worker has
 * resolved is a hash hit for all of them.
 *
 * Concurrency contract:
 *  - find() takes a shared lock; insertOrGet() takes a unique lock.
 *  - Returned Action pointers/references stay valid for the memo's
 *    lifetime: std::unordered_map never invalidates element references
 *    on insert or rehash, and nothing here erases.
 *  - Hit/miss tallies are relaxed atomics — they order nothing, they
 *    only report.
 *
 * The memoization itself is exact (see ecc/sliced_bch.hh): BM + Chien
 * are pure syndrome decoding, so whichever worker resolves a syndrome
 * first memoizes the same action every other worker would.
 */

#ifndef HARP_ECC_SLICED_BCH_MEMO_HH
#define HARP_ECC_SLICED_BCH_MEMO_HH

#include <array>
#include <atomic>
#include <cstddef>
#include <cstdint>
#include <mutex>
#include <shared_mutex>
#include <unordered_map>

namespace harp::ecc {

/**
 * Shared syndrome -> decode-action table with reader/writer locking.
 */
class SlicedBchMemo
{
  public:
    /** Packed syndrome key (up to 256 bits; 2t*m <= 224 for t <= 8,
     *  m <= 14). Unused words are zero. */
    struct Key
    {
        std::array<std::uint64_t, 4> words{};
        bool operator==(const Key &o) const { return words == o.words; }
    };
    struct KeyHash
    {
        std::size_t operator()(const Key &key) const
        {
            std::uint64_t h = 1469598103934665603ull;
            for (const std::uint64_t w : key.words) {
                h ^= w;
                h *= 1099511628211ull;
            }
            return static_cast<std::size_t>(h);
        }
    };
    /** Memoized outcome of one nonzero syndrome: the data-bit flips to
     *  apply. Parity-only corrections and detected-uncorrectable
     *  syndromes both memoize an empty flip list — either way the
     *  dataword is left untouched, exactly as the scalar decoder
     *  reports it. */
    struct Action
    {
        std::uint8_t numFlips = 0;
        std::array<std::uint16_t, 8> flips{};
    };

    /**
     * Look up @p key, tallying a hit or miss. A returned pointer stays
     * valid for the memo's lifetime (element references survive
     * inserts; nothing erases).
     */
    const Action *find(const Key &key) const
    {
        std::shared_lock lock(mutex_);
        const auto it = map_.find(key);
        if (it == map_.end()) {
            misses_.fetch_add(1, std::memory_order_relaxed);
            return nullptr;
        }
        hits_.fetch_add(1, std::memory_order_relaxed);
        return &it->second;
    }

    /**
     * Memoize @p action for @p key; if another worker raced the insert,
     * keep and return the incumbent (identical by the exactness
     * argument above). No hit/miss tally — the preceding find() already
     * counted this lookup.
     */
    const Action &insertOrGet(const Key &key, const Action &action)
    {
        std::unique_lock lock(mutex_);
        return map_.emplace(key, action).first->second;
    }

    /** Pre-size the table (construction-time convenience). */
    void reserve(std::size_t entries)
    {
        std::unique_lock lock(mutex_);
        map_.reserve(map_.size() + entries);
    }

    /** Lookups that hit since construction. */
    std::uint64_t hits() const
    {
        return hits_.load(std::memory_order_relaxed);
    }
    /** Lookups that missed (scalar-decode fallbacks). */
    std::uint64_t misses() const
    {
        return misses_.load(std::memory_order_relaxed);
    }
    /** Distinct nonzero syndromes memoized so far. */
    std::size_t entries() const
    {
        std::shared_lock lock(mutex_);
        return map_.size();
    }

    /** True iff construction pre-warmed every weight <= t syndrome. */
    bool prewarmed() const
    {
        return prewarmed_.load(std::memory_order_relaxed);
    }
    /** Mark the pre-warm complete (called once, at construction). */
    void markPrewarmed() { prewarmed_.store(true, std::memory_order_relaxed); }

  private:
    mutable std::shared_mutex mutex_;
    std::unordered_map<Key, Action, KeyHash> map_;
    mutable std::atomic<std::uint64_t> hits_{0};
    mutable std::atomic<std::uint64_t> misses_{0};
    std::atomic<bool> prewarmed_{false};
};

} // namespace harp::ecc

#endif // HARP_ECC_SLICED_BCH_MEMO_HH
