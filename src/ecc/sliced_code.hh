/**
 * @file
 * Code-agnostic interface of the bit-sliced ECC datapath, templated
 * over the lane width.
 *
 * The sliced round engine (core/sliced_round_engine.hh) drives the
 * encode -> inject -> decode hot path over transposed gf2::BitSliceW
 * lane blocks: one lane word per codeword position, one lane *bit* per
 * independent ECC word (64 bits at W=1, 256 at W=4). Any code family
 * whose encode and syndrome evaluation are GF(2)-linear can implement
 * this interface and ride that datapath — SEC Hamming and SECDED
 * extended Hamming (ecc/sliced_hamming.hh) resolve corrections with a
 * branchless column-match mask cascade, while t-error BCH
 * (ecc/sliced_bch.hh) resolves them through a syndrome -> decode-action
 * memo table backed by the scalar Berlekamp-Massey decoder.
 *
 * Contract shared by all implementations and widths: lanes() words are
 * simulated per block, every lane shares the dataword length k() and
 * codeword length n(), and decodeData() is bit-identical per lane to
 * the matching scalar decoder's post-correction dataword.
 */

#ifndef HARP_ECC_SLICED_CODE_HH
#define HARP_ECC_SLICED_CODE_HH

#include <cstddef>

#include "gf2/bit_slice.hh"

namespace harp::ecc {

/**
 * Up to W*64 ECC words of one code family evaluated lane-parallel.
 */
template <std::size_t W>
class SlicedCodeW
{
  public:
    virtual ~SlicedCodeW() = default;

    /** Dataword length shared by every lane. */
    virtual std::size_t k() const = 0;
    /** Codeword length shared by every lane. */
    virtual std::size_t n() const = 0;
    /** Number of live lanes (1..W*64). */
    virtual std::size_t lanes() const = 0;

    /**
     * Encode all lanes: @p data has k() positions, @p codeword n()
     * positions. Codeword positions [0, k) copy the data lanes (all
     * implementations are systematic), positions [k, n) receive each
     * lane's parity bits.
     */
    virtual void encode(const gf2::BitSliceW<W> &data,
                        gf2::BitSliceW<W> &codeword) const = 0;

    /**
     * Syndrome-decode all lanes to their post-correction *datawords*
     * (@p data_out has k() positions), matching the scalar decoder of
     * the lane's code exactly on the data bits: detected-uncorrectable
     * lanes keep the uncorrected data.
     */
    virtual void decodeData(const gf2::BitSliceW<W> &received,
                            gf2::BitSliceW<W> &data_out) const = 0;
};

/** The historical 64-lane interface name. */
using SlicedCode = SlicedCodeW<1>;
/** The wide 256-lane interface. */
using SlicedCode256 = SlicedCodeW<4>;

} // namespace harp::ecc

#endif // HARP_ECC_SLICED_CODE_HH
