/**
 * @file
 * GF(2) polynomial helpers shared by the BCH code constructions:
 * bitmask polynomials (bit i = coefficient of x^i), carry-less multiply,
 * and minimal polynomials of field elements.
 */

#ifndef HARP_ECC_GF2_POLY_HH
#define HARP_ECC_GF2_POLY_HH

#include <cstdint>

#include "ecc/gf2m.hh"

namespace harp::ecc {

/** Carry-less (GF(2)) polynomial multiply of bitmask polynomials. */
std::uint64_t polyMultiply(std::uint64_t a, std::uint64_t b);

/** Degree of a nonzero bitmask polynomial. */
int polyDegree(std::uint64_t poly);

/**
 * Minimal polynomial over GF(2) of alpha^e in the given field: the
 * product of (x + r) over the conjugacy class
 * {alpha^e, alpha^2e, alpha^4e, ...}. Always has GF(2) coefficients.
 */
std::uint64_t minimalPolynomial(const Gf2m &field, std::uint64_t e);

} // namespace harp::ecc

#endif // HARP_ECC_GF2_POLY_HH
