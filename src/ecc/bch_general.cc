#include "ecc/bch_general.hh"

#include <algorithm>
#include <bit>
#include <cassert>
#include <stdexcept>

#include "ecc/gf2_poly.hh"

namespace harp::ecc {

namespace {

/**
 * Generator polynomial for a t-error-correcting BCH code over the given
 * field: lcm of the minimal polynomials of alpha^1, alpha^3, ...,
 * alpha^(2t-1) (even powers share the odd powers' conjugacy classes).
 */
std::uint64_t
generatorFor(const Gf2m &field, std::size_t t)
{
    std::uint64_t g = 1;
    std::vector<std::uint64_t> factors;
    for (std::size_t j = 1; j <= 2 * t - 1; j += 2) {
        const std::uint64_t mp = minimalPolynomial(field, j);
        // lcm over distinct irreducible factors = product of the
        // distinct ones.
        if (std::find(factors.begin(), factors.end(), mp) ==
            factors.end()) {
            factors.push_back(mp);
            g = polyMultiply(g, mp);
        }
    }
    return g;
}

/** Smallest field degree whose shortened BCH code fits k data bits.
 *  Validates t here because this runs during member initialization,
 *  before the constructor body: an unchecked t = 0 would underflow the
 *  generator's 2t-1 loop bound. */
unsigned
fieldDegreeFor(std::size_t k, std::size_t t)
{
    if (t < 1 || t > 8)
        throw std::invalid_argument("BchCode: t must be in [1, 8]");
    for (unsigned m = 4; m <= 14; ++m) {
        const Gf2m field(m);
        const std::uint64_t g = generatorFor(field, t);
        const auto parity = static_cast<std::size_t>(polyDegree(g));
        if (parity >= 64)
            continue; // bitmask representation limit
        if (field.order() >= k + parity)
            return m;
    }
    throw std::invalid_argument("BchCode: no supported field fits k, t");
}

} // namespace

BchCode::BchCode(std::size_t k, std::size_t t)
    : k_(k), t_(t), field_(fieldDegreeFor(k, t))
{
    if (t_ < 1 || t_ > 8)
        throw std::invalid_argument("BchCode: t must be in [1, 8]");
    generator_ = generatorFor(field_, t_);
    parityBits_ = static_cast<std::size_t>(polyDegree(generator_));
    assert(k_ + parityBits_ <= field_.order());

    parityMasks_.assign(k_, 0);
    std::uint64_t rem = 1;
    for (std::size_t c = 1; c <= parityBits_ + k_ - 1; ++c) {
        rem <<= 1;
        if ((rem >> parityBits_) & 1)
            rem ^= generator_;
        if (c >= parityBits_)
            parityMasks_[c - parityBits_] = rem;
    }

    parityRows_.assign(parityBits_, gf2::BitVector(k_));
    for (std::size_t i = 0; i < k_; ++i)
        for (std::size_t j = 0; j < parityBits_; ++j)
            if ((parityMasks_[i] >> j) & 1)
                parityRows_[j].set(i, true);

    // Decode-time tables: every syndrome term and Chien evaluation
    // point is a fixed power of alpha, so the hot path is pure lookups.
    synAlpha_.assign(n() * 2 * t_, 0);
    for (std::size_t c = 0; c < n(); ++c)
        for (std::size_t j = 0; j < 2 * t_; ++j)
            synAlpha_[c * 2 * t_ + j] =
                field_.alphaPow(static_cast<std::uint64_t>(j + 1) * c);
    chienXInv_.assign(n(), 0);
    for (std::size_t i = 0; i < n(); ++i)
        chienXInv_[i] = field_.alphaPow(
            (field_.order() - (i % field_.order())) % field_.order());
}

std::size_t
BchCode::coefficientOf(std::size_t pos) const
{
    assert(pos < n());
    return pos < k_ ? parityBits_ + pos : pos - k_;
}

std::optional<std::size_t>
BchCode::positionOf(std::size_t coeff) const
{
    if (coeff >= n())
        return std::nullopt;
    if (coeff < parityBits_)
        return k_ + coeff;
    return coeff - parityBits_;
}

gf2::BitVector
BchCode::encode(const gf2::BitVector &dataword) const
{
    gf2::BitVector codeword(n());
    encodeInto(dataword, codeword);
    return codeword;
}

void
BchCode::encodeInto(const gf2::BitVector &dataword,
                    gf2::BitVector &codeword) const
{
    assert(dataword.size() == k_);
    assert(codeword.size() == n());
    codeword.fill(false);
    std::uint64_t parity = 0;
    dataword.forEachSetBit([&](std::size_t i) {
        codeword.set(i, true);
        parity ^= parityMasks_[i];
    });
    for (std::size_t j = 0; j < parityBits_; ++j)
        if ((parity >> j) & 1)
            codeword.set(k_ + j, true);
}

bool
BchCode::berlekampMassey() const
{
    // Standard Berlekamp-Massey over GF(2^m). Lambda and B are
    // polynomials with Lambda[0] == 1 throughout, held in member
    // scratch so steady state allocates nothing.
    const std::vector<Gf2m::Element> &s = synScratch_;
    std::vector<Gf2m::Element> &lambda = lambdaScratch_;
    std::vector<Gf2m::Element> &b = bScratch_;
    std::vector<Gf2m::Element> &next = nextScratch_;
    lambda.assign(1, 1);
    b.assign(1, 1);
    std::size_t reg_len = 0;   // current LFSR length L
    std::size_t shift = 1;     // x^shift multiplier for B
    Gf2m::Element b_disc = 1;  // discrepancy associated with B

    for (std::size_t step = 0; step < s.size(); ++step) {
        // Discrepancy delta = S_step + sum_i lambda_i * S_{step-i}.
        Gf2m::Element delta = s[step];
        for (std::size_t i = 1; i < lambda.size() && i <= step; ++i)
            delta ^= field_.multiply(lambda[i], s[step - i]);

        if (delta == 0) {
            ++shift;
            continue;
        }
        // lambda' = lambda - (delta/b_disc) * x^shift * B.
        const Gf2m::Element scale = field_.divide(delta, b_disc);
        next.assign(lambda.begin(), lambda.end());
        if (next.size() < b.size() + shift)
            next.resize(b.size() + shift, 0);
        for (std::size_t i = 0; i < b.size(); ++i)
            next[i + shift] ^= field_.multiply(scale, b[i]);

        if (2 * reg_len <= step) {
            b.assign(lambda.begin(), lambda.end());
            b_disc = delta;
            reg_len = step + 1 - reg_len;
            shift = 1;
        } else {
            ++shift;
        }
        lambda.swap(next);
    }

    // Trim trailing zeros; validate the locator degree.
    while (lambda.size() > 1 && lambda.back() == 0)
        lambda.pop_back();
    return reg_len <= t_ && lambda.size() - 1 == reg_len;
}

bool
BchCode::chienSearch() const
{
    const std::vector<Gf2m::Element> &lambda = lambdaScratch_;
    std::vector<std::size_t> &roots = rootsScratch_;
    roots.clear();
    const std::size_t degree = lambda.size() - 1;
    if (degree == 0)
        return true;
    // Error at coefficient i <=> Lambda(alpha^{-i}) == 0; Horner over
    // the precomputed evaluation points.
    for (std::size_t i = 0; i < n() && roots.size() <= degree; ++i) {
        const Gf2m::Element x = chienXInv_[i];
        Gf2m::Element acc = lambda[degree];
        for (std::size_t d = degree; d-- > 0;)
            acc = field_.multiply(acc, x) ^ lambda[d];
        if (acc == 0)
            roots.push_back(i);
    }
    // All deg(Lambda) roots must land inside the shortened code.
    return roots.size() == degree;
}

BchGeneralDecodeResult
BchCode::decode(const gf2::BitVector &codeword) const
{
    BchGeneralDecodeResult result;
    decodeInto(codeword, result);
    return result;
}

void
BchCode::decodeInto(const gf2::BitVector &codeword,
                    BchGeneralDecodeResult &result) const
{
    assert(codeword.size() == n());
    result.correctedPositions.clear();
    result.detectedUncorrectable = false;
    if (result.dataword.size() != k_)
        result.dataword = gf2::BitVector(k_);
    result.dataword.assignPrefix(codeword);

    // Syndromes S_1 .. S_2t over the received polynomial, via the
    // per-coefficient alpha-power table.
    synScratch_.assign(2 * t_, 0);
    bool all_zero = true;
    const std::vector<std::uint64_t> &words = codeword.words();
    for (std::size_t w = 0; w < words.size(); ++w) {
        std::uint64_t bits = words[w];
        while (bits != 0) {
            const std::size_t pos =
                w * 64 +
                static_cast<std::size_t>(std::countr_zero(bits));
            bits &= bits - 1;
            const Gf2m::Element *row =
                &synAlpha_[coefficientOf(pos) * 2 * t_];
            for (std::size_t j = 0; j < 2 * t_; ++j)
                synScratch_[j] ^= row[j];
        }
    }
    for (const Gf2m::Element s : synScratch_)
        all_zero = all_zero && (s == 0);
    if (all_zero)
        return;

    if (!berlekampMassey() || !chienSearch()) {
        result.detectedUncorrectable = true;
        return;
    }
    for (const std::size_t c : rootsScratch_) {
        const auto pos = positionOf(c);
        assert(pos.has_value());
        result.correctedPositions.push_back(*pos);
        if (*pos < k_)
            result.dataword.flip(*pos);
    }
    std::sort(result.correctedPositions.begin(),
              result.correctedPositions.end());
}

std::vector<std::size_t>
BchCode::decodeErrorPattern(
    const std::vector<std::size_t> &error_positions) const
{
    gf2::BitVector error_vector(n());
    for (const std::size_t pos : error_positions)
        error_vector.set(pos, true);
    return decode(error_vector).dataword.setBits();
}

} // namespace harp::ecc
