/**
 * @file
 * Chaos tier for the harpd server: deterministic I/O fault schedules
 * (via ServerConfig::ioFaultPlan) driving every durable write through
 * ENOSPC/EIO/torn-write failures, and asserting the robustness
 * contract — *byte-identical-to-batch or structured-degraded, never
 * corrupt, never hung*. Covers checkpoint-write and fsync faults,
 * publish-rename faults, torn checkpoint tails from injected short
 * writes, the `resume` verb (and its guards), degraded auto-resume on
 * daemon restart, and `subscribe from=` replay being byte-identical to
 * the original stream.
 */

#include <gtest/gtest.h>

#include <atomic>
#include <cerrno>
#include <chrono>
#include <filesystem>
#include <fstream>
#include <map>
#include <memory>
#include <sstream>
#include <thread>
#include <unistd.h>
#include <vector>

#include "common/io.hh"
#include "harpd/client.hh"
#include "harpd/protocol.hh"
#include "harpd/server.hh"
#include "runner/campaign.hh"
#include "runner/registry.hh"

namespace harp::harpd {
namespace {

namespace fs = std::filesystem;
using common::io::Fault;
using common::io::FaultPlan;
using common::io::Op;
using runner::JsonType;
using runner::JsonValue;

Fault
fault(int err, std::size_t short_bytes = std::string::npos)
{
    return {std::error_code(err, std::generic_category()), short_bytes};
}

/** Deterministic, fast experiments (mirrors test_server.cc). */
runner::Registry
makeTestRegistry()
{
    runner::Registry registry;
    {
        runner::ExperimentSpec spec;
        spec.name = "fast";
        spec.description = "deterministic toy metrics";
        spec.labels = {"toy"};
        runner::ParamAxis axis;
        axis.name = "x";
        axis.values = {runner::ParamValue(std::int64_t(1)),
                       runner::ParamValue(std::int64_t(2)),
                       runner::ParamValue(std::int64_t(3))};
        spec.grid = runner::ParamGrid({axis});
        spec.schema = {{"value", JsonType::Int, "seed-derived value"},
                       {"x2", JsonType::Int, "x squared"}};
        spec.run = [](const runner::RunContext &ctx) {
            const std::int64_t x = ctx.getInt("x", 0);
            JsonValue metrics = JsonValue::object();
            metrics.set("value",
                        JsonValue(static_cast<std::int64_t>(
                            ctx.seed() % 1000003)));
            metrics.set("x2", JsonValue(x * x));
            return metrics;
        };
        registry.add(std::move(spec));
    }
    {
        runner::ExperimentSpec spec;
        spec.name = "slow";
        spec.description = "paced toy metrics";
        spec.labels = {"toy"};
        runner::ParamAxis axis;
        axis.name = "i";
        for (std::int64_t i = 0; i < 8; ++i)
            axis.values.push_back(runner::ParamValue(i));
        spec.grid = runner::ParamGrid({axis});
        spec.tunables = {{"delay_ms", "5", "per-job sleep"}};
        spec.schema = {{"i_out", JsonType::Int, "echoed index"}};
        spec.run = [](const runner::RunContext &ctx) {
            std::this_thread::sleep_for(std::chrono::milliseconds(
                ctx.getInt("delay_ms", 5)));
            JsonValue metrics = JsonValue::object();
            metrics.set("i_out", JsonValue(ctx.getInt("i", -1)));
            return metrics;
        };
        registry.add(std::move(spec));
    }
    return registry;
}

std::string
readFile(const fs::path &path)
{
    std::ifstream in(path, std::ios::binary);
    EXPECT_TRUE(in.good()) << path;
    std::ostringstream out;
    out << in.rdbuf();
    return out.str();
}

/** One streamed submit, reassembled, including the raw seq'd lines. */
struct Streamed
{
    std::map<std::string, std::string> jsonl;
    std::string summaryBytes;
    bool done = false;
    bool degraded = false;
    std::string degradedErrno;
    bool degradedRetriable = false;
    std::vector<std::string> seqLines; ///< raw wire lines with a seq
    std::size_t results = 0;
};

JsonValue
submitRequest(const std::string &campaign,
              const std::vector<std::string> &experiments,
              std::uint64_t seed, std::size_t repeat,
              const std::map<std::string, std::string> &overrides = {})
{
    JsonValue request = JsonValue::object();
    request.set("verb", JsonValue("submit"));
    request.set("campaign", JsonValue(campaign));
    JsonValue list = JsonValue::array();
    for (const std::string &name : experiments)
        list.push(JsonValue(name));
    request.set("experiments", list);
    request.set("seed", JsonValue(std::to_string(seed)));
    request.set("repeat", JsonValue(repeat));
    if (!overrides.empty()) {
        JsonValue object = JsonValue::object();
        for (const auto &[key, value] : overrides)
            object.set(key, JsonValue(value));
        request.set("overrides", object);
    }
    return request;
}

Streamed
streamSubmit(Client &client, const JsonValue &request)
{
    Streamed streamed;
    EXPECT_TRUE(client.send(request));
    for (;;) {
        std::string raw;
        std::optional<JsonValue> event = client.read(&raw);
        if (!event.has_value())
            break;
        if (event->find("seq") != nullptr)
            streamed.seqLines.push_back(raw + "\n");
        const std::string kind = event->find("type")->asString();
        if (kind == "result") {
            ++streamed.results;
            streamed.jsonl[event->find("experiment")->asString()] +=
                event->find("line")->asString() + "\n";
        } else if (kind == "summary") {
            streamed.summaryBytes =
                event->find("summary")->dump(2) + "\n";
        } else if (kind == "done") {
            streamed.done = true;
            break;
        } else if (kind == "degraded") {
            streamed.degraded = true;
            streamed.degradedErrno =
                event->find("errno_name")->asString();
            streamed.degradedRetriable =
                event->find("retriable")->asBool();
            // Terminal: nothing follows the degraded event (the
            // connection stays open for further requests).
            break;
        } else if (kind == "cancelled" || kind == "error") {
            break;
        }
    }
    return streamed;
}

class ServerChaosTest : public ::testing::Test
{
  protected:
    void SetUp() override
    {
        registry_ = makeTestRegistry();
        static std::atomic<int> counter{0};
        const int id = counter.fetch_add(1);
        root_ = fs::temp_directory_path() /
                ("harpd_chaos_t" + std::to_string(::getpid()) + "_" +
                 std::to_string(id));
        fs::remove_all(root_);
        fs::create_directories(root_);
        config_.socketPath = (root_ / "d.sock").string();
        config_.dataDir = (root_ / "data").string();
        config_.threads = 2;
        config_.registry = &registry_;
        config_.ioFaultPlan = &plan_;
    }

    void TearDown() override
    {
        stopServer();
        fs::remove_all(root_);
    }

    void startServer()
    {
        server_ = std::make_unique<Server>(config_);
        server_->start();
        serveThread_ = std::thread([this] { server_->serve(); });
    }

    void stopServer()
    {
        if (server_ != nullptr)
            server_->requestStop();
        if (serveThread_.joinable())
            serveThread_.join();
        server_.reset();
    }

    /** The fault cleared (space freed, disk replaced): empty plan. */
    void clearFaults() { plan_ = FaultPlan(); }

    std::string batchDir(const std::vector<std::string> &selectors,
                         std::uint64_t seed, std::size_t repeat)
    {
        const fs::path out =
            root_ / ("batch_" + std::to_string(batches_++));
        runner::CampaignOptions options;
        options.seed = seed;
        options.threads = 2;
        options.repeat = repeat;
        options.noTimings = true;
        options.outDir = out.string();
        std::ostringstream log;
        runner::runCampaign(registry_.select(selectors), options, log);
        return out.string();
    }

    JsonValue awaitState(const std::string &campaign,
                         const std::string &state)
    {
        for (int i = 0; i < 2000; ++i) {
            Client client(config_.socketPath);
            JsonValue request = JsonValue::object();
            request.set("verb", JsonValue("status"));
            request.set("campaign", JsonValue(campaign));
            const JsonValue reply = client.request(request);
            if (reply.find("type")->asString() == "status" &&
                reply.find("state")->asString() == state)
                return reply;
            std::this_thread::sleep_for(std::chrono::milliseconds(5));
        }
        ADD_FAILURE() << "campaign " << campaign << " never reached "
                      << state;
        return JsonValue::object();
    }

    JsonValue resumeVerb(const std::string &campaign)
    {
        Client client(config_.socketPath);
        JsonValue request = JsonValue::object();
        request.set("verb", JsonValue("resume"));
        request.set("campaign", JsonValue(campaign));
        return client.request(request);
    }

    void expectPublishedMatchesBatch(const std::string &campaign,
                                     const std::string &batch,
                                     const std::string &experiment)
    {
        const fs::path published =
            fs::path(config_.dataDir) / "results" / campaign;
        EXPECT_EQ(readFile(published / (experiment + ".jsonl")),
                  readFile(fs::path(batch) / (experiment + ".jsonl")));
        EXPECT_EQ(readFile(published / "summary.json"),
                  readFile(fs::path(batch) / "summary.json"));
    }

    fs::path checkpoint(const std::string &campaign) const
    {
        return fs::path(config_.dataDir) / "checkpoints" /
               (campaign + ".ckpt");
    }

    runner::Registry registry_;
    fs::path root_;
    FaultPlan plan_;
    ServerConfig config_;
    std::unique_ptr<Server> server_;
    std::thread serveThread_;
    int batches_ = 0;
};

// Durable-write op order with one campaign in flight: open#0 +
// write#0 + fsync#0 are the checkpoint header, open#1 the staging
// JSONL; each job then costs write (JSONL line), write (checkpoint
// record), fsync (record durability). The schedules below are pinned
// against that order.

TEST_F(ServerChaosTest, EnospcMidCampaignDegradesThenResumeVerbCompletes)
{
    // Sticky ENOSPC from the 6th write: job 2's JSONL line fails, as
    // would everything after — the filesystem is full until cleared.
    plan_.injectFrom(Op::Write, 5, fault(ENOSPC));
    startServer();
    const std::string batch = batchDir({"fast"}, 42, 2); // 6 jobs

    Client client(config_.socketPath);
    const Streamed streamed =
        streamSubmit(client, submitRequest("c1", {"fast"}, 42, 2));
    EXPECT_FALSE(streamed.done);
    ASSERT_TRUE(streamed.degraded);
    EXPECT_EQ(streamed.degradedErrno, "ENOSPC");
    EXPECT_TRUE(streamed.degradedRetriable);
    // Degrade, never corrupt: every result the client saw was durable
    // first, and the stream stopped cleanly at the fault.
    EXPECT_EQ(streamed.results, 2u);

    const JsonValue status = awaitState("c1", "degraded");
    EXPECT_EQ(status.find("errno_name")->asString(), "ENOSPC");
    EXPECT_TRUE(status.find("retriable")->asBool());
    EXPECT_TRUE(fs::exists(checkpoint("c1")))
        << "degraded keeps the checkpoint";
    EXPECT_FALSE(
        fs::exists(fs::path(config_.dataDir) / "results" / "c1"))
        << "no partial results are ever published";

    // Space frees up; the resume verb finishes the campaign.
    clearFaults();
    const JsonValue reply = resumeVerb("c1");
    ASSERT_EQ(reply.find("type")->asString(), "ok");
    EXPECT_TRUE(reply.find("resuming")->asBool());
    awaitState("c1", "done");
    EXPECT_FALSE(fs::exists(checkpoint("c1")));
    expectPublishedMatchesBatch("c1", batch, "fast");
}

TEST_F(ServerChaosTest, FsyncEioDegradesAsNotRetriable)
{
    // fsync#2 = the second checkpoint record's durability barrier.
    plan_.injectAt(Op::Fsync, 2, fault(EIO));
    startServer();
    const std::string batch = batchDir({"fast"}, 7, 2);

    Client client(config_.socketPath);
    const Streamed streamed =
        streamSubmit(client, submitRequest("c2", {"fast"}, 7, 2));
    ASSERT_TRUE(streamed.degraded);
    EXPECT_EQ(streamed.degradedErrno, "EIO");
    EXPECT_FALSE(streamed.degradedRetriable)
        << "EIO needs an operator, not a retry loop";

    const JsonValue status = awaitState("c2", "degraded");
    EXPECT_EQ(status.find("errno_name")->asString(), "EIO");
    EXPECT_FALSE(status.find("retriable")->asBool());

    clearFaults();
    ASSERT_EQ(resumeVerb("c2").find("type")->asString(), "ok");
    awaitState("c2", "done");
    expectPublishedMatchesBatch("c2", batch, "fast");
}

TEST_F(ServerChaosTest, PublishRenameFailureDegradesWithAllJobsDurable)
{
    plan_.injectAt(Op::Rename, 0, fault(ENOSPC));
    startServer();
    const std::string batch = batchDir({"fast"}, 3, 2);

    Client client(config_.socketPath);
    const Streamed streamed =
        streamSubmit(client, submitRequest("c3", {"fast"}, 3, 2));
    ASSERT_TRUE(streamed.degraded);
    // Every job finished and was durably checkpointed before the
    // publish failed...
    EXPECT_EQ(streamed.results, 6u);
    awaitState("c3", "degraded");
    EXPECT_TRUE(fs::exists(checkpoint("c3")));
    // ...so the resume recomputes nothing and just republishes.
    clearFaults();
    ASSERT_EQ(resumeVerb("c3").find("type")->asString(), "ok");
    const JsonValue status = awaitState("c3", "done");
    EXPECT_EQ(static_cast<std::size_t>(
                  status.find("completed_jobs")->asInt()),
              6u);
    expectPublishedMatchesBatch("c3", batch, "fast");
}

TEST_F(ServerChaosTest, InjectedShortWriteTearsTheCheckpointTail)
{
    // write#2 is job 0's checkpoint record: persist 10 bytes of it,
    // then fail — exactly the torn tail a crashed write leaves.
    plan_.injectAt(Op::Write, 2, fault(EIO, 10));
    startServer();
    const std::string batch = batchDir({"fast"}, 11, 2);

    Client client(config_.socketPath);
    const Streamed streamed =
        streamSubmit(client, submitRequest("c4", {"fast"}, 11, 2));
    ASSERT_TRUE(streamed.degraded);
    EXPECT_EQ(streamed.results, 0u)
        << "the record never became durable, so the client never saw "
           "the result";
    awaitState("c4", "degraded");

    // The torn tail really is on disk (header line + 10 bytes).
    const std::string ckpt_bytes = readFile(checkpoint("c4"));
    const std::size_t header_end = ckpt_bytes.find('\n') + 1;
    EXPECT_EQ(ckpt_bytes.size() - header_end, 10u);

    // Resume truncate-recovers the tail and recomputes the lost job —
    // never a .bad file, never an abort.
    clearFaults();
    ASSERT_EQ(resumeVerb("c4").find("type")->asString(), "ok");
    awaitState("c4", "done");
    EXPECT_FALSE(fs::exists(checkpoint("c4").string() + ".bad"));
    expectPublishedMatchesBatch("c4", batch, "fast");
}

TEST_F(ServerChaosTest, ResumeVerbGuardsItsPreconditions)
{
    startServer();
    // Unknown campaign.
    {
        Client client(config_.socketPath);
        JsonValue request = JsonValue::object();
        request.set("verb", JsonValue("resume"));
        request.set("campaign", JsonValue("ghost"));
        EXPECT_EQ(client.request(request).find("code")->asString(),
                  errc::unknownCampaign);
    }
    // Done campaign: not degraded, nothing to resume.
    {
        Client client(config_.socketPath);
        const Streamed streamed =
            streamSubmit(client, submitRequest("ok1", {"fast"}, 1, 1));
        ASSERT_TRUE(streamed.done);
        EXPECT_EQ(resumeVerb("ok1").find("code")->asString(),
                  errc::notDegraded);
    }
    // Running campaign: same guard.
    {
        Client client(config_.socketPath);
        ASSERT_TRUE(client.send(submitRequest(
            "run1", {"slow"}, 1, 4, {{"delay_ms", "20"}})));
        ASSERT_TRUE(client.read().has_value()); // accepted
        EXPECT_EQ(resumeVerb("run1").find("code")->asString(),
                  errc::notDegraded);
        // Let it finish so teardown is clean.
        awaitState("run1", "done");
    }
}

TEST_F(ServerChaosTest, DegradedCampaignAutoResumesOnDaemonRestart)
{
    plan_.injectFrom(Op::Write, 5, fault(ENOSPC));
    startServer();
    const std::string batch = batchDir({"fast"}, 21, 2);
    {
        Client client(config_.socketPath);
        const Streamed streamed = streamSubmit(
            client, submitRequest("c5", {"fast"}, 21, 2));
        ASSERT_TRUE(streamed.degraded);
    }
    awaitState("c5", "degraded");
    stopServer();
    EXPECT_TRUE(fs::exists(checkpoint("c5")));

    // The next daemon generation (fault cleared) picks the checkpoint
    // up like any interrupted campaign — no client involvement.
    clearFaults();
    config_.socketPath += ".2";
    startServer();
    EXPECT_EQ(server_->resumedCampaigns(), 1u);
    awaitState("c5", "done");
    EXPECT_FALSE(fs::exists(checkpoint("c5")));
    expectPublishedMatchesBatch("c5", batch, "fast");
}

TEST_F(ServerChaosTest, SubscribeReplaysTheStreamByteIdentically)
{
    startServer();
    Client submitter(config_.socketPath);
    const Streamed streamed =
        streamSubmit(submitter, submitRequest("sub1", {"fast"}, 9, 2));
    ASSERT_TRUE(streamed.done);
    ASSERT_FALSE(streamed.seqLines.empty());

    // Full replay from seq 0: the exact bytes the submit stream saw,
    // in order, then a terminal status snapshot with the cursor.
    Client subscriber(config_.socketPath);
    JsonValue request = JsonValue::object();
    request.set("verb", JsonValue("subscribe"));
    request.set("campaign", JsonValue("sub1"));
    request.set("from", JsonValue(std::int64_t(0)));
    ASSERT_TRUE(subscriber.send(request));
    std::string raw;
    std::optional<JsonValue> ack = subscriber.read(&raw);
    ASSERT_TRUE(ack.has_value());
    EXPECT_EQ(ack->find("type")->asString(), "subscribed");

    std::vector<std::string> replayed;
    JsonValue terminal;
    for (;;) {
        std::optional<JsonValue> event = subscriber.read(&raw);
        ASSERT_TRUE(event.has_value()) << "stream ended early";
        if (event->find("type")->asString() == "status") {
            terminal = *event;
            break;
        }
        replayed.push_back(raw + "\n");
    }
    EXPECT_EQ(replayed, streamed.seqLines);
    EXPECT_EQ(terminal.find("state")->asString(), "done");
    EXPECT_EQ(static_cast<std::size_t>(
                  terminal.find("next_seq")->asInt()),
              streamed.seqLines.size());

    // Partial replay: `from` skips exactly the consumed prefix.
    Client tail(config_.socketPath);
    request.set("from", JsonValue(std::int64_t(3)));
    ASSERT_TRUE(tail.send(request));
    ASSERT_TRUE(tail.read().has_value()); // subscribed ack
    std::vector<std::string> tail_lines;
    for (;;) {
        std::optional<JsonValue> event = tail.read(&raw);
        ASSERT_TRUE(event.has_value());
        if (event->find("type")->asString() == "status")
            break;
        tail_lines.push_back(raw + "\n");
    }
    const std::vector<std::string> expected(
        streamed.seqLines.begin() + 3, streamed.seqLines.end());
    EXPECT_EQ(tail_lines, expected);

    // Subscribing to an unknown campaign is a structured error.
    Client ghost(config_.socketPath);
    request.set("campaign", JsonValue("ghost"));
    EXPECT_EQ(ghost.request(request).find("code")->asString(),
              errc::unknownCampaign);
}

TEST_F(ServerChaosTest, LiveSubscriberFollowsARunningCampaign)
{
    startServer();
    Client submitter(config_.socketPath);
    ASSERT_TRUE(submitter.send(submitRequest(
        "live1", {"slow"}, 5, 2, {{"delay_ms", "10"}})));
    std::optional<JsonValue> accepted = submitter.read();
    ASSERT_TRUE(accepted.has_value());

    // Attach while jobs are still running; follow to the end.
    Client subscriber(config_.socketPath);
    JsonValue request = JsonValue::object();
    request.set("verb", JsonValue("subscribe"));
    request.set("campaign", JsonValue("live1"));
    ASSERT_TRUE(subscriber.send(request));
    ASSERT_TRUE(subscriber.read().has_value()); // subscribed ack
    std::size_t live_results = 0;
    bool saw_done_event = false;
    for (;;) {
        std::optional<JsonValue> event = subscriber.read();
        ASSERT_TRUE(event.has_value());
        const std::string kind = event->find("type")->asString();
        if (kind == "status") {
            EXPECT_EQ(event->find("state")->asString(), "done");
            break;
        }
        if (kind == "result")
            ++live_results;
        if (kind == "done")
            saw_done_event = true;
    }
    EXPECT_EQ(live_results, 16u);
    EXPECT_TRUE(saw_done_event);

    // The original submit stream was untouched by the subscriber.
    const Streamed rest = [&] {
        Streamed streamed;
        for (;;) {
            std::string raw;
            std::optional<JsonValue> event = submitter.read(&raw);
            if (!event.has_value())
                break;
            const std::string kind = event->find("type")->asString();
            if (kind == "result")
                ++streamed.results;
            if (kind == "done") {
                streamed.done = true;
                break;
            }
        }
        return streamed;
    }();
    EXPECT_TRUE(rest.done);
    EXPECT_EQ(rest.results, 16u);
}

} // namespace
} // namespace harp::harpd
