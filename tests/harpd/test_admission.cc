/**
 * @file
 * Per-tenant admission control and the wedged-campaign watchdog:
 * campaign-count and in-flight-job quotas shedding with structured
 * `quota_exceeded` + `retry_after_ms` replies, tenant isolation (one
 * tenant's overload never sheds another), quota release on completion,
 * and the watchdog surfacing `stalled` in status instead of letting
 * clients hang on a wedged campaign.
 */

#include <gtest/gtest.h>

#include <atomic>
#include <chrono>
#include <filesystem>
#include <memory>
#include <thread>
#include <unistd.h>
#include <vector>

#include "harpd/client.hh"
#include "harpd/protocol.hh"
#include "harpd/server.hh"
#include "runner/registry.hh"

namespace harp::harpd {
namespace {

namespace fs = std::filesystem;
using runner::JsonType;
using runner::JsonValue;

runner::Registry
makeTestRegistry()
{
    runner::Registry registry;
    runner::ExperimentSpec spec;
    spec.name = "paced";
    spec.description = "paced toy metrics";
    spec.labels = {"toy"};
    runner::ParamAxis axis;
    axis.name = "i";
    for (std::int64_t i = 0; i < 4; ++i)
        axis.values.push_back(runner::ParamValue(i));
    spec.grid = runner::ParamGrid({axis});
    spec.tunables = {{"delay_ms", "5", "per-job sleep"}};
    spec.schema = {{"i_out", JsonType::Int, "echoed index"}};
    spec.run = [](const runner::RunContext &ctx) {
        std::this_thread::sleep_for(
            std::chrono::milliseconds(ctx.getInt("delay_ms", 5)));
        JsonValue metrics = JsonValue::object();
        metrics.set("i_out", JsonValue(ctx.getInt("i", -1)));
        return metrics;
    };
    registry.add(std::move(spec));
    return registry;
}

JsonValue
submitRequest(const std::string &campaign, const std::string &tenant,
              std::size_t repeat, const std::string &delay_ms = "5")
{
    JsonValue request = JsonValue::object();
    request.set("verb", JsonValue("submit"));
    request.set("campaign", JsonValue(campaign));
    JsonValue experiments = JsonValue::array();
    experiments.push(JsonValue("paced"));
    request.set("experiments", experiments);
    request.set("seed", JsonValue("1"));
    request.set("repeat", JsonValue(repeat));
    if (!tenant.empty())
        request.set("tenant", JsonValue(tenant));
    JsonValue overrides = JsonValue::object();
    overrides.set("delay_ms", JsonValue(delay_ms));
    request.set("overrides", overrides);
    return request;
}

class AdmissionTest : public ::testing::Test
{
  protected:
    void SetUp() override
    {
        registry_ = makeTestRegistry();
        static std::atomic<int> counter{0};
        root_ = fs::temp_directory_path() /
                ("harpd_adm_t" + std::to_string(::getpid()) + "_" +
                 std::to_string(counter.fetch_add(1)));
        fs::remove_all(root_);
        fs::create_directories(root_);
        config_.socketPath = (root_ / "d.sock").string();
        config_.dataDir = (root_ / "data").string();
        config_.threads = 2;
        config_.registry = &registry_;
        config_.shedRetryAfterMs = 123;
    }

    void TearDown() override
    {
        stopServer();
        fs::remove_all(root_);
    }

    void startServer()
    {
        server_ = std::make_unique<Server>(config_);
        server_->start();
        serveThread_ = std::thread([this] { server_->serve(); });
    }

    void stopServer()
    {
        if (server_ != nullptr)
            server_->requestStop();
        if (serveThread_.joinable())
            serveThread_.join();
        server_.reset();
    }

    JsonValue status(const std::string &campaign)
    {
        Client client(config_.socketPath);
        JsonValue request = JsonValue::object();
        request.set("verb", JsonValue("status"));
        request.set("campaign", JsonValue(campaign));
        return client.request(request);
    }

    JsonValue awaitState(const std::string &campaign,
                         const std::string &state)
    {
        for (int i = 0; i < 2000; ++i) {
            const JsonValue reply = status(campaign);
            if (reply.find("type")->asString() == "status" &&
                reply.find("state")->asString() == state)
                return reply;
            std::this_thread::sleep_for(std::chrono::milliseconds(5));
        }
        ADD_FAILURE() << "campaign " << campaign << " never reached "
                      << state;
        return JsonValue::object();
    }

    runner::Registry registry_;
    fs::path root_;
    ServerConfig config_;
    std::unique_ptr<Server> server_;
    std::thread serveThread_;
};

void
expectShed(const JsonValue &reply, std::size_t retry_after_ms)
{
    ASSERT_EQ(reply.find("type")->asString(), "error") << reply.dump();
    EXPECT_EQ(reply.find("code")->asString(), errc::quotaExceeded);
    EXPECT_TRUE(reply.find("retriable")->asBool());
    ASSERT_NE(reply.find("retry_after_ms"), nullptr);
    EXPECT_EQ(static_cast<std::size_t>(
                  reply.find("retry_after_ms")->asInt()),
              retry_after_ms);
}

TEST_F(AdmissionTest, CampaignQuotaShedsAndReleasesOnCompletion)
{
    config_.maxCampaignsPerTenant = 1;
    startServer();

    // Tenant "acme" occupies its one slot with a long campaign.
    Client holder(config_.socketPath);
    ASSERT_TRUE(
        holder.send(submitRequest("held", "acme", 8, "10")));
    ASSERT_TRUE(holder.read().has_value()); // accepted

    // Second submit from the same tenant: shed, structured.
    {
        Client client(config_.socketPath);
        expectShed(client.request(submitRequest("more", "acme", 1)),
                   123);
    }
    // Another tenant is unaffected — isolation, not a global brake.
    {
        Client client(config_.socketPath);
        ASSERT_TRUE(client.send(submitRequest("other1", "globex", 1)));
        const std::optional<JsonValue> accepted = client.read();
        ASSERT_TRUE(accepted.has_value());
        EXPECT_EQ(accepted->find("type")->asString(), "accepted");
    }
    // Status reports the owning tenant.
    EXPECT_EQ(status("held").find("tenant")->asString(), "acme");

    // Once the held campaign finishes, the slot frees up.
    awaitState("held", "done");
    {
        Client client(config_.socketPath);
        ASSERT_TRUE(client.send(submitRequest("again", "acme", 1)));
        const std::optional<JsonValue> accepted = client.read();
        ASSERT_TRUE(accepted.has_value());
        EXPECT_EQ(accepted->find("type")->asString(), "accepted");
    }
    awaitState("again", "done");
    awaitState("other1", "done");
}

TEST_F(AdmissionTest, JobQuotaPricesTheWholeSubmission)
{
    config_.maxInflightJobsPerTenant = 10;
    startServer();

    // 4 points x repeat 3 = 12 jobs: over the cap on its own, shed
    // up front — never partially admitted.
    {
        Client client(config_.socketPath);
        expectShed(client.request(submitRequest("big", "acme", 3)),
                   123);
    }
    // 8 jobs fit; another 8 would exceed 10 — shed while the first is
    // in flight, admitted after it drains.
    Client holder(config_.socketPath);
    ASSERT_TRUE(holder.send(submitRequest("first", "acme", 2, "10")));
    ASSERT_TRUE(holder.read().has_value());
    {
        Client client(config_.socketPath);
        expectShed(client.request(submitRequest("second", "acme", 2)),
                   123);
    }
    awaitState("first", "done");
    {
        Client client(config_.socketPath);
        ASSERT_TRUE(client.send(submitRequest("second", "acme", 2)));
        const std::optional<JsonValue> accepted = client.read();
        ASSERT_TRUE(accepted.has_value());
        EXPECT_EQ(accepted->find("type")->asString(), "accepted");
    }
    awaitState("second", "done");
}

TEST_F(AdmissionTest, UnlimitedByDefault)
{
    startServer(); // no caps configured
    std::vector<std::unique_ptr<Client>> holders;
    for (int i = 0; i < 4; ++i) {
        holders.push_back(
            std::make_unique<Client>(config_.socketPath));
        ASSERT_TRUE(holders.back()->send(submitRequest(
            "many" + std::to_string(i), "acme", 2, "5")));
        const std::optional<JsonValue> accepted =
            holders.back()->read();
        ASSERT_TRUE(accepted.has_value());
        EXPECT_EQ(accepted->find("type")->asString(), "accepted") << i;
    }
    for (int i = 0; i < 4; ++i)
        awaitState("many" + std::to_string(i), "done");
}

TEST_F(AdmissionTest, QueueDisabledByDefaultShedsImmediately)
{
    // admissionQueueLimit defaults to 0: over-quota submits must shed
    // with the structured error, never park as `queued` — existing
    // clients that key on retry_after_ms keep their contract.
    config_.maxCampaignsPerTenant = 1;
    startServer();
    Client holder(config_.socketPath);
    ASSERT_TRUE(holder.send(submitRequest("held", "acme", 8, "10")));
    const std::optional<JsonValue> accepted = holder.read();
    ASSERT_TRUE(accepted.has_value());
    ASSERT_EQ(accepted->find("type")->asString(), "accepted");

    Client client(config_.socketPath);
    ASSERT_TRUE(client.send(submitRequest("parked", "acme", 1)));
    const std::optional<JsonValue> reply = client.read();
    ASSERT_TRUE(reply.has_value());
    EXPECT_NE(reply->find("type")->asString(), "queued")
        << "queueing must be opt-in: " << reply->dump();
    expectShed(*reply, 123);
    awaitState("held", "done");
}

TEST_F(AdmissionTest, WatchdogFlagsAStalledCampaignAndClearsOnFinish)
{
    config_.stallTimeoutMs = 50;
    config_.watchdogPollMs = 10;
    startServer();

    // 300ms per job with a 50ms stall threshold: between completions
    // the campaign is (correctly) flagged as stalled.
    Client client(config_.socketPath);
    ASSERT_TRUE(client.send(submitRequest("slowpoke", "", 1, "300")));
    ASSERT_TRUE(client.read().has_value()); // accepted

    bool saw_stalled = false;
    for (int i = 0; i < 400 && !saw_stalled; ++i) {
        const JsonValue reply = status("slowpoke");
        const JsonValue *stalled = reply.find("stalled");
        if (stalled != nullptr && stalled->asBool()) {
            saw_stalled = true;
            // The status quantifies the stall for operators.
            ASSERT_NE(reply.find("stalled_ms"), nullptr);
            EXPECT_GE(reply.find("stalled_ms")->asInt(), 50);
        }
        std::this_thread::sleep_for(std::chrono::milliseconds(5));
    }
    EXPECT_TRUE(saw_stalled)
        << "watchdog never flagged a 300ms-per-job campaign at a 50ms "
           "threshold";

    // The flag is a diagnosis, not a verdict: the campaign still
    // finishes, and a finished campaign is not stalled (give the
    // watchdog one poll interval to observe the transition).
    awaitState("slowpoke", "done");
    std::this_thread::sleep_for(std::chrono::milliseconds(100));
    EXPECT_EQ(status("slowpoke").find("stalled"), nullptr);
}

TEST_F(AdmissionTest, WatchdogStaysQuietWhenProgressIsSteady)
{
    config_.stallTimeoutMs = 5000; // far above per-job latency
    config_.watchdogPollMs = 10;
    startServer();
    Client client(config_.socketPath);
    ASSERT_TRUE(client.send(submitRequest("steady", "", 2, "5")));
    bool done = false;
    while (!done) {
        const std::optional<JsonValue> event = client.read();
        ASSERT_TRUE(event.has_value());
        done = event->find("type")->asString() == "done";
    }
    EXPECT_EQ(status("steady").find("stalled"), nullptr);
}

} // namespace
} // namespace harp::harpd
