/**
 * @file
 * Client-resilience primitives: the decorrelated-jitter Backoff
 * schedule (deterministic under a fixed seed, bounded by base and cap,
 * decorrelated across seeds), connect/request deadlines turning a
 * wedged or silent daemon into a TimeoutError instead of a hung
 * client, and malformed daemon replies surfacing as structured
 * exceptions. The wedged daemon is a stub AF_UNIX listener inside the
 * test, so every failure mode is exercised for real.
 */

#include <gtest/gtest.h>

#include <atomic>
#include <chrono>
#include <cstring>
#include <filesystem>
#include <string>
#include <thread>
#include <vector>

#include <sys/socket.h>
#include <sys/un.h>
#include <unistd.h>

#include "harpd/client.hh"
#include "harpd/net.hh"

namespace harp::harpd {
namespace {

namespace fs = std::filesystem;
using runner::JsonValue;

TEST(BackoffTest, DeterministicUnderAFixedSeed)
{
    Backoff a(100, 5000, 42);
    Backoff b(100, 5000, 42);
    for (int i = 0; i < 32; ++i)
        EXPECT_EQ(a.nextDelayMs(), b.nextDelayMs()) << i;
}

TEST(BackoffTest, DelaysStayWithinBaseAndCap)
{
    Backoff backoff(100, 2000, 7);
    int prev = 100;
    for (int i = 0; i < 64; ++i) {
        const int delay = backoff.nextDelayMs();
        EXPECT_GE(delay, 100) << i;
        EXPECT_LE(delay, 2000) << i;
        // Decorrelated jitter: each draw is below 3x the previous
        // delay, so one unlucky draw cannot jump to the cap at once.
        EXPECT_LE(delay, std::max(prev * 3, 2000)) << i;
        prev = delay;
    }
}

TEST(BackoffTest, GrowsTowardTheCapOnRepeatedFailures)
{
    Backoff backoff(50, 800, 3);
    int max_seen = 0;
    for (int i = 0; i < 64; ++i)
        max_seen = std::max(max_seen, backoff.nextDelayMs());
    // With span tripling per step, 64 draws saturate near the cap.
    EXPECT_GT(max_seen, 400);
    EXPECT_LE(max_seen, 800);
}

TEST(BackoffTest, ResetRestartsFromTheBase)
{
    Backoff backoff(100, 10000, 9);
    for (int i = 0; i < 16; ++i)
        backoff.nextDelayMs(); // ramp up
    backoff.reset();
    // First post-reset draw is from [base, 3*base): the schedule
    // forgot the failure streak.
    const int delay = backoff.nextDelayMs();
    EXPECT_GE(delay, 100);
    EXPECT_LT(delay, 300);
}

TEST(BackoffTest, SeedsDecorrelateConcurrentClients)
{
    Backoff a(100, 5000, 1);
    Backoff b(100, 5000, 2);
    int differing = 0;
    for (int i = 0; i < 32; ++i)
        if (a.nextDelayMs() != b.nextDelayMs())
            ++differing;
    // Thundering-herd protection: different seeds, different schedules.
    EXPECT_GT(differing, 0);
}

/**
 * Stub daemon: accepts one connection and then follows a script —
 * stays silent (wedged), or sends a canned reply. Enough to exercise
 * every client deadline without a real harpd.
 */
class StubDaemon
{
  public:
    explicit StubDaemon(const std::string &reply)
        : reply_(reply),
          path_((fs::temp_directory_path() /
                 ("stub_" + std::to_string(::getpid()) + "_" +
                  std::to_string(counter_.fetch_add(1)) + ".sock"))
                    .string())
    {
        listenFd_ = ::socket(AF_UNIX, SOCK_STREAM | SOCK_CLOEXEC, 0);
        EXPECT_GE(listenFd_, 0);
        sockaddr_un addr{};
        addr.sun_family = AF_UNIX;
        std::strncpy(addr.sun_path, path_.c_str(),
                     sizeof(addr.sun_path) - 1);
        ::unlink(path_.c_str());
        EXPECT_EQ(::bind(listenFd_,
                         reinterpret_cast<sockaddr *>(&addr),
                         sizeof(addr)),
                  0);
        EXPECT_EQ(::listen(listenFd_, 4), 0);
        acceptor_ = std::thread([this] { run(); });
    }

    ~StubDaemon()
    {
        stop_.store(true);
        ::shutdown(listenFd_, SHUT_RDWR);
        ::close(listenFd_);
        if (acceptor_.joinable())
            acceptor_.join();
        ::unlink(path_.c_str());
    }

    const std::string &path() const { return path_; }

  private:
    void run()
    {
        while (!stop_.load()) {
            const int fd = ::accept(listenFd_, nullptr, nullptr);
            if (fd < 0)
                return;
            // Read whatever the client sent (ignore content), then
            // either reply or go silent until the client gives up.
            char buffer[512];
            (void)!::recv(fd, buffer, sizeof(buffer), 0);
            if (!reply_.empty())
                (void)!::send(fd, reply_.data(), reply_.size(),
                              MSG_NOSIGNAL);
            // Hold the connection open (silent) until torn down or
            // the client closes.
            while (!stop_.load()) {
                const ssize_t n =
                    ::recv(fd, buffer, sizeof(buffer), 0);
                if (n <= 0)
                    break;
            }
            ::close(fd);
        }
    }

    static std::atomic<int> counter_;
    std::string reply_;
    std::string path_;
    int listenFd_ = -1;
    std::atomic<bool> stop_{false};
    std::thread acceptor_;
};

std::atomic<int> StubDaemon::counter_{0};

JsonValue
pingRequest()
{
    JsonValue request = JsonValue::object();
    request.set("verb", JsonValue("ping"));
    return request;
}

TEST(ClientDeadlineTest, SilentDaemonTripsTheIoDeadline)
{
    StubDaemon daemon(""); // accepts, never replies
    ClientOptions options;
    options.ioTimeoutMs = 150;
    Client client(daemon.path(), options);
    const auto start = std::chrono::steady_clock::now();
    EXPECT_THROW((void)client.request(pingRequest()), TimeoutError);
    const auto elapsed =
        std::chrono::duration_cast<std::chrono::milliseconds>(
            std::chrono::steady_clock::now() - start);
    // Never hung: the deadline fired in deadline-order time, not
    // test-timeout time.
    EXPECT_GE(elapsed.count(), 100);
    EXPECT_LT(elapsed.count(), 5000);
}

TEST(ClientDeadlineTest, UnboundedClientsStayBlockingByDefault)
{
    // ioTimeoutMs = 0 arms nothing: a reply that takes a moment is
    // fine (the pre-deadline behavior every in-process test relies
    // on). The stub replies immediately here.
    StubDaemon daemon("{\"type\":\"pong\"}\n");
    Client client(daemon.path());
    EXPECT_EQ(client.request(pingRequest()).find("type")->asString(),
              "pong");
}

TEST(ClientDeadlineTest, MissingSocketIsAPlainErrorNotATimeout)
{
    const std::string path =
        (fs::temp_directory_path() / "no_such_daemon.sock").string();
    ClientOptions options;
    options.connectTimeoutMs = 200;
    try {
        Client client(path, options);
        FAIL() << "connect to a missing socket must throw";
    } catch (const TimeoutError &) {
        FAIL() << "ENOENT is a hard error, not a deadline expiry — "
                  "callers must not retry it as a timeout";
    } catch (const std::runtime_error &) {
        // Expected.
    }
}

TEST(ClientDeadlineTest, MalformedReplyIsAStructuredException)
{
    StubDaemon daemon("this is not json\n");
    Client client(daemon.path());
    try {
        (void)client.request(pingRequest());
        FAIL() << "garbage reply must throw";
    } catch (const TimeoutError &) {
        FAIL() << "garbage is not a timeout";
    } catch (const std::runtime_error &e) {
        EXPECT_NE(std::string(e.what()).find("invalid JSON"),
                  std::string::npos)
            << e.what();
    }
}

TEST(ClientDeadlineTest, EofMidStreamIsNulloptNotAnException)
{
    StubDaemon daemon("{\"type\":\"accepted\"}\n");
    ClientOptions options;
    options.ioTimeoutMs = 2000;
    Client client(daemon.path(), options);
    ASSERT_TRUE(client.send(pingRequest()));
    const std::optional<JsonValue> first = client.read();
    ASSERT_TRUE(first.has_value());
    EXPECT_EQ(first->find("type")->asString(), "accepted");
    // The stub holds silently; half-close our side so it hangs up,
    // then the stream ends cleanly (nullopt), the reattach trigger.
    client.halfClose();
    EXPECT_FALSE(client.read().has_value());
}

} // namespace
} // namespace harp::harpd
