/**
 * @file
 * Overload-robustness of the shared pool, in process: a thundering
 * herd of weighted tenants completes in fair-share order with
 * byte-identical per-campaign output, deadlines cancel cooperatively
 * at wave boundaries into a resumable `deadline_exceeded` (and release
 * admission quota to parked work), the bounded admission queue
 * publishes positions + retry estimates and promotes in arrival order,
 * impossible submissions are shed rather than parked forever, and
 * progress heartbeats ride the replayable event log at stable seqs.
 */

#include <gtest/gtest.h>

#include <atomic>
#include <chrono>
#include <filesystem>
#include <fstream>
#include <map>
#include <memory>
#include <sstream>
#include <thread>
#include <unistd.h>
#include <vector>

#include "harpd/client.hh"
#include "harpd/protocol.hh"
#include "harpd/server.hh"
#include "runner/campaign.hh"
#include "runner/registry.hh"

namespace harp::harpd {
namespace {

namespace fs = std::filesystem;
using runner::JsonType;
using runner::JsonValue;

runner::Registry
makeTestRegistry()
{
    runner::Registry registry;
    {
        runner::ExperimentSpec spec;
        spec.name = "paced";
        spec.description = "paced toy metrics";
        spec.labels = {"toy"};
        runner::ParamAxis axis;
        axis.name = "i";
        for (std::int64_t i = 0; i < 4; ++i)
            axis.values.push_back(runner::ParamValue(i));
        spec.grid = runner::ParamGrid({axis});
        spec.tunables = {{"delay_ms", "5", "per-job sleep"}};
        spec.schema = {{"i_out", JsonType::Int, "echoed index"}};
        spec.run = [](const runner::RunContext &ctx) {
            std::this_thread::sleep_for(std::chrono::milliseconds(
                ctx.getInt("delay_ms", 5)));
            JsonValue metrics = JsonValue::object();
            metrics.set("i_out", JsonValue(ctx.getInt("i", -1)));
            return metrics;
        };
        registry.add(std::move(spec));
    }
    {
        runner::ExperimentSpec spec;
        spec.name = "fast";
        spec.description = "deterministic toy metrics";
        spec.labels = {"toy"};
        runner::ParamAxis axis;
        axis.name = "x";
        axis.values = {runner::ParamValue(std::int64_t(1)),
                       runner::ParamValue(std::int64_t(2)),
                       runner::ParamValue(std::int64_t(3))};
        spec.grid = runner::ParamGrid({axis});
        spec.schema = {{"value", JsonType::Int, "seed-derived value"}};
        spec.run = [](const runner::RunContext &ctx) {
            JsonValue metrics = JsonValue::object();
            metrics.set("value",
                        JsonValue(static_cast<std::int64_t>(
                            ctx.seed() % 1000003)));
            return metrics;
        };
        registry.add(std::move(spec));
    }
    return registry;
}

std::string
readFile(const fs::path &path)
{
    std::ifstream in(path, std::ios::binary);
    EXPECT_TRUE(in.good()) << path;
    std::ostringstream out;
    out << in.rdbuf();
    return out.str();
}

JsonValue
submitRequest(const std::string &campaign, const std::string &tenant,
              std::size_t repeat, const std::string &delay_ms = "5",
              const std::string &priority = "",
              std::int64_t deadline_ms = 0,
              const std::string &experiment = "paced")
{
    JsonValue request = JsonValue::object();
    request.set("verb", JsonValue("submit"));
    request.set("campaign", JsonValue(campaign));
    JsonValue experiments = JsonValue::array();
    experiments.push(JsonValue(experiment));
    request.set("experiments", experiments);
    request.set("seed", JsonValue("7"));
    request.set("repeat", JsonValue(repeat));
    if (!tenant.empty())
        request.set("tenant", JsonValue(tenant));
    if (!priority.empty())
        request.set("priority", JsonValue(priority));
    if (deadline_ms > 0)
        request.set("deadline_ms", JsonValue(deadline_ms));
    if (experiment == "paced") {
        JsonValue overrides = JsonValue::object();
        overrides.set("delay_ms", JsonValue(delay_ms));
        request.set("overrides", overrides);
    }
    return request;
}

/** One streamed campaign, reassembled; terminal kind recorded. */
struct Streamed
{
    std::map<std::string, std::string> jsonl;
    std::vector<std::string> kinds; ///< event kinds in arrival order
    std::string terminal;
    std::size_t completedAtDeadline = 0;
    bool resumableAtDeadline = false;
};

Streamed
streamToEnd(Client &client, const JsonValue &request)
{
    Streamed streamed;
    EXPECT_TRUE(client.send(request));
    for (;;) {
        const std::optional<JsonValue> event = client.read();
        if (!event.has_value())
            break;
        const std::string kind = event->find("type")->asString();
        streamed.kinds.push_back(kind);
        if (kind == "result") {
            streamed.jsonl[event->find("experiment")->asString()] +=
                event->find("line")->asString() + "\n";
        } else if (kind == "deadline_exceeded") {
            streamed.terminal = kind;
            streamed.completedAtDeadline = static_cast<std::size_t>(
                event->find("completed_jobs")->asInt());
            streamed.resumableAtDeadline =
                event->find("resumable")->asBool();
            break;
        } else if (kind == "done" || kind == "cancelled" ||
                   kind == "error" || kind == "degraded") {
            streamed.terminal = kind;
            break;
        }
    }
    return streamed;
}

class ServerOverloadTest : public ::testing::Test
{
  protected:
    void SetUp() override
    {
        registry_ = makeTestRegistry();
        static std::atomic<int> counter{0};
        root_ = fs::temp_directory_path() /
                ("harpd_ovl_t" + std::to_string(::getpid()) + "_" +
                 std::to_string(counter.fetch_add(1)));
        fs::remove_all(root_);
        fs::create_directories(root_);
        config_.socketPath = (root_ / "d.sock").string();
        config_.dataDir = (root_ / "data").string();
        config_.threads = 2;
        config_.registry = &registry_;
        config_.shedRetryAfterMs = 100;
        config_.watchdogPollMs = 10;
    }

    void TearDown() override
    {
        stopServer();
        fs::remove_all(root_);
    }

    void startServer()
    {
        server_ = std::make_unique<Server>(config_);
        server_->start();
        serveThread_ = std::thread([this] { server_->serve(); });
    }

    void stopServer()
    {
        if (server_ != nullptr)
            server_->requestStop();
        if (serveThread_.joinable())
            serveThread_.join();
        server_.reset();
    }

    JsonValue request(const std::string &verb,
                      const std::string &campaign)
    {
        Client client(config_.socketPath);
        JsonValue req = JsonValue::object();
        req.set("verb", JsonValue(verb));
        req.set("campaign", JsonValue(campaign));
        return client.request(req);
    }

    JsonValue awaitState(const std::string &campaign,
                         const std::string &state)
    {
        for (int i = 0; i < 4000; ++i) {
            const JsonValue reply = request("status", campaign);
            if (reply.find("type")->asString() == "status" &&
                reply.find("state")->asString() == state)
                return reply;
            std::this_thread::sleep_for(std::chrono::milliseconds(5));
        }
        ADD_FAILURE() << campaign << " never reached " << state;
        return JsonValue::object();
    }

    /** Batch ground truth for the paced experiment. */
    std::string batchDir(std::size_t repeat, const std::string &delay)
    {
        const fs::path out =
            root_ / ("batch_" + std::to_string(batches_++));
        runner::CampaignOptions options;
        options.seed = 7;
        options.threads = 2;
        options.repeat = repeat;
        options.noTimings = true;
        options.outDir = out.string();
        options.overrides = {{"delay_ms", delay}};
        std::ostringstream log;
        runner::runCampaign(registry_.select({"paced"}), options, log);
        return out.string();
    }

    runner::Registry registry_;
    fs::path root_;
    ServerConfig config_;
    std::unique_ptr<Server> server_;
    std::thread serveThread_;
    int batches_ = 0;
};

TEST_F(ServerOverloadTest, ThunderingHerdFollowsWeightsWithExactBytes)
{
    config_.tenantWeights = {{"heavy", 3}, {"l1", 1}, {"l2", 1}};
    startServer();
    const std::string batch = batchDir(6, "10"); // 24 jobs, same spec

    // Three tenants, same 24-job campaign each, 3:1:1 weights on a
    // 2-slot pool. Submitted together; completion order and the
    // lights' progress at the heavy finish line witness the shares.
    const char *tenants[3] = {"heavy", "l1", "l2"};
    Streamed streams[3];
    std::chrono::steady_clock::time_point doneAt[3];
    std::vector<std::thread> clients;
    for (int t = 0; t < 3; ++t)
        clients.emplace_back([&, t] {
            Client client(config_.socketPath);
            streams[t] = streamToEnd(
                client, submitRequest(std::string("herd_") + tenants[t],
                                      tenants[t], 6, "10"));
            doneAt[t] = std::chrono::steady_clock::now();
        });
    clients[0].join();
    // The instant the heavy tenant finished: how far did the lights
    // get? With a 3/5 share, heavy's 24 jobs take ~40 slot-grants of
    // wall time, leaving each light ~8 of 24 done. Accept a wide band
    // around that — the failure modes (FIFO: lights ~24 done before
    // heavy; starvation: lights at 0) land far outside it.
    for (const char *light : {"l1", "l2"}) {
        const JsonValue reply =
            request("status", std::string("herd_") + light);
        ASSERT_EQ(reply.find("type")->asString(), "status");
        const std::int64_t done =
            reply.find("completed_jobs")->asInt();
        EXPECT_GE(done, 1) << light << " starved";
        EXPECT_LE(done, 20)
            << light << " outran a 3x-weighted tenant";
    }
    clients[1].join();
    clients[2].join();
    EXPECT_LT(doneAt[0].time_since_epoch().count(),
              doneAt[1].time_since_epoch().count());
    EXPECT_LT(doneAt[0].time_since_epoch().count(),
              doneAt[2].time_since_epoch().count());

    // Fairness never taxes correctness: every tenant's bytes match the
    // batch ground truth regardless of how waves interleaved.
    const std::string want = readFile(fs::path(batch) / "paced.jsonl");
    for (int t = 0; t < 3; ++t) {
        EXPECT_EQ(streams[t].terminal, "done") << tenants[t];
        EXPECT_EQ(streams[t].jsonl.at("paced"), want) << tenants[t];
    }
}

TEST_F(ServerOverloadTest, DeadlineParksResumableThenBytesStillExact)
{
    startServer();
    const std::string batch = batchDir(6, "20"); // 24 jobs

    // ~480ms of work against a 120ms deadline: the watchdog fires
    // mid-run, the wave boundary cancels cooperatively.
    Client client(config_.socketPath);
    const Streamed streamed = streamToEnd(
        client, submitRequest("dl", "", 6, "20", "", 120));
    ASSERT_EQ(streamed.terminal, "deadline_exceeded");
    EXPECT_TRUE(streamed.resumableAtDeadline);
    EXPECT_LT(streamed.completedAtDeadline, 24u)
        << "deadline fired after the campaign finished; tighten it";

    const JsonValue status = awaitState("dl", "deadline_exceeded");
    EXPECT_EQ(status.find("priority")->asString(), "normal");
    const fs::path ckpt =
        fs::path(config_.dataDir) / "checkpoints" / "dl.ckpt";
    EXPECT_TRUE(fs::exists(ckpt)) << "checkpoint must survive";

    // Resume without a deadline: finishes, consumes the checkpoint,
    // and the published bytes equal an uninterrupted batch run — the
    // cancel tore nothing.
    const JsonValue ok = request("resume", "dl");
    ASSERT_EQ(ok.find("type")->asString(), "ok") << ok.dump();
    EXPECT_TRUE(ok.find("resuming")->asBool());
    awaitState("dl", "done");
    EXPECT_FALSE(fs::exists(ckpt));
    EXPECT_EQ(readFile(fs::path(config_.dataDir) / "results" / "dl" /
                       "paced.jsonl"),
              readFile(fs::path(batch) / "paced.jsonl"));
    EXPECT_EQ(readFile(fs::path(config_.dataDir) / "results" / "dl" /
                       "summary.json"),
              readFile(fs::path(batch) / "summary.json"));
}

TEST_F(ServerOverloadTest, DeadlineCancelReleasesQuotaToParkedWork)
{
    config_.maxCampaignsPerTenant = 1;
    config_.admissionQueueLimit = 2;
    startServer();

    // "held" occupies acme's only campaign slot and will blow a 150ms
    // deadline long before its ~480ms of work completes.
    Client holder(config_.socketPath);
    ASSERT_TRUE(holder.send(
        submitRequest("held", "acme", 6, "20", "", 150)));

    // "parked" from the same tenant lands in the admission queue: the
    // stream leads with `queued` carrying position + retry estimate.
    Client waiter(config_.socketPath);
    ASSERT_TRUE(waiter.send(submitRequest("parked", "acme", 1, "5")));
    const std::optional<JsonValue> queued = waiter.read();
    ASSERT_TRUE(queued.has_value());
    ASSERT_EQ(queued->find("type")->asString(), "queued")
        << queued->dump();
    EXPECT_EQ(queued->find("position")->asInt(), 0);
    EXPECT_EQ(queued->find("retry_after_ms")->asInt(), 100)
        << "one shed-retry unit per campaign ahead (position 0 -> 1x)";
    EXPECT_EQ(request("status", "parked").find("state")->asString(),
              "queued");

    // The deadline cancel is also a quota release: "parked" promotes
    // without any client action and runs to completion.
    bool accepted = false;
    bool done = false;
    while (!done) {
        const std::optional<JsonValue> event = waiter.read();
        ASSERT_TRUE(event.has_value()) << "stream ended while queued";
        const std::string kind = event->find("type")->asString();
        if (kind == "accepted")
            accepted = true;
        done = kind == "done";
        ASSERT_NE(kind, "error") << event->dump();
    }
    EXPECT_TRUE(accepted) << "promotion must replay the accepted event";
    EXPECT_EQ(request("status", "held").find("state")->asString(),
              "deadline_exceeded");
    // And the expired campaign still resumes cleanly afterwards.
    ASSERT_EQ(request("resume", "held").find("type")->asString(), "ok");
    awaitState("held", "done");
}

TEST_F(ServerOverloadTest, QueueIsBoundedCancellableAndOrderRefreshed)
{
    config_.maxCampaignsPerTenant = 1;
    config_.admissionQueueLimit = 2;
    startServer();

    Client holder(config_.socketPath);
    ASSERT_TRUE(holder.send(submitRequest("held", "acme", 6, "40")));

    Client first(config_.socketPath);
    ASSERT_TRUE(first.send(submitRequest("q1", "acme", 1)));
    std::optional<JsonValue> event = first.read();
    ASSERT_TRUE(event.has_value());
    ASSERT_EQ(event->find("type")->asString(), "queued");
    EXPECT_EQ(event->find("position")->asInt(), 0);

    Client second(config_.socketPath);
    ASSERT_TRUE(second.send(submitRequest("q2", "acme", 1)));
    event = second.read();
    ASSERT_TRUE(event.has_value());
    ASSERT_EQ(event->find("type")->asString(), "queued");
    EXPECT_EQ(event->find("position")->asInt(), 1);
    EXPECT_EQ(event->find("retry_after_ms")->asInt(), 200)
        << "position 1 -> 2 shed-retry units";

    // Queue full: the third park attempt is shed, structured.
    {
        Client third(config_.socketPath);
        const JsonValue shed =
            third.request(submitRequest("q3", "acme", 1));
        ASSERT_EQ(shed.find("type")->asString(), "error");
        EXPECT_EQ(shed.find("code")->asString(), errc::quotaExceeded);
    }

    // Cancelling a parked campaign ends its stream with `cancelled`
    // and shifts everyone behind it forward.
    ASSERT_EQ(request("cancel", "q1").find("type")->asString(), "ok");
    event = first.read();
    ASSERT_TRUE(event.has_value());
    EXPECT_EQ(event->find("type")->asString(), "cancelled");
    awaitState("q1", "cancelled");
    EXPECT_EQ(request("status", "q2")
                  .find("queue_position")
                  ->asInt(),
              0)
        << "cancel ahead must shift q2 forward";

    // Quota release promotes q2; it runs and completes.
    ASSERT_EQ(request("cancel", "held").find("type")->asString(), "ok");
    awaitState("q2", "done");
}

TEST_F(ServerOverloadTest, ImpossibleSubmissionIsShedNotParked)
{
    config_.maxInflightJobsPerTenant = 10;
    config_.admissionQueueLimit = 4;
    startServer();
    // 24 jobs can never fit a 10-job ledger: parking it would wedge
    // the queue forever, so it must shed immediately even with room.
    Client client(config_.socketPath);
    const JsonValue reply =
        client.request(submitRequest("never", "acme", 6));
    ASSERT_EQ(reply.find("type")->asString(), "error") << reply.dump();
    EXPECT_EQ(reply.find("code")->asString(), errc::quotaExceeded);
    EXPECT_TRUE(reply.find("retriable")->asBool());
}

TEST_F(ServerOverloadTest, ProgressHeartbeatsAreReplayableAtStableSeqs)
{
    startServer();
    Client client(config_.socketPath);
    JsonValue request = submitRequest("prog", "", 2, "5", "", 0, "fast");
    Streamed live;
    std::vector<std::pair<std::int64_t, std::int64_t>> liveTicks;
    {
        EXPECT_TRUE(client.send(request));
        for (;;) {
            const std::optional<JsonValue> event = client.read();
            ASSERT_TRUE(event.has_value());
            const std::string kind = event->find("type")->asString();
            if (kind == "progress") {
                ASSERT_NE(event->find("seq"), nullptr);
                ASSERT_NE(event->find("wave"), nullptr);
                ASSERT_NE(event->find("jobs_per_sec"), nullptr);
                EXPECT_EQ(event->find("jobs_total")->asInt(), 6);
                liveTicks.emplace_back(
                    event->find("seq")->asInt(),
                    event->find("jobs_done")->asInt());
            }
            if (kind == "done")
                break;
            ASSERT_NE(kind, "error") << event->dump();
        }
    }
    // 6 jobs, stride max(1, 6/64) = 1: one heartbeat per result,
    // monotonically counting to completion.
    ASSERT_EQ(liveTicks.size(), 6u);
    for (std::size_t i = 0; i < liveTicks.size(); ++i)
        EXPECT_EQ(liveTicks[i].second,
                  static_cast<std::int64_t>(i + 1));

    // Replay from seq 0: the heartbeats come back verbatim — same
    // seqs, same counts — because they are log members, not transient
    // socket decorations.
    Client replayer(config_.socketPath);
    JsonValue subscribe = JsonValue::object();
    subscribe.set("verb", JsonValue("subscribe"));
    subscribe.set("campaign", JsonValue("prog"));
    subscribe.set("from", JsonValue(std::int64_t(0)));
    ASSERT_TRUE(replayer.send(subscribe));
    std::vector<std::pair<std::int64_t, std::int64_t>> replayTicks;
    for (;;) {
        const std::optional<JsonValue> event = replayer.read();
        ASSERT_TRUE(event.has_value());
        const std::string kind = event->find("type")->asString();
        if (kind == "progress")
            replayTicks.emplace_back(
                event->find("seq")->asInt(),
                event->find("jobs_done")->asInt());
        if (kind == "status" || kind == "done")
            break;
    }
    EXPECT_EQ(replayTicks, liveTicks);
}

} // namespace
} // namespace harp::harpd
