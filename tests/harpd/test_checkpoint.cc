/**
 * @file
 * Unit tests for the crash-safe checkpoint file: round-trip fidelity,
 * append-after-load, and — the property the kill/resume tier depends
 * on — truncate-and-recover on every corrupt-tail shape (partial final
 * record, flipped byte, garbage append), with an unreadable *header*
 * being the only unrecoverable case.
 */

#include <gtest/gtest.h>

#include <cerrno>
#include <cstdint>
#include <cstdio>
#include <filesystem>
#include <fstream>
#include <sstream>
#include <unistd.h>

#include "harpd/checkpoint.hh"

namespace harp::harpd {
namespace {

namespace fs = std::filesystem;

class CheckpointTest : public ::testing::Test
{
  protected:
    void SetUp() override
    {
        dir_ = fs::temp_directory_path() /
               ("harp_ckpt_" + std::to_string(::getpid()));
        fs::remove_all(dir_);
        fs::create_directories(dir_);
        path_ = (dir_ / "c.ckpt").string();
    }
    void TearDown() override { fs::remove_all(dir_); }

    CheckpointHeader sampleHeader() const
    {
        CheckpointHeader header;
        header.campaign = "c";
        header.experiments = {"alpha", "beta"};
        header.seed = 18446744073709551615ull; // uint64 max survives
        header.repeat = 3;
        header.overrides = {{"rounds", "16"}, {"prob", "0.25"}};
        return header;
    }

    void writeSample(std::size_t records)
    {
        CheckpointWriter writer(path_, sampleHeader());
        for (std::size_t i = 0; i < records; ++i)
            ASSERT_FALSE(writer.add(
                {i % 2, i, "{\"job\":" + std::to_string(i) + "}"}));
    }

    std::string readRaw() const
    {
        std::ifstream in(path_, std::ios::binary);
        std::ostringstream out;
        out << in.rdbuf();
        return out.str();
    }

    void writeRaw(const std::string &text) const
    {
        std::ofstream out(path_, std::ios::binary | std::ios::trunc);
        out << text;
    }

    fs::path dir_;
    std::string path_;
};

TEST_F(CheckpointTest, RoundTripsHeaderAndRecords)
{
    writeSample(5);
    const std::optional<LoadedCheckpoint> loaded = loadCheckpoint(path_);
    ASSERT_TRUE(loaded.has_value());
    EXPECT_FALSE(loaded->recovered);
    EXPECT_EQ(loaded->header.campaign, "c");
    EXPECT_EQ(loaded->header.experiments,
              (std::vector<std::string>{"alpha", "beta"}));
    EXPECT_EQ(loaded->header.seed, 18446744073709551615ull);
    EXPECT_EQ(loaded->header.repeat, 3u);
    EXPECT_EQ(loaded->header.overrides.at("prob"), "0.25");
    ASSERT_EQ(loaded->records.size(), 5u);
    for (std::size_t i = 0; i < 5; ++i) {
        EXPECT_EQ(loaded->records[i].experiment, i % 2);
        EXPECT_EQ(loaded->records[i].job, i);
        EXPECT_EQ(loaded->records[i].line,
                  "{\"job\":" + std::to_string(i) + "}");
    }
}

TEST_F(CheckpointTest, PriorityRoundTripsAndNormalIsElided)
{
    // Non-Normal priority survives the crash/restart cycle, so a
    // resumed background sweep stays background under contention.
    CheckpointHeader header = sampleHeader();
    header.priority = common::PriorityClass::Background;
    {
        CheckpointWriter writer(path_, header);
    }
    const std::optional<LoadedCheckpoint> loaded = loadCheckpoint(path_);
    ASSERT_TRUE(loaded.has_value());
    EXPECT_EQ(loaded->header.priority, common::PriorityClass::Background);

    // Normal is the wire default and is elided — old checkpoints
    // (which predate the field) and new Normal ones are identical.
    writeRaw("");
    {
        CheckpointWriter writer(path_, sampleHeader());
    }
    EXPECT_EQ(readRaw().find("priority"), std::string::npos);
    const std::optional<LoadedCheckpoint> plain = loadCheckpoint(path_);
    ASSERT_TRUE(plain.has_value());
    EXPECT_EQ(plain->header.priority, common::PriorityClass::Normal);
}

TEST_F(CheckpointTest, AppendModeContinuesAfterLoad)
{
    writeSample(2);
    {
        CheckpointWriter writer(path_); // reopen, append
        ASSERT_FALSE(writer.add({0, 2, "{\"job\":2}"}));
    }
    const std::optional<LoadedCheckpoint> loaded = loadCheckpoint(path_);
    ASSERT_TRUE(loaded.has_value());
    ASSERT_EQ(loaded->records.size(), 3u);
    EXPECT_EQ(loaded->records[2].line, "{\"job\":2}");
}

TEST_F(CheckpointTest, MissingFileIsNullopt)
{
    EXPECT_FALSE(loadCheckpoint((dir_ / "absent.ckpt").string())
                     .has_value());
}

TEST_F(CheckpointTest, PartialTrailingRecordIsTruncatedAway)
{
    writeSample(3);
    const std::string intact = readRaw();
    // Simulate the SIGKILL-interrupted write: half a record, no '\n'.
    writeRaw(intact + "deadbeefdeadbeef {\"type\":\"job\",\"exp\":0");

    const std::optional<LoadedCheckpoint> loaded = loadCheckpoint(path_);
    ASSERT_TRUE(loaded.has_value());
    EXPECT_TRUE(loaded->recovered);
    EXPECT_EQ(loaded->records.size(), 3u);
    // The file itself was repaired, so the next load is clean and an
    // appending writer continues from a valid tail.
    EXPECT_EQ(readRaw(), intact);
    const std::optional<LoadedCheckpoint> again = loadCheckpoint(path_);
    ASSERT_TRUE(again.has_value());
    EXPECT_FALSE(again->recovered);
}

TEST_F(CheckpointTest, CorruptedLastRecordIsTruncatedAway)
{
    writeSample(4);
    std::string text = readRaw();
    // Flip one byte inside the *last* record's payload: its checksum
    // no longer matches, so the record (and only it) must be dropped.
    const std::size_t last_line_start =
        text.rfind('\n', text.size() - 2) + 1;
    text[last_line_start + 20] ^= 0x01;
    writeRaw(text);

    const std::optional<LoadedCheckpoint> loaded = loadCheckpoint(path_);
    ASSERT_TRUE(loaded.has_value());
    EXPECT_TRUE(loaded->recovered);
    ASSERT_EQ(loaded->records.size(), 3u);
    EXPECT_EQ(loaded->records.back().job, 2u);
    // Truncated back to the last good byte.
    EXPECT_EQ(readRaw(), text.substr(0, last_line_start));
}

TEST_F(CheckpointTest, CorruptionMidFileDropsEverythingAfterIt)
{
    writeSample(4);
    std::string text = readRaw();
    // Corrupt the second job record; records 2..3 follow it and are
    // unreachable once the scan stops (append-only framing has no
    // resync point).
    std::size_t line_start = 0;
    for (int skip = 0; skip < 2; ++skip) // header + record 0
        line_start = text.find('\n', line_start) + 1;
    text[line_start + 3] ^= 0x40;
    writeRaw(text);

    const std::optional<LoadedCheckpoint> loaded = loadCheckpoint(path_);
    ASSERT_TRUE(loaded.has_value());
    EXPECT_TRUE(loaded->recovered);
    ASSERT_EQ(loaded->records.size(), 1u);
    EXPECT_EQ(loaded->records[0].job, 0u);
}

TEST_F(CheckpointTest, GarbageTailIsRecovered)
{
    writeSample(2);
    const std::string intact = readRaw();
    writeRaw(intact + "complete garbage, not even a frame\n");
    const std::optional<LoadedCheckpoint> loaded = loadCheckpoint(path_);
    ASSERT_TRUE(loaded.has_value());
    EXPECT_TRUE(loaded->recovered);
    EXPECT_EQ(loaded->records.size(), 2u);
    EXPECT_EQ(readRaw(), intact);
}

TEST_F(CheckpointTest, UnreadableHeaderIsUnusable)
{
    writeSample(2);
    std::string text = readRaw();
    text[2] ^= 0x10; // corrupt the header frame itself
    writeRaw(text);
    EXPECT_FALSE(loadCheckpoint(path_).has_value());

    // A well-framed first record that is not a header is also fatal:
    // there is nothing to resume *into*.
    writeRaw("");
    {
        CheckpointWriter writer(path_); // append mode: no header write
        ASSERT_FALSE(writer.add({0, 0, "{\"x\":1}"}));
    }
    EXPECT_FALSE(loadCheckpoint(path_).has_value());
}

TEST_F(CheckpointTest, EmptyRecordLineIsRejectedAsCorruption)
{
    // An empty "line" would resurrect an errored job as completed;
    // the loader must treat such a record as corruption and stop —
    // even though its checksum is valid.
    writeSample(1);
    const std::string payload =
        "{\"type\":\"job\",\"exp\":0,\"job\":1,\"line\":\"\"}";
    std::uint64_t hash = 1469598103934665603ull; // FNV-1a, as framed
    for (const char c : payload) {
        hash ^= static_cast<unsigned char>(c);
        hash *= 1099511628211ull;
    }
    char digest[17];
    std::snprintf(digest, sizeof(digest), "%016llx",
                  static_cast<unsigned long long>(hash));
    writeRaw(readRaw() + digest + " " + payload + "\n");

    const std::optional<LoadedCheckpoint> loaded = loadCheckpoint(path_);
    ASSERT_TRUE(loaded.has_value());
    EXPECT_TRUE(loaded->recovered);
    EXPECT_EQ(loaded->records.size(), 1u);
}

TEST_F(CheckpointTest, InjectedHeaderFaultThrowsWithTheErrno)
{
    common::io::FaultPlan plan;
    plan.injectAt(common::io::Op::Write, 0,
                  {std::error_code(ENOSPC, std::generic_category())});
    try {
        CheckpointWriter writer(path_, sampleHeader(), &plan);
        FAIL() << "header write must surface the injected fault";
    } catch (const CheckpointIoError &e) {
        EXPECT_EQ(e.code.value(), ENOSPC);
    }
}

TEST_F(CheckpointTest, InjectedRecordFaultSurfacesFromAdd)
{
    common::io::FaultPlan plan;
    // The header costs write#0 (+ its fsync); the first add() is
    // write#1.
    plan.injectAt(common::io::Op::Write, 1,
                  {std::error_code(ENOSPC, std::generic_category())});
    CheckpointWriter writer(path_, sampleHeader(), &plan);
    EXPECT_EQ(writer.add({0, 0, "{\"job\":0}"}).value(), ENOSPC);
    // The fault was one-shot: the writer is not wedged, and the next
    // record lands durably after the failed one vanished atomically.
    ASSERT_FALSE(writer.add({0, 1, "{\"job\":1}"}));
    const std::optional<LoadedCheckpoint> loaded = loadCheckpoint(path_);
    ASSERT_TRUE(loaded.has_value());
    EXPECT_FALSE(loaded->recovered);
    ASSERT_EQ(loaded->records.size(), 1u);
    EXPECT_EQ(loaded->records[0].line, "{\"job\":1}");
}

} // namespace
} // namespace harp::harpd
