/**
 * @file
 * In-process integration tests for the harpd server: batch-vs-served
 * byte-identity, concurrent multi-tenant submissions, double-submit
 * rejection, cancellation, client-disconnect fault injection,
 * wire-level fault injection (malformed/oversized/half-closed), the
 * connection-leak witness, and graceful-shutdown resume — all against
 * a synthetic registry so the suite stays fast enough for the TSan and
 * ASan sweeps.
 */

#include <gtest/gtest.h>

#include <atomic>
#include <chrono>
#include <filesystem>
#include <fstream>
#include <map>
#include <memory>
#include <sstream>
#include <thread>
#include <unistd.h>
#include <vector>

#include "harpd/client.hh"
#include "harpd/protocol.hh"
#include "harpd/server.hh"
#include "runner/campaign.hh"
#include "runner/registry.hh"

namespace harp::harpd {
namespace {

namespace fs = std::filesystem;
using runner::JsonType;
using runner::JsonValue;

/** Deterministic, fast experiments for the served-vs-batch contract. */
runner::Registry
makeTestRegistry()
{
    runner::Registry registry;
    {
        runner::ExperimentSpec spec;
        spec.name = "fast";
        spec.description = "deterministic toy metrics";
        spec.labels = {"toy"};
        runner::ParamAxis axis;
        axis.name = "x";
        axis.values = {runner::ParamValue(std::int64_t(1)),
                       runner::ParamValue(std::int64_t(2)),
                       runner::ParamValue(std::int64_t(3))};
        spec.grid = runner::ParamGrid({axis});
        spec.schema = {{"value", JsonType::Int, "seed-derived value"},
                       {"x2", JsonType::Int, "x squared"}};
        spec.run = [](const runner::RunContext &ctx) {
            const std::int64_t x = ctx.getInt("x", 0);
            JsonValue metrics = JsonValue::object();
            metrics.set("value",
                        JsonValue(static_cast<std::int64_t>(
                            ctx.seed() % 1000003)));
            metrics.set("x2", JsonValue(x * x));
            return metrics;
        };
        registry.add(std::move(spec));
    }
    {
        runner::ExperimentSpec spec;
        spec.name = "slow";
        spec.description = "paced toy metrics for cancel/kill windows";
        spec.labels = {"toy"};
        runner::ParamAxis axis;
        axis.name = "i";
        for (std::int64_t i = 0; i < 8; ++i)
            axis.values.push_back(runner::ParamValue(i));
        spec.grid = runner::ParamGrid({axis});
        spec.tunables = {{"delay_ms", "5", "per-job sleep"}};
        spec.schema = {{"i_out", JsonType::Int, "echoed index"}};
        spec.run = [](const runner::RunContext &ctx) {
            std::this_thread::sleep_for(std::chrono::milliseconds(
                ctx.getInt("delay_ms", 5)));
            JsonValue metrics = JsonValue::object();
            metrics.set("i_out", JsonValue(ctx.getInt("i", -1)));
            return metrics;
        };
        registry.add(std::move(spec));
    }
    return registry;
}

std::string
readFile(const fs::path &path)
{
    std::ifstream in(path, std::ios::binary);
    EXPECT_TRUE(in.good()) << path;
    std::ostringstream out;
    out << in.rdbuf();
    return out.str();
}

/** Everything one streamed submit produced, reassembled. */
struct StreamedCampaign
{
    std::map<std::string, std::string> jsonl; ///< name -> file bytes
    std::string summaryBytes;                 ///< summary.json bytes
    std::map<std::string, std::string> resultHash;
    bool done = false;
    bool cancelled = false;
    std::string errorCode;
    std::size_t totalJobs = 0;
    std::size_t restoredJobs = 0;
};

JsonValue
submitRequest(const std::string &campaign,
              const std::vector<std::string> &experiments,
              std::uint64_t seed, std::size_t repeat,
              const std::map<std::string, std::string> &overrides = {})
{
    JsonValue request = JsonValue::object();
    request.set("verb", JsonValue("submit"));
    request.set("campaign", JsonValue(campaign));
    JsonValue list = JsonValue::array();
    for (const std::string &name : experiments)
        list.push(JsonValue(name));
    request.set("experiments", list);
    request.set("seed", JsonValue(std::to_string(seed)));
    request.set("repeat", JsonValue(repeat));
    if (!overrides.empty()) {
        JsonValue object = JsonValue::object();
        for (const auto &[key, value] : overrides)
            object.set(key, JsonValue(value));
        request.set("overrides", object);
    }
    return request;
}

/** Drive one submit to completion, reassembling the stream. */
StreamedCampaign
streamSubmit(Client &client, const JsonValue &request)
{
    StreamedCampaign streamed;
    EXPECT_TRUE(client.send(request));
    for (;;) {
        std::optional<JsonValue> event = client.read();
        if (!event.has_value())
            break;
        const std::string kind = event->find("type")->asString();
        if (kind == "accepted") {
            streamed.totalJobs = static_cast<std::size_t>(
                event->find("total_jobs")->asInt());
            streamed.restoredJobs = static_cast<std::size_t>(
                event->find("restored_jobs")->asInt());
        } else if (kind == "result") {
            streamed.jsonl[event->find("experiment")->asString()] +=
                event->find("line")->asString() + "\n";
        } else if (kind == "experiment_done") {
            streamed.resultHash[event->find("experiment")->asString()] =
                event->find("result_hash")->asString();
        } else if (kind == "summary") {
            streamed.summaryBytes =
                event->find("summary")->dump(2) + "\n";
        } else if (kind == "done") {
            streamed.done = true;
            break;
        } else if (kind == "cancelled") {
            streamed.cancelled = true;
            break;
        } else if (kind == "error") {
            streamed.errorCode = event->find("code")->asString();
            break;
        }
    }
    return streamed;
}

class ServerTest : public ::testing::Test
{
  protected:
    void SetUp() override
    {
        registry_ = makeTestRegistry();
        static std::atomic<int> counter{0};
        const int id = counter.fetch_add(1);
        root_ = fs::temp_directory_path() /
                ("harpd_t" + std::to_string(::getpid()) + "_" +
                 std::to_string(id));
        fs::remove_all(root_);
        fs::create_directories(root_);
        config_.socketPath = (root_ / "d.sock").string();
        config_.dataDir = (root_ / "data").string();
        config_.threads = 4;
        config_.registry = &registry_;
    }

    void TearDown() override
    {
        stopServer();
        fs::remove_all(root_);
    }

    void startServer()
    {
        server_ = std::make_unique<Server>(config_);
        server_->start();
        serveThread_ = std::thread([this] { server_->serve(); });
    }

    void stopServer()
    {
        if (server_ != nullptr)
            server_->requestStop();
        if (serveThread_.joinable())
            serveThread_.join();
        server_.reset();
    }

    /** Batch ground truth: same registry, same seed, no timings. */
    std::string batchDir(const std::vector<std::string> &selectors,
                         std::uint64_t seed, std::size_t repeat,
                         std::size_t threads)
    {
        const fs::path out =
            root_ / ("batch_" + std::to_string(batches_++));
        runner::CampaignOptions options;
        options.seed = seed;
        options.threads = threads;
        options.repeat = repeat;
        options.noTimings = true;
        options.outDir = out.string();
        std::ostringstream log;
        runner::runCampaign(registry_.select(selectors), options, log);
        return out.string();
    }

    /** Poll the status verb until @p state (or fail after ~10 s). */
    JsonValue awaitState(const std::string &campaign,
                         const std::string &state)
    {
        for (int i = 0; i < 2000; ++i) {
            Client client(config_.socketPath);
            JsonValue request = JsonValue::object();
            request.set("verb", JsonValue("status"));
            request.set("campaign", JsonValue(campaign));
            const JsonValue reply = client.request(request);
            if (reply.find("type")->asString() == "status" &&
                reply.find("state")->asString() == state)
                return reply;
            std::this_thread::sleep_for(std::chrono::milliseconds(5));
        }
        ADD_FAILURE() << "campaign " << campaign << " never reached "
                      << state;
        return JsonValue::object();
    }

    runner::Registry registry_;
    fs::path root_;
    ServerConfig config_;
    std::unique_ptr<Server> server_;
    std::thread serveThread_;
    int batches_ = 0;
};

TEST_F(ServerTest, ServedCampaignIsByteIdenticalToBatch)
{
    startServer();
    const std::string batch = batchDir({"fast", "slow"}, 42, 2, 4);

    Client client(config_.socketPath);
    const StreamedCampaign streamed = streamSubmit(
        client, submitRequest("c1", {"fast", "slow"}, 42, 2));
    ASSERT_TRUE(streamed.done);
    EXPECT_EQ(streamed.totalJobs, 3u * 2 + 8u * 2);
    EXPECT_EQ(streamed.restoredJobs, 0u);

    // Streamed lines == batch JSONL bytes, experiment by experiment.
    for (const std::string name : {"fast", "slow"})
        EXPECT_EQ(streamed.jsonl.at(name),
                  readFile(fs::path(batch) / (name + ".jsonl")))
            << name;
    // Streamed summary == batch summary.json bytes.
    EXPECT_EQ(streamed.summaryBytes,
              readFile(fs::path(batch) / "summary.json"));

    // The daemon's published copy matches too, file for file.
    const fs::path published =
        fs::path(config_.dataDir) / "results" / "c1";
    for (const std::string name : {"fast", "slow"})
        EXPECT_EQ(readFile(published / (name + ".jsonl")),
                  readFile(fs::path(batch) / (name + ".jsonl")));
    EXPECT_EQ(readFile(published / "summary.json"),
              readFile(fs::path(batch) / "summary.json"));

    // Success removes the checkpoint.
    EXPECT_FALSE(fs::exists(fs::path(config_.dataDir) / "checkpoints" /
                            "c1.ckpt"));
}

TEST_F(ServerTest, ServedBytesIndependentOfServerThreadCount)
{
    config_.threads = 1;
    startServer();
    Client narrow(config_.socketPath);
    const StreamedCampaign one = streamSubmit(
        narrow, submitRequest("t1", {"fast"}, 7, 3));
    ASSERT_TRUE(one.done);
    stopServer();

    config_.threads = 4;
    config_.socketPath += ".2";
    startServer();
    Client wide(config_.socketPath);
    const StreamedCampaign four = streamSubmit(
        wide, submitRequest("t4", {"fast"}, 7, 3));
    ASSERT_TRUE(four.done);

    EXPECT_EQ(one.jsonl.at("fast"), four.jsonl.at("fast"));
    EXPECT_EQ(one.summaryBytes, four.summaryBytes);
    EXPECT_EQ(one.resultHash.at("fast"), four.resultHash.at("fast"));
}

TEST_F(ServerTest, ConcurrentTenantsGetIndependentIdenticalStreams)
{
    startServer();
    constexpr int kTenants = 4;
    std::vector<StreamedCampaign> streams(kTenants);
    std::vector<std::thread> tenants;
    for (int t = 0; t < kTenants; ++t)
        tenants.emplace_back([&, t] {
            Client client(config_.socketPath);
            streams[t] = streamSubmit(
                client, submitRequest("tenant" + std::to_string(t),
                                      {"fast", "slow"}, 5, 1,
                                      {{"delay_ms", "1"}}));
        });
    for (std::thread &tenant : tenants)
        tenant.join();

    // Same spec + same seed from different tenants: identical bytes
    // and hashes, regardless of how the shared pool interleaved them.
    for (int t = 0; t < kTenants; ++t) {
        ASSERT_TRUE(streams[t].done) << t;
        EXPECT_EQ(streams[t].jsonl.at("fast"),
                  streams[0].jsonl.at("fast"));
        EXPECT_EQ(streams[t].jsonl.at("slow"),
                  streams[0].jsonl.at("slow"));
        EXPECT_EQ(streams[t].resultHash.at("fast"),
                  streams[0].resultHash.at("fast"));
        EXPECT_EQ(streams[t].summaryBytes, streams[0].summaryBytes);
    }
    // And the batch ground truth agrees.
    const std::string batch = batchDir({"fast", "slow"}, 5, 1, 2);
    EXPECT_EQ(streams[0].jsonl.at("fast"),
              readFile(fs::path(batch) / "fast.jsonl"));
    EXPECT_EQ(streams[0].summaryBytes,
              readFile(fs::path(batch) / "summary.json"));
}

TEST_F(ServerTest, DoubleSubmitIsRejected)
{
    startServer();
    Client first(config_.socketPath);
    ASSERT_TRUE(first.send(
        submitRequest("dup", {"slow"}, 1, 2, {{"delay_ms", "10"}})));
    const std::optional<JsonValue> accepted = first.read();
    ASSERT_TRUE(accepted.has_value());
    ASSERT_EQ(accepted->find("type")->asString(), "accepted");

    // While running: rejected.
    Client second(config_.socketPath);
    const JsonValue while_running =
        second.request(submitRequest("dup", {"fast"}, 1, 1));
    EXPECT_EQ(while_running.find("type")->asString(), "error");
    EXPECT_EQ(while_running.find("code")->asString(),
              errc::duplicateCampaign);

    awaitState("dup", "done");
    // After completion: still rejected (results exist on disk).
    Client third(config_.socketPath);
    const JsonValue after_done =
        third.request(submitRequest("dup", {"fast"}, 1, 1));
    EXPECT_EQ(after_done.find("code")->asString(),
              errc::duplicateCampaign);
}

TEST_F(ServerTest, CancelStopsACampaignAndRemovesItsCheckpoint)
{
    startServer();
    Client submitter(config_.socketPath);
    ASSERT_TRUE(submitter.send(submitRequest(
        "victim", {"slow"}, 1, 16, {{"delay_ms", "20"}})));
    const std::optional<JsonValue> accepted = submitter.read();
    ASSERT_TRUE(accepted.has_value());

    Client controller(config_.socketPath);
    JsonValue cancel = JsonValue::object();
    cancel.set("verb", JsonValue("cancel"));
    cancel.set("campaign", JsonValue("victim"));
    const JsonValue reply = controller.request(cancel);
    EXPECT_EQ(reply.find("type")->asString(), "ok");

    // The stream ends with a `cancelled` event (never `done`).
    bool saw_cancelled = false;
    for (;;) {
        const std::optional<JsonValue> event = submitter.read();
        if (!event.has_value())
            break;
        const std::string kind = event->find("type")->asString();
        ASSERT_NE(kind, "done");
        if (kind == "cancelled") {
            saw_cancelled = true;
            break;
        }
    }
    EXPECT_TRUE(saw_cancelled);
    awaitState("victim", "cancelled");
    // User cancel is a decision, not an interruption: no checkpoint
    // survives, no results are published.
    EXPECT_FALSE(fs::exists(fs::path(config_.dataDir) / "checkpoints" /
                            "victim.ckpt"));
    EXPECT_FALSE(
        fs::exists(fs::path(config_.dataDir) / "results" / "victim"));

    // Cancelling an unknown campaign is a structured error.
    Client other(config_.socketPath);
    JsonValue bad = JsonValue::object();
    bad.set("verb", JsonValue("cancel"));
    bad.set("campaign", JsonValue("ghost"));
    EXPECT_EQ(other.request(bad).find("code")->asString(),
              errc::unknownCampaign);
}

TEST_F(ServerTest, ClientDisconnectMidStreamDoesNotAbortTheCampaign)
{
    startServer();
    const std::string batch =
        batchDir({"slow"}, 9, 4, 4); // ground truth
    {
        Client client(config_.socketPath);
        ASSERT_TRUE(client.send(submitRequest(
            "orphan", {"slow"}, 9, 4, {{"delay_ms", "5"}})));
        // Read just the acceptance plus one result, then vanish.
        ASSERT_TRUE(client.read().has_value());
        ASSERT_TRUE(client.read().has_value());
    } // abortive close while the campaign is mid-flight

    awaitState("orphan", "done");
    const fs::path published =
        fs::path(config_.dataDir) / "results" / "orphan";
    EXPECT_EQ(readFile(published / "slow.jsonl"),
              readFile(fs::path(batch) / "slow.jsonl"));
    EXPECT_EQ(readFile(published / "summary.json"),
              readFile(fs::path(batch) / "summary.json"));
}

TEST_F(ServerTest, WireFaultsGetStructuredErrorsAndNeverKillTheServer)
{
    startServer();
    {
        // Malformed JSON: error reply, connection stays usable.
        Client client(config_.socketPath);
        ASSERT_TRUE(client.sendLine("this is not json\n"));
        std::optional<JsonValue> reply = client.read();
        ASSERT_TRUE(reply.has_value());
        EXPECT_EQ(reply->find("code")->asString(), errc::badJson);
        JsonValue ping = JsonValue::object();
        ping.set("verb", JsonValue("ping"));
        EXPECT_EQ(client.request(ping).find("type")->asString(),
                  "pong");
    }
    {
        // Unknown verb.
        Client client(config_.socketPath);
        ASSERT_TRUE(client.sendLine("{\"verb\":\"frobnicate\"}\n"));
        const std::optional<JsonValue> reply = client.read();
        ASSERT_TRUE(reply.has_value());
        EXPECT_EQ(reply->find("code")->asString(), errc::unknownVerb);
    }
    {
        // Unknown experiment in a submit.
        Client client(config_.socketPath);
        const JsonValue reply =
            client.request(submitRequest("x1", {"no_such"}, 1, 1));
        EXPECT_EQ(reply.find("code")->asString(),
                  errc::unknownExperiment);
    }
    {
        // Unknown override: batch-CLI parity says reject up front.
        Client client(config_.socketPath);
        const JsonValue reply = client.request(submitRequest(
            "x2", {"fast"}, 1, 1, {{"bogus_knob", "3"}}));
        EXPECT_EQ(reply.find("code")->asString(), errc::badRequest);
    }
    {
        // Oversized line: error reply, then the connection closes
        // (framing cannot resynchronize).
        Client client(config_.socketPath);
        std::string huge(maxLineBytes + 100, 'a');
        huge += "\n";
        ASSERT_TRUE(client.sendLine(huge));
        const std::optional<JsonValue> reply = client.read();
        ASSERT_TRUE(reply.has_value());
        EXPECT_EQ(reply->find("code")->asString(),
                  errc::oversizedLine);
        EXPECT_FALSE(client.read().has_value());
    }
    {
        // Half-closed mid-line: best-effort error, then close.
        Client client(config_.socketPath);
        ASSERT_TRUE(client.sendLine("{\"verb\":\"pi")); // no newline
        client.halfClose();
        const std::optional<JsonValue> reply = client.read();
        ASSERT_TRUE(reply.has_value());
        EXPECT_EQ(reply->find("code")->asString(), errc::badRequest);
        EXPECT_FALSE(client.read().has_value());
    }
    // After all that abuse the server still serves.
    Client survivor(config_.socketPath);
    JsonValue ping = JsonValue::object();
    ping.set("verb", JsonValue("ping"));
    EXPECT_EQ(survivor.request(ping).find("type")->asString(), "pong");
}

TEST_F(ServerTest, ConnectionsAreReapedNotLeaked)
{
    startServer();
    for (int i = 0; i < 8; ++i) {
        Client client(config_.socketPath);
        JsonValue ping = JsonValue::object();
        ping.set("verb", JsonValue("ping"));
        EXPECT_EQ(client.request(ping).find("type")->asString(),
                  "pong");
    } // each destructor closes its socket
    for (int i = 0; i < 2000 && server_->activeConnections() != 0; ++i)
        std::this_thread::sleep_for(std::chrono::milliseconds(1));
    EXPECT_EQ(server_->activeConnections(), 0u);
}

TEST_F(ServerTest, ListMatchesRegistryToJsonAndShowsCampaigns)
{
    startServer();
    Client client(config_.socketPath);
    const StreamedCampaign streamed =
        streamSubmit(client, submitRequest("seen", {"fast"}, 1, 1));
    ASSERT_TRUE(streamed.done);

    JsonValue list = JsonValue::object();
    list.set("verb", JsonValue("list"));
    const JsonValue reply = client.request(list);
    ASSERT_EQ(reply.find("type")->asString(), "list");
    // The registry document is the same one `harp_run --list-json`
    // prints — shared implementation, cross-checked here.
    EXPECT_EQ(reply.find("registry")->dump(2),
              runner::registryToJson(registry_).dump(2));
    const JsonValue *campaigns = reply.find("campaigns");
    ASSERT_NE(campaigns, nullptr);
    ASSERT_EQ(campaigns->size(), 1u);
    EXPECT_EQ(campaigns->at(0).find("id")->asString(), "seen");
    EXPECT_EQ(campaigns->at(0).find("state")->asString(), "done");
}

TEST_F(ServerTest, GracefulShutdownCheckpointsAndResumes)
{
    startServer();
    const std::string batch =
        batchDir({"slow"}, 3, 8, 4); // 64 jobs of ~10ms

    Client client(config_.socketPath);
    ASSERT_TRUE(client.send(submitRequest("night", {"slow"}, 3, 8,
                                          {{"delay_ms", "10"}})));
    ASSERT_TRUE(client.read().has_value()); // accepted
    ASSERT_TRUE(client.read().has_value()); // first result arrived

    // Stop mid-campaign: a drain, not an abort.
    stopServer();
    const fs::path ckpt =
        fs::path(config_.dataDir) / "checkpoints" / "night.ckpt";
    EXPECT_TRUE(fs::exists(ckpt));
    EXPECT_FALSE(
        fs::exists(fs::path(config_.dataDir) / "results" / "night"));

    // A new daemon on the same data dir resumes it, detached.
    config_.socketPath += ".2";
    startServer();
    EXPECT_EQ(server_->resumedCampaigns(), 1u);
    awaitState("night", "done");
    EXPECT_FALSE(fs::exists(ckpt));
    const fs::path published =
        fs::path(config_.dataDir) / "results" / "night";
    EXPECT_EQ(readFile(published / "slow.jsonl"),
              readFile(fs::path(batch) / "slow.jsonl"));
    EXPECT_EQ(readFile(published / "summary.json"),
              readFile(fs::path(batch) / "summary.json"));
}

TEST_F(ServerTest, SubmitDuringShutdownIsRefused)
{
    startServer();
    // Open the connection first so the request is in flight while the
    // server drains.
    Client client(config_.socketPath);
    server_->requestStop();
    // The reply is either a structured shutting_down error or a closed
    // socket, depending on how far the drain got — both are clean.
    if (client.send(submitRequest("late", {"fast"}, 1, 1))) {
        try {
            const std::optional<JsonValue> reply = client.read();
            if (reply.has_value() &&
                reply->find("type")->asString() == "error")
                EXPECT_EQ(reply->find("code")->asString(),
                          errc::shuttingDown);
        } catch (const std::exception &) {
            // Torn read mid-shutdown: acceptable.
        }
    }
    stopServer();
    EXPECT_FALSE(fs::exists(fs::path(config_.dataDir) / "results" /
                            "late"));
}

} // namespace
} // namespace harp::harpd
