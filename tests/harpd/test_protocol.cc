/**
 * @file
 * Fault-injection unit tests for the harpd wire protocol parser: every
 * malformed input class must map to a structured error reply with a
 * stable code — never an exception escaping parseRequest, never a
 * crash. parseRequest is pure, so these tests need no sockets.
 */

#include <gtest/gtest.h>

#include <string>

#include "harpd/protocol.hh"

namespace harp::harpd {
namespace {

using runner::JsonType;
using runner::JsonValue;

std::string
errorCode(const JsonValue &error)
{
    const JsonValue *type = error.find("type");
    const JsonValue *code = error.find("code");
    EXPECT_NE(type, nullptr);
    EXPECT_NE(code, nullptr);
    if (type == nullptr || code == nullptr)
        return "";
    EXPECT_EQ(type->asString(), "error");
    return code->asString();
}

/** Expect @p line to fail parsing with @p code. */
void
expectError(const std::string &line, const std::string &code)
{
    JsonValue error;
    const std::optional<Request> request = parseRequest(line, error);
    EXPECT_FALSE(request.has_value()) << line;
    EXPECT_EQ(errorCode(error), code) << line;
    // Error replies must themselves survive the wire.
    const std::string wire = wireLine(error);
    EXPECT_EQ(wire.back(), '\n');
    EXPECT_NO_THROW(JsonValue::parse(wire));
}

TEST(Protocol, MalformedJsonIsBadJson)
{
    expectError("", errc::badJson);
    expectError("{", errc::badJson);
    expectError("not json at all", errc::badJson);
    expectError("{\"verb\":\"ping\"", errc::badJson);
    expectError("\x00\xff\xfe", errc::badJson);
    expectError("{\"verb\": \"ping\"} trailing", errc::badJson);
}

TEST(Protocol, NonObjectOrMissingVerbIsBadRequest)
{
    expectError("[1,2,3]", errc::badRequest);
    expectError("42", errc::badRequest);
    expectError("\"ping\"", errc::badRequest);
    expectError("{}", errc::badRequest);
    expectError("{\"verb\":7}", errc::badRequest);
}

TEST(Protocol, UnknownVerbHasItsOwnCode)
{
    expectError("{\"verb\":\"reboot\"}", errc::unknownVerb);
    expectError("{\"verb\":\"PING\"}", errc::unknownVerb);
    expectError("{\"verb\":\"\"}", errc::unknownVerb);
}

TEST(Protocol, CampaignIdValidation)
{
    EXPECT_TRUE(validCampaignId("c1"));
    EXPECT_TRUE(validCampaignId("run-2026.08_final"));
    EXPECT_TRUE(validCampaignId(std::string(64, 'a')));
    // Ids become file names: no separators, traversal, or hidden files.
    EXPECT_FALSE(validCampaignId(""));
    EXPECT_FALSE(validCampaignId(std::string(65, 'a')));
    EXPECT_FALSE(validCampaignId(".hidden"));
    EXPECT_FALSE(validCampaignId("a/b"));
    EXPECT_FALSE(validCampaignId("a b"));
    EXPECT_FALSE(validCampaignId("a\nb"));
    EXPECT_FALSE(validCampaignId("..")); // leading dot covers this

    expectError("{\"verb\":\"status\"}", errc::badRequest);
    expectError("{\"verb\":\"status\",\"campaign\":\"../etc\"}",
                errc::badRequest);
    expectError("{\"verb\":\"cancel\",\"campaign\":\".x\"}",
                errc::badRequest);
}

TEST(Protocol, SubmitFieldValidation)
{
    // experiments: required, non-empty, strings only.
    expectError("{\"verb\":\"submit\",\"campaign\":\"c\"}",
                errc::badRequest);
    expectError(
        "{\"verb\":\"submit\",\"campaign\":\"c\",\"experiments\":[]}",
        errc::badRequest);
    expectError("{\"verb\":\"submit\",\"campaign\":\"c\","
                "\"experiments\":[1]}",
                errc::badRequest);
    // seed: int >= 0 or decimal string.
    expectError("{\"verb\":\"submit\",\"campaign\":\"c\","
                "\"experiments\":[\"e\"],\"seed\":-1}",
                errc::badRequest);
    expectError("{\"verb\":\"submit\",\"campaign\":\"c\","
                "\"experiments\":[\"e\"],\"seed\":\"0x10\"}",
                errc::badRequest);
    expectError("{\"verb\":\"submit\",\"campaign\":\"c\","
                "\"experiments\":[\"e\"],\"seed\":1.5}",
                errc::badRequest);
    // repeat: integer in [1, 1000000].
    expectError("{\"verb\":\"submit\",\"campaign\":\"c\","
                "\"experiments\":[\"e\"],\"repeat\":0}",
                errc::badRequest);
    expectError("{\"verb\":\"submit\",\"campaign\":\"c\","
                "\"experiments\":[\"e\"],\"repeat\":1000001}",
                errc::badRequest);
    // overrides: object of scalars.
    expectError("{\"verb\":\"submit\",\"campaign\":\"c\","
                "\"experiments\":[\"e\"],\"overrides\":[]}",
                errc::badRequest);
    expectError("{\"verb\":\"submit\",\"campaign\":\"c\","
                "\"experiments\":[\"e\"],\"overrides\":{\"k\":{}}}",
                errc::badRequest);
}

TEST(Protocol, ValidSubmitParsesEveryField)
{
    JsonValue error;
    const std::optional<Request> request = parseRequest(
        "{\"verb\":\"submit\",\"campaign\":\"night-1\","
        "\"experiments\":[\"quickstart\",\"label:example\"],"
        "\"seed\":\"18446744073709551615\",\"repeat\":3,"
        "\"overrides\":{\"rounds\":16,\"prob\":0.25,\"fast\":true,"
        "\"tag\":\"x\"}}",
        error);
    ASSERT_TRUE(request.has_value());
    EXPECT_EQ(request->verb, Verb::Submit);
    EXPECT_EQ(request->campaign, "night-1");
    ASSERT_EQ(request->experiments.size(), 2u);
    EXPECT_EQ(request->experiments[1], "label:example");
    EXPECT_EQ(request->seed, 18446744073709551615ull);
    EXPECT_EQ(request->repeat, 3u);
    // Scalar overrides stringify exactly as the CLI would pass them.
    EXPECT_EQ(request->overrides.at("rounds"), "16");
    EXPECT_EQ(request->overrides.at("prob"), "0.25");
    EXPECT_EQ(request->overrides.at("fast"), "true");
    EXPECT_EQ(request->overrides.at("tag"), "x");
}

TEST(Protocol, SimpleVerbsParse)
{
    for (const auto &[text, verb] :
         {std::pair<const char *, Verb>{"ping", Verb::Ping},
          {"list", Verb::List},
          {"shutdown", Verb::Shutdown}}) {
        JsonValue error;
        const std::optional<Request> request = parseRequest(
            "{\"verb\":\"" + std::string(text) + "\"}", error);
        ASSERT_TRUE(request.has_value()) << text;
        EXPECT_EQ(request->verb, verb);
    }
    JsonValue error;
    const std::optional<Request> status = parseRequest(
        "{\"verb\":\"status\",\"campaign\":\"c9\"}", error);
    ASSERT_TRUE(status.has_value());
    EXPECT_EQ(status->verb, Verb::Status);
    EXPECT_EQ(status->campaign, "c9");
}

TEST(Protocol, SubscribeParsesCampaignAndCursor)
{
    JsonValue error;
    const std::optional<Request> bare = parseRequest(
        "{\"verb\":\"subscribe\",\"campaign\":\"c1\"}", error);
    ASSERT_TRUE(bare.has_value());
    EXPECT_EQ(bare->verb, Verb::Subscribe);
    EXPECT_EQ(bare->campaign, "c1");
    EXPECT_EQ(bare->from, 0u); // default: replay from the start

    const std::optional<Request> cursor = parseRequest(
        "{\"verb\":\"subscribe\",\"campaign\":\"c1\",\"from\":17}",
        error);
    ASSERT_TRUE(cursor.has_value());
    EXPECT_EQ(cursor->from, 17u);

    // The cursor is a sequence number, nothing else.
    expectError("{\"verb\":\"subscribe\",\"campaign\":\"c\","
                "\"from\":-1}",
                errc::badRequest);
    expectError("{\"verb\":\"subscribe\",\"campaign\":\"c\","
                "\"from\":\"3\"}",
                errc::badRequest);
    expectError("{\"verb\":\"subscribe\"}", errc::badRequest);
}

TEST(Protocol, ResumeParsesLikeTheOtherCampaignVerbs)
{
    JsonValue error;
    const std::optional<Request> request = parseRequest(
        "{\"verb\":\"resume\",\"campaign\":\"night-1\"}", error);
    ASSERT_TRUE(request.has_value());
    EXPECT_EQ(request->verb, Verb::Resume);
    EXPECT_EQ(request->campaign, "night-1");

    expectError("{\"verb\":\"resume\"}", errc::badRequest);
    expectError("{\"verb\":\"resume\",\"campaign\":\"../x\"}",
                errc::badRequest);
}

TEST(Protocol, TenantValidatesLikeACampaignId)
{
    JsonValue error;
    const std::optional<Request> request = parseRequest(
        "{\"verb\":\"submit\",\"campaign\":\"c\","
        "\"experiments\":[\"e\"],\"tenant\":\"team-a\"}",
        error);
    ASSERT_TRUE(request.has_value());
    EXPECT_EQ(request->tenant, "team-a");

    const std::optional<Request> defaulted = parseRequest(
        "{\"verb\":\"submit\",\"campaign\":\"c\","
        "\"experiments\":[\"e\"]}",
        error);
    ASSERT_TRUE(defaulted.has_value());
    EXPECT_EQ(defaulted->tenant, "default");

    // Tenants key admission accounting and appear in status lines:
    // same character discipline as campaign ids.
    expectError("{\"verb\":\"submit\",\"campaign\":\"c\","
                "\"experiments\":[\"e\"],\"tenant\":\"a/b\"}",
                errc::badRequest);
    expectError("{\"verb\":\"submit\",\"campaign\":\"c\","
                "\"experiments\":[\"e\"],\"tenant\":7}",
                errc::badRequest);
    expectError("{\"verb\":\"submit\",\"campaign\":\"c\","
                "\"experiments\":[\"e\"],\"tenant\":\"\"}",
                errc::badRequest);
}

TEST(Protocol, PriorityParsesAndRejectsUnknownClasses)
{
    JsonValue error;
    const std::optional<Request> defaulted = parseRequest(
        "{\"verb\":\"submit\",\"campaign\":\"c\","
        "\"experiments\":[\"e\"]}",
        error);
    ASSERT_TRUE(defaulted.has_value());
    EXPECT_EQ(defaulted->priority, common::PriorityClass::Normal);

    for (const auto &[name, cls] :
         {std::pair<const char *, common::PriorityClass>{
              "interactive", common::PriorityClass::Interactive},
          {"normal", common::PriorityClass::Normal},
          {"background", common::PriorityClass::Background}}) {
        const std::optional<Request> request = parseRequest(
            "{\"verb\":\"submit\",\"campaign\":\"c\","
            "\"experiments\":[\"e\"],\"priority\":\"" +
                std::string(name) + "\"}",
            error);
        ASSERT_TRUE(request.has_value()) << name;
        EXPECT_EQ(request->priority, cls) << name;
    }

    expectError("{\"verb\":\"submit\",\"campaign\":\"c\","
                "\"experiments\":[\"e\"],\"priority\":\"urgent\"}",
                errc::badRequest);
    expectError("{\"verb\":\"submit\",\"campaign\":\"c\","
                "\"experiments\":[\"e\"],\"priority\":3}",
                errc::badRequest);
}

TEST(Protocol, DeadlineMsParsesOnSubmitAndResume)
{
    JsonValue error;
    const std::optional<Request> submit = parseRequest(
        "{\"verb\":\"submit\",\"campaign\":\"c\","
        "\"experiments\":[\"e\"],\"deadline_ms\":30000}",
        error);
    ASSERT_TRUE(submit.has_value());
    EXPECT_EQ(submit->deadlineMs, 30000u);

    // Resume may arm a *fresh* deadline (the old one died with the
    // original caller).
    const std::optional<Request> resume = parseRequest(
        "{\"verb\":\"resume\",\"campaign\":\"c\",\"deadline_ms\":500}",
        error);
    ASSERT_TRUE(resume.has_value());
    EXPECT_EQ(resume->deadlineMs, 500u);

    const std::optional<Request> none = parseRequest(
        "{\"verb\":\"submit\",\"campaign\":\"c\","
        "\"experiments\":[\"e\"]}",
        error);
    ASSERT_TRUE(none.has_value());
    EXPECT_EQ(none->deadlineMs, 0u) << "absent means no deadline";

    // Bounds: a positive integer within [1, 1e9] ms.
    expectError("{\"verb\":\"submit\",\"campaign\":\"c\","
                "\"experiments\":[\"e\"],\"deadline_ms\":0}",
                errc::badRequest);
    expectError("{\"verb\":\"submit\",\"campaign\":\"c\","
                "\"experiments\":[\"e\"],\"deadline_ms\":-100}",
                errc::badRequest);
    expectError("{\"verb\":\"submit\",\"campaign\":\"c\","
                "\"experiments\":[\"e\"],\"deadline_ms\":1000000001}",
                errc::badRequest);
    expectError("{\"verb\":\"submit\",\"campaign\":\"c\","
                "\"experiments\":[\"e\"],\"deadline_ms\":\"1s\"}",
                errc::badRequest);
}

TEST(Protocol, OversizedLineBoundaryIsEnforcedByReader)
{
    // The reader, not the parser, enforces maxLineBytes — but the
    // constant must leave generous room for real submissions.
    EXPECT_GE(maxLineBytes, 64u * 1024u);
    const std::string big(maxLineBytes * 2, 'x');
    JsonValue error;
    // Even when an oversized line does reach the parser, it fails
    // structurally rather than crashing.
    EXPECT_FALSE(parseRequest(big, error).has_value());
}

TEST(Protocol, ErrorReplyShape)
{
    const JsonValue reply = errorReply(errc::shuttingDown, "bye");
    EXPECT_EQ(reply.find("type")->asString(), "error");
    EXPECT_EQ(reply.find("code")->asString(), "shutting_down");
    EXPECT_EQ(reply.find("message")->asString(), "bye");
}

} // namespace
} // namespace harp::harpd
