/**
 * @file
 * Unit tests for low-level bit helpers.
 */

#include <gtest/gtest.h>

#include "common/bits.hh"

namespace harp::common {
namespace {

TEST(Bits, WordIndexAndOffset)
{
    EXPECT_EQ(wordIndex(0), 0u);
    EXPECT_EQ(wordIndex(63), 0u);
    EXPECT_EQ(wordIndex(64), 1u);
    EXPECT_EQ(wordIndex(128), 2u);
    EXPECT_EQ(bitOffset(0), 0u);
    EXPECT_EQ(bitOffset(63), 63u);
    EXPECT_EQ(bitOffset(64), 0u);
    EXPECT_EQ(bitOffset(65), 1u);
}

TEST(Bits, WordsFor)
{
    EXPECT_EQ(wordsFor(0), 0u);
    EXPECT_EQ(wordsFor(1), 1u);
    EXPECT_EQ(wordsFor(64), 1u);
    EXPECT_EQ(wordsFor(65), 2u);
    EXPECT_EQ(wordsFor(128), 2u);
    EXPECT_EQ(wordsFor(129), 3u);
}

TEST(Bits, TailMask)
{
    EXPECT_EQ(tailMask(64), ~std::uint64_t{0});
    EXPECT_EQ(tailMask(128), ~std::uint64_t{0});
    EXPECT_EQ(tailMask(1), 1u);
    EXPECT_EQ(tailMask(7), 0x7Fu);
    EXPECT_EQ(tailMask(71), 0x7Fu);
}

TEST(Bits, Parity64)
{
    EXPECT_EQ(parity64(0), 0);
    EXPECT_EQ(parity64(1), 1);
    EXPECT_EQ(parity64(3), 0);
    EXPECT_EQ(parity64(7), 1);
    EXPECT_EQ(parity64(~std::uint64_t{0}), 0);
}

TEST(Bits, AtMostOneBit)
{
    EXPECT_TRUE(atMostOneBit(0));
    EXPECT_TRUE(atMostOneBit(1));
    EXPECT_TRUE(atMostOneBit(2));
    EXPECT_TRUE(atMostOneBit(std::uint64_t{1} << 63));
    EXPECT_FALSE(atMostOneBit(3));
    EXPECT_FALSE(atMostOneBit(0x11));
}

} // namespace
} // namespace harp::common
