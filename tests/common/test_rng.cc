/**
 * @file
 * Unit tests for the deterministic RNG and stream derivation.
 */

#include <gtest/gtest.h>

#include <set>
#include <vector>

#include "common/rng.hh"

namespace harp::common {
namespace {

TEST(Rng, SameSeedSameSequence)
{
    Xoshiro256 a(42), b(42);
    for (int i = 0; i < 100; ++i)
        EXPECT_EQ(a(), b());
}

TEST(Rng, DifferentSeedsDiverge)
{
    Xoshiro256 a(1), b(2);
    int same = 0;
    for (int i = 0; i < 64; ++i)
        same += (a() == b()) ? 1 : 0;
    EXPECT_LT(same, 2);
}

TEST(Rng, NextBelowIsInRange)
{
    Xoshiro256 rng(7);
    for (std::uint64_t bound : {1ull, 2ull, 3ull, 17ull, 1000ull}) {
        for (int i = 0; i < 200; ++i)
            EXPECT_LT(rng.nextBelow(bound), bound);
    }
}

TEST(Rng, NextBelowCoversAllResidues)
{
    Xoshiro256 rng(11);
    std::set<std::uint64_t> seen;
    for (int i = 0; i < 500; ++i)
        seen.insert(rng.nextBelow(7));
    EXPECT_EQ(seen.size(), 7u);
}

TEST(Rng, NextDoubleInUnitInterval)
{
    Xoshiro256 rng(3);
    double sum = 0.0;
    for (int i = 0; i < 10000; ++i) {
        const double x = rng.nextDouble();
        ASSERT_GE(x, 0.0);
        ASSERT_LT(x, 1.0);
        sum += x;
    }
    // Mean of U[0,1) over 10k samples: ~0.5 with stddev ~0.003.
    EXPECT_NEAR(sum / 10000.0, 0.5, 0.02);
}

TEST(Rng, BernoulliEdgeCases)
{
    Xoshiro256 rng(5);
    for (int i = 0; i < 100; ++i) {
        EXPECT_FALSE(rng.nextBernoulli(0.0));
        EXPECT_TRUE(rng.nextBernoulli(1.0));
    }
    // Out-of-range probabilities are clamped.
    EXPECT_FALSE(rng.nextBernoulli(-0.5));
    EXPECT_TRUE(rng.nextBernoulli(1.5));
}

TEST(Rng, BernoulliFrequency)
{
    Xoshiro256 rng(17);
    int hits = 0;
    const int trials = 20000;
    for (int i = 0; i < trials; ++i)
        hits += rng.nextBernoulli(0.25) ? 1 : 0;
    // 4-sigma band around 0.25 for 20k trials (sigma ~ 0.0031).
    EXPECT_NEAR(static_cast<double>(hits) / trials, 0.25, 0.013);
}

TEST(Rng, SplitMixDeterministic)
{
    std::uint64_t s1 = 99, s2 = 99;
    EXPECT_EQ(splitMix64(s1), splitMix64(s2));
    EXPECT_EQ(s1, s2);
}

TEST(Rng, DeriveSeedOrderSensitive)
{
    const std::uint64_t parent = 1234;
    EXPECT_NE(deriveSeed(parent, {1, 2}), deriveSeed(parent, {2, 1}));
    EXPECT_NE(deriveSeed(parent, {1}), deriveSeed(parent, {1, 0}));
    EXPECT_EQ(deriveSeed(parent, {3, 4}), deriveSeed(parent, {3, 4}));
}

TEST(Rng, DeriveSeedParentSensitive)
{
    EXPECT_NE(deriveSeed(1, {7}), deriveSeed(2, {7}));
}

TEST(Rng, DerivedStreamsLookIndependent)
{
    // Streams from adjacent keys should not be trivially correlated.
    Xoshiro256 a(deriveSeed(10, {0}));
    Xoshiro256 b(deriveSeed(10, {1}));
    int same = 0;
    for (int i = 0; i < 64; ++i)
        same += (a() == b()) ? 1 : 0;
    EXPECT_EQ(same, 0);
}

} // namespace
} // namespace harp::common
