/**
 * @file
 * Unit tests for the bounded MPMC queue behind harpd's per-client
 * event streams: FIFO order, capacity blocking, close semantics (drain
 * remaining items, then fail fast), and multi-producer/multi-consumer
 * integrity.
 */

#include <gtest/gtest.h>

#include <atomic>
#include <chrono>
#include <thread>
#include <vector>

#include "common/bounded_queue.hh"

namespace harp::common {
namespace {

TEST(BoundedQueue, FifoWithinCapacity)
{
    BoundedQueue<int> queue(4);
    EXPECT_EQ(queue.capacity(), 4u);
    for (int i = 0; i < 4; ++i)
        EXPECT_TRUE(queue.push(i));
    EXPECT_EQ(queue.size(), 4u);
    for (int i = 0; i < 4; ++i) {
        const std::optional<int> got = queue.pop();
        ASSERT_TRUE(got.has_value());
        EXPECT_EQ(*got, i);
    }
    EXPECT_EQ(queue.size(), 0u);
}

TEST(BoundedQueue, TryPushFailsOnlyWhenFull)
{
    BoundedQueue<int> queue(2);
    EXPECT_TRUE(queue.tryPush(1));
    EXPECT_TRUE(queue.tryPush(2));
    EXPECT_FALSE(queue.tryPush(3));
    EXPECT_EQ(queue.pop(), 1);
    EXPECT_TRUE(queue.tryPush(3));
}

TEST(BoundedQueue, PushBlocksUntilConsumerMakesRoom)
{
    BoundedQueue<int> queue(1);
    ASSERT_TRUE(queue.push(0));
    std::atomic<bool> second_pushed{false};
    std::thread producer([&] {
        EXPECT_TRUE(queue.push(1)); // blocks until the pop below
        second_pushed.store(true);
    });
    std::this_thread::sleep_for(std::chrono::milliseconds(20));
    EXPECT_FALSE(second_pushed.load());
    EXPECT_EQ(queue.pop(), 0);
    producer.join();
    EXPECT_TRUE(second_pushed.load());
    EXPECT_EQ(queue.pop(), 1);
}

TEST(BoundedQueue, CloseDrainsRemainingThenSignalsEnd)
{
    BoundedQueue<int> queue(4);
    EXPECT_TRUE(queue.push(1));
    EXPECT_TRUE(queue.push(2));
    queue.close();
    EXPECT_TRUE(queue.closed());
    // Items enqueued before close still come out...
    EXPECT_EQ(queue.pop(), 1);
    EXPECT_EQ(queue.pop(), 2);
    // ...then the end-of-stream marker, repeatably.
    EXPECT_EQ(queue.pop(), std::nullopt);
    EXPECT_EQ(queue.pop(), std::nullopt);
    // Producers fail fast after close (the disconnected-client path).
    EXPECT_FALSE(queue.push(3));
    EXPECT_FALSE(queue.tryPush(3));
}

TEST(BoundedQueue, CloseUnblocksWaitingProducerAndConsumer)
{
    BoundedQueue<int> full(1);
    ASSERT_TRUE(full.push(0));
    std::thread producer([&] { EXPECT_FALSE(full.push(1)); });
    BoundedQueue<int> empty(1);
    std::thread consumer([&] { EXPECT_EQ(empty.pop(), std::nullopt); });
    std::this_thread::sleep_for(std::chrono::milliseconds(10));
    full.close();
    empty.close();
    producer.join();
    consumer.join();
}

TEST(BoundedQueue, ManyProducersManyConsumersLoseNothing)
{
    constexpr int kProducers = 4;
    constexpr int kConsumers = 3;
    constexpr int kPerProducer = 500;
    BoundedQueue<int> queue(8);
    std::atomic<long> sum{0};
    std::atomic<int> popped{0};

    std::vector<std::thread> consumers;
    for (int c = 0; c < kConsumers; ++c)
        consumers.emplace_back([&] {
            for (;;) {
                const std::optional<int> got = queue.pop();
                if (!got.has_value())
                    return;
                sum.fetch_add(*got);
                popped.fetch_add(1);
            }
        });
    std::vector<std::thread> producers;
    for (int p = 0; p < kProducers; ++p)
        producers.emplace_back([&, p] {
            for (int i = 0; i < kPerProducer; ++i)
                EXPECT_TRUE(queue.push(p * kPerProducer + i));
        });
    for (std::thread &t : producers)
        t.join();
    queue.close();
    for (std::thread &t : consumers)
        t.join();

    const long n = kProducers * kPerProducer;
    EXPECT_EQ(popped.load(), n);
    EXPECT_EQ(sum.load(), n * (n - 1) / 2);
}

} // namespace
} // namespace harp::common
