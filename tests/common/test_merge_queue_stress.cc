/**
 * @file
 * Stress tier for the two concurrency primitives under harpd's result
 * path: OrderedMerger (out-of-order completions must drain in strict
 * index order) feeding a BoundedQueue (a deliberately slow consumer
 * must throttle many pool producers, never deadlock, never reorder).
 * Run under TSan/ASan by the --full verify sweep.
 */

#include <gtest/gtest.h>

#include <atomic>
#include <chrono>
#include <optional>
#include <string>
#include <thread>
#include <vector>

#include "common/bounded_queue.hh"
#include "common/ordered_merger.hh"
#include "common/rng.hh"
#include "common/thread_pool.hh"

namespace harp::common {
namespace {

TEST(MergeQueueStress, OutOfOrderDepositsDrainInIndexOrder)
{
    constexpr std::size_t kTasks = 20000;
    OrderedMerger<std::size_t> merger(kTasks);
    std::vector<std::size_t> merged;
    merged.reserve(kTasks);

    ThreadPool pool(8);
    // Submit in a scrambled order and add scheduling jitter so
    // completion order is thoroughly out of index order.
    std::vector<std::size_t> order(kTasks);
    for (std::size_t i = 0; i < kTasks; ++i)
        order[i] = i;
    Xoshiro256 rng(0xfeedULL);
    for (std::size_t i = kTasks; i > 1; --i)
        std::swap(order[i - 1], order[rng.nextBelow(i)]);
    for (const std::size_t task : order)
        pool.submit([&, task] {
            if ((task & 0x3f) == 0)
                std::this_thread::yield();
            merger.deposit(task, std::size_t(task),
                           [&](const std::size_t &value) {
                               merged.push_back(value);
                           });
        });
    pool.wait();

    ASSERT_EQ(merged.size(), kTasks);
    for (std::size_t i = 0; i < kTasks; ++i)
        ASSERT_EQ(merged[i], i);
}

TEST(MergeQueueStress, SlowConsumerBackpressuresManyProducers)
{
    // The harpd shape: pool workers deposit into an OrderedMerger
    // whose merge callback pushes to a small BoundedQueue; one slow
    // consumer drains it. Everything must arrive, in order, with the
    // queue never exceeding its capacity.
    constexpr std::size_t kTasks = 4000;
    constexpr std::size_t kCapacity = 8;
    OrderedMerger<std::string> merger(kTasks);
    BoundedQueue<std::string> queue(kCapacity);
    std::atomic<std::size_t> high_water{0};

    std::thread consumer([&] {
        std::size_t expected = 0;
        for (;;) {
            const std::size_t depth = queue.size();
            std::size_t seen = high_water.load();
            while (depth > seen &&
                   !high_water.compare_exchange_weak(seen, depth)) {
            }
            const std::optional<std::string> item = queue.pop();
            if (!item.has_value())
                break;
            ASSERT_EQ(*item, "line-" + std::to_string(expected));
            if ((expected & 0xff) == 0) // the "slow" in slow consumer
                std::this_thread::sleep_for(
                    std::chrono::microseconds(200));
            ++expected;
        }
        EXPECT_EQ(expected, kTasks);
    });

    {
        ThreadPool pool(8);
        for (std::size_t task = 0; task < kTasks; ++task)
            pool.submit([&, task] {
                merger.deposit(task,
                               "line-" + std::to_string(task),
                               [&](const std::string &line) {
                                   EXPECT_TRUE(queue.push(line));
                               });
            });
        pool.wait();
    }
    queue.close();
    consumer.join();
    EXPECT_LE(high_water.load(), kCapacity);
}

TEST(MergeQueueStress, DisconnectedConsumerNeverBlocksProducers)
{
    // Close the queue early (the client-vanished path): pushes must
    // degrade to failing no-ops and every producer must still finish.
    constexpr std::size_t kTasks = 2000;
    OrderedMerger<std::size_t> merger(kTasks);
    BoundedQueue<std::string> queue(4);
    std::atomic<std::size_t> delivered{0};
    std::atomic<std::size_t> dropped{0};

    std::thread consumer([&] {
        for (int i = 0; i < 40; ++i)
            if (!queue.pop().has_value())
                return;
        queue.close(); // consumer walks away mid-stream
        while (queue.pop().has_value()) {
        }
    });

    {
        ThreadPool pool(8);
        for (std::size_t task = 0; task < kTasks; ++task)
            pool.submit([&, task] {
                merger.deposit(task, std::size_t(task),
                               [&](const std::size_t &value) {
                                   if (queue.push("v" +
                                                  std::to_string(value)))
                                       delivered.fetch_add(1);
                                   else
                                       dropped.fetch_add(1);
                               });
            });
        pool.wait(); // deadlock here = the bug this test exists for
    }
    queue.close();
    consumer.join();
    EXPECT_EQ(delivered.load() + dropped.load(), kTasks);
    EXPECT_GT(dropped.load(), 0u);
}

} // namespace
} // namespace harp::common
