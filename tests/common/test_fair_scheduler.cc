/**
 * @file
 * The weighted fair slot governor: solo tenants keep the whole pool
 * (batch-style trailing widening), contended grants are capped at the
 * weighted fair share with Background narrowed first, completed-slot
 * shares converge to the configured 3:1:1 weights, a saturating heavy
 * tenant cannot starve a light one, a freshly arriving interactive
 * tenant is served within a bounded number of grants, and abort/leave
 * unwind cleanly without leaking slots.
 */

#include <gtest/gtest.h>

#include <atomic>
#include <chrono>
#include <thread>
#include <vector>

#include "common/fair_scheduler.hh"

namespace harp::common {
namespace {

TEST(PriorityClassTest, NamesRoundTrip)
{
    for (const PriorityClass cls :
         {PriorityClass::Interactive, PriorityClass::Normal,
          PriorityClass::Background}) {
        const auto parsed = parsePriorityClass(priorityClassName(cls));
        ASSERT_TRUE(parsed.has_value());
        EXPECT_EQ(*parsed, cls);
    }
    EXPECT_FALSE(parsePriorityClass("urgent").has_value());
    EXPECT_FALSE(parsePriorityClass("").has_value());
    EXPECT_FALSE(parsePriorityClass("Normal").has_value())
        << "class names are case-sensitive wire tokens";
}

TEST(FairSchedulerTest, SoloTenantKeepsPoolAndWidensTrailingWaves)
{
    FairScheduler::Config config;
    config.slots = 8;
    FairScheduler fair(config);
    const std::uint64_t id =
        fair.enroll("only", 1, PriorityClass::Normal);

    // Full wave: whole pool, no intra-job sharding.
    FairScheduler::Grant grant = fair.acquire(id, 8);
    EXPECT_EQ(grant.width, 8u);
    EXPECT_EQ(grant.innerThreads, 1u);
    EXPECT_FALSE(grant.contended);
    EXPECT_EQ(fair.slotsInUse(), 8u);
    for (int i = 0; i < 8; ++i)
        fair.releaseOne(id);
    EXPECT_EQ(fair.slotsInUse(), 0u);

    // Trailing wave of 2 jobs on an 8-slot pool: each job may shard
    // 4 ways — exactly the batch runner's remainder widening.
    grant = fair.acquire(id, 2);
    EXPECT_EQ(grant.width, 2u);
    EXPECT_EQ(grant.innerThreads, 4u);
    EXPECT_FALSE(grant.contended);
    fair.releaseOne(id);
    fair.releaseOne(id);
    fair.leave(id);
}

TEST(FairSchedulerTest, BrownoutCapsSharesAndNarrowsBackgroundFirst)
{
    FairScheduler::Config config;
    config.slots = 8;
    FairScheduler fair(config);
    const std::uint64_t fg =
        fair.enroll("fg", 1, PriorityClass::Normal);
    const std::uint64_t bg =
        fair.enroll("bg", 1, PriorityClass::Background);

    // fg saturates the pool alone (bg enrolled but inactive: a tenant
    // only counts as active once it waits or holds slots).
    FairScheduler::Grant held = fair.acquire(fg, 8);
    ASSERT_EQ(held.width, 8u);
    EXPECT_FALSE(held.contended);
    for (int i = 0; i < 4; ++i)
        fair.releaseOne(fg);

    // Background under contention: fair share is 8*1/2 = 4, the
    // Background rung halves it and forbids intra-job sharding.
    const FairScheduler::Grant squeezed = fair.acquire(bg, 8);
    EXPECT_TRUE(squeezed.contended);
    EXPECT_EQ(squeezed.width, 2u);
    EXPECT_EQ(squeezed.innerThreads, 1u);

    // Normal under the same contention: capped at the full share, and
    // a narrow wave keeps the share as sharding allowance.
    const FairScheduler::Grant capped = fair.acquire(fg, 4);
    EXPECT_TRUE(capped.contended);
    EXPECT_EQ(capped.width, 2u); // min(want 4, free 2, share 4)
    EXPECT_EQ(capped.innerThreads, 2u); // share 4 / width 2

    fair.leave(fg);
    fair.leave(bg);
    EXPECT_EQ(fair.slotsInUse(), 0u) << "leave() force-releases";
}

/** Saturating acquire/release loop; returns slots granted to it.
 *  Spins on the start latch so every contender enters the arena
 *  together — without it a fast thread can drain the whole grant
 *  budget before the others have even been scheduled. */
std::size_t
grind(FairScheduler &fair, std::uint64_t id,
      std::atomic<std::size_t> &total, std::size_t stopAt,
      std::atomic<bool> &stop, std::atomic<int> &latch)
{
    latch.fetch_sub(1);
    while (latch.load() > 0)
        std::this_thread::yield();
    std::size_t mine = 0;
    while (!stop.load()) {
        const FairScheduler::Grant grant = fair.acquire(id, 1, &stop);
        if (grant.width == 0)
            break;
        ++mine;
        if (total.fetch_add(grant.width) + grant.width >= stopAt)
            stop.store(true);
        // "Do the job" while holding the slot. The duration matters:
        // with a zero-length hold every thread churns in the wakeup
        // pipeline and slots rotate to whichever waiter happens to win
        // the mutex — an artifact real waves (which run jobs for
        // milliseconds) never exhibit. A real hold lets the pool
        // quiesce, so releasers re-register before sleeping waiters
        // wake and the stride gate decides every grant.
        std::this_thread::sleep_for(std::chrono::microseconds(200));
        fair.releaseOne(id);
    }
    return mine;
}

TEST(FairSchedulerTest, WeightedSharesConvergeToThreeOneOne)
{
    // Two saturating campaigns (entities) per tenant on a 2-slot pool:
    // at every release several waiters spanning all three tenants are
    // registered, so the stride choice — not work-conserving handoff
    // to a lone waiter — decides every grant. That is the overloaded
    // daemon's regime, where fairness must hold.
    FairScheduler::Config config;
    config.slots = 2;
    FairScheduler fair(config);
    const char *names[3] = {"heavy", "light1", "light2"};
    const std::size_t weights[3] = {3, 1, 1};
    std::uint64_t ids[6];
    for (int i = 0; i < 6; ++i)
        ids[i] = fair.enroll(names[i / 2], weights[i / 2],
                             PriorityClass::Normal);

    constexpr std::size_t kTarget = 2000;
    std::atomic<std::size_t> total{0};
    std::atomic<bool> stop{false};
    std::atomic<int> latch{6};
    std::size_t counts[6] = {};
    std::vector<std::thread> threads;
    for (int i = 0; i < 6; ++i)
        threads.emplace_back([&, i] {
            counts[i] =
                grind(fair, ids[i], total, kTarget, stop, latch);
        });
    for (std::thread &thread : threads)
        thread.join();

    double byTenant[3] = {};
    for (int i = 0; i < 6; ++i)
        byTenant[i / 2] += static_cast<double>(counts[i]);
    const double sum = byTenant[0] + byTenant[1] + byTenant[2];
    ASSERT_GE(sum, static_cast<double>(kTarget));
    // Expected 3/5 with a +-10% absolute acceptance band (the issue's
    // fairness tolerance); stride scheduling converges much tighter,
    // the slack absorbs CI thread-scheduling noise.
    EXPECT_NEAR(byTenant[0] / sum, 0.6, 0.10)
        << byTenant[0] << " / " << byTenant[1] << " / " << byTenant[2];
    EXPECT_NEAR(byTenant[1] / sum, 0.2, 0.10);
    EXPECT_NEAR(byTenant[2] / sum, 0.2, 0.10);

    for (const std::uint64_t id : ids)
        fair.leave(id);
}

TEST(FairSchedulerTest, HeavySaturatorCannotStarveLightTenant)
{
    // Same multi-entity regime as the convergence test: three
    // campaigns per tenant keep a rival registered at every decision
    // (with only two, the bully's entities can both be mid-hold when a
    // slot frees, and work-conserving handoff serves the meek tenant
    // far above its share), so the weight-100 bully genuinely
    // outcompetes the meek tenant at the stride gate.
    FairScheduler::Config config;
    config.slots = 2;
    FairScheduler fair(config);
    std::uint64_t bully[3];
    std::uint64_t meek[3];
    for (int i = 0; i < 3; ++i) {
        bully[i] = fair.enroll("bully", 100, PriorityClass::Normal);
        meek[i] = fair.enroll("meek", 1, PriorityClass::Background);
    }

    constexpr std::size_t kTarget = 1200;
    std::atomic<std::size_t> total{0};
    std::atomic<bool> stop{false};
    std::atomic<int> latch{6};
    std::size_t bullyCount[3] = {};
    std::size_t meekCount[3] = {};
    std::vector<std::thread> threads;
    for (int i = 0; i < 3; ++i) {
        threads.emplace_back([&, i] {
            bullyCount[i] =
                grind(fair, bully[i], total, kTarget, stop, latch);
        });
        threads.emplace_back([&, i] {
            meekCount[i] =
                grind(fair, meek[i], total, kTarget, stop, latch);
        });
    }
    for (std::thread &thread : threads)
        thread.join();

    // Effective rates are weight x class boost: 100x4 vs 1x1. The meek
    // tenant's share of 1200 grants is a handful — but never zero: its
    // banked pass eventually undercuts the bully's ever-advancing one.
    // Starvation would leave it at 0.
    const std::size_t meekTotal =
        meekCount[0] + meekCount[1] + meekCount[2];
    const std::size_t bullyTotal =
        bullyCount[0] + bullyCount[1] + bullyCount[2];
    EXPECT_GT(meekTotal, 0u);
    EXPECT_GT(bullyTotal, meekTotal * 10)
        << "weights should still dominate: " << bullyTotal << " vs "
        << meekTotal;

    for (int i = 0; i < 3; ++i) {
        fair.leave(bully[i]);
        fair.leave(meek[i]);
    }
}

TEST(FairSchedulerTest, ArrivingInteractiveServedWithinBoundedGrants)
{
    FairScheduler::Config config;
    config.slots = 2;
    FairScheduler fair(config);
    const std::uint64_t sweep =
        fair.enroll("sweep", 4, PriorityClass::Background);

    // A background sweep saturates the pool and banks a long history.
    std::atomic<std::size_t> total{0};
    std::atomic<bool> stop{false};
    std::atomic<int> latch{1};
    std::thread sweeper([&] {
        grind(fair, sweep, total, /*stopAt=*/1u << 30, stop, latch);
    });
    while (fair.grantCount() < 200)
        std::this_thread::yield();

    // An interactive request arriving now must not wait out the
    // sweep's virtual-time lead: its pass is clamped to "now", so it
    // is the stride minimum as soon as a slot frees. Bound the wait in
    // grants — the scheduler's own logical clock — not wall time.
    const std::uint64_t ui =
        fair.enroll("ui", 1, PriorityClass::Interactive);
    const std::uint64_t before = fair.grantCount();
    const FairScheduler::Grant grant = fair.acquire(ui, 1);
    const std::uint64_t after = fair.grantCount();
    EXPECT_EQ(grant.width, 1u);
    // Exact bound is slots + epsilon; 16 absorbs sanitizer-slowed
    // preemption between reading the clock and joining the wait. An
    // inversion (waiting out the sweep's banked lead) would be
    // hundreds of grants.
    EXPECT_LE(after - before, 16u)
        << "priority inversion: the arrival waited behind the sweep";
    fair.releaseOne(ui);
    fair.leave(ui);

    stop.store(true);
    sweeper.join();
    fair.leave(sweep);
}

TEST(FairSchedulerTest, AbortAndZeroWantNeverGrant)
{
    FairScheduler::Config config;
    config.slots = 1;
    FairScheduler fair(config);
    const std::uint64_t holder =
        fair.enroll("holder", 1, PriorityClass::Normal);
    const std::uint64_t blocked =
        fair.enroll("blocked", 1, PriorityClass::Normal);

    EXPECT_EQ(fair.acquire(holder, 0).width, 0u) << "want 0 is a no-op";
    ASSERT_EQ(fair.acquire(holder, 1).width, 1u);

    // A waiter whose abort flag flips returns empty-handed (width 0)
    // without consuming the slot it never got.
    std::atomic<bool> abort{false};
    FairScheduler::Grant got;
    std::thread waiter(
        [&] { got = fair.acquire(blocked, 1, &abort); });
    abort.store(true);
    waiter.join();
    EXPECT_EQ(got.width, 0u);
    EXPECT_EQ(fair.slotsInUse(), 1u);

    // Pre-flipped abort short-circuits even when a slot is free.
    fair.releaseOne(holder);
    EXPECT_EQ(fair.acquire(blocked, 1, &abort).width, 0u);
    EXPECT_EQ(fair.slotsInUse(), 0u);
    fair.leave(holder);
    fair.leave(blocked);
}

} // namespace
} // namespace harp::common
