/**
 * @file
 * Unit tests for the thread pool and parallelFor.
 */

#include <gtest/gtest.h>

#include <atomic>
#include <numeric>
#include <vector>

#include "common/thread_pool.hh"

namespace harp::common {
namespace {

TEST(ThreadPool, RunsAllTasks)
{
    ThreadPool pool(4);
    std::atomic<int> counter{0};
    for (int i = 0; i < 100; ++i)
        pool.submit([&counter] { counter.fetch_add(1); });
    pool.wait();
    EXPECT_EQ(counter.load(), 100);
}

TEST(ThreadPool, WaitOnEmptyPoolReturns)
{
    ThreadPool pool(2);
    pool.wait(); // must not deadlock
    SUCCEED();
}

TEST(ThreadPool, ReusableAfterWait)
{
    ThreadPool pool(2);
    std::atomic<int> counter{0};
    pool.submit([&] { counter.fetch_add(1); });
    pool.wait();
    pool.submit([&] { counter.fetch_add(10); });
    pool.wait();
    EXPECT_EQ(counter.load(), 11);
}

TEST(ThreadPool, DefaultsToHardwareConcurrency)
{
    ThreadPool pool(0);
    EXPECT_GE(pool.numThreads(), 1u);
}

TEST(ParallelFor, CoversEveryIndexExactlyOnce)
{
    const std::size_t n = 1000;
    std::vector<std::atomic<int>> hits(n);
    parallelFor(n, [&](std::size_t i) { hits[i].fetch_add(1); }, 8);
    for (std::size_t i = 0; i < n; ++i)
        EXPECT_EQ(hits[i].load(), 1) << "index " << i;
}

TEST(ParallelFor, ZeroCountIsNoop)
{
    parallelFor(0, [](std::size_t) { FAIL(); }, 4);
    SUCCEED();
}

TEST(ParallelFor, SingleThreadMatchesSerial)
{
    std::vector<int> values(64, 0);
    parallelFor(values.size(),
                [&](std::size_t i) { values[i] = static_cast<int>(i); }, 1);
    int expected = 0;
    for (std::size_t i = 0; i < values.size(); ++i)
        expected += static_cast<int>(i);
    EXPECT_EQ(std::accumulate(values.begin(), values.end(), 0), expected);
}

TEST(ParallelFor, MoreThreadsThanWork)
{
    std::atomic<int> counter{0};
    parallelFor(3, [&](std::size_t) { counter.fetch_add(1); }, 16);
    EXPECT_EQ(counter.load(), 3);
}

} // namespace
} // namespace harp::common
