/**
 * @file
 * Unit tests for the statistics accumulators.
 */

#include <gtest/gtest.h>

#include <cmath>

#include "common/stats.hh"

namespace harp::common {
namespace {

TEST(RunningStat, Empty)
{
    RunningStat s;
    EXPECT_EQ(s.count(), 0u);
    EXPECT_DOUBLE_EQ(s.mean(), 0.0);
    EXPECT_DOUBLE_EQ(s.variance(), 0.0);
}

TEST(RunningStat, KnownMoments)
{
    RunningStat s;
    for (const double x : {2.0, 4.0, 4.0, 4.0, 5.0, 5.0, 7.0, 9.0})
        s.add(x);
    EXPECT_EQ(s.count(), 8u);
    EXPECT_DOUBLE_EQ(s.mean(), 5.0);
    // Sample variance with n-1 denominator: 32/7.
    EXPECT_NEAR(s.variance(), 32.0 / 7.0, 1e-12);
    EXPECT_DOUBLE_EQ(s.min(), 2.0);
    EXPECT_DOUBLE_EQ(s.max(), 9.0);
    EXPECT_DOUBLE_EQ(s.sum(), 40.0);
}

TEST(RunningStat, MergeMatchesSequential)
{
    RunningStat whole, part1, part2;
    for (int i = 0; i < 50; ++i) {
        const double x = std::sin(i) * 10.0;
        whole.add(x);
        (i < 20 ? part1 : part2).add(x);
    }
    part1.merge(part2);
    EXPECT_EQ(part1.count(), whole.count());
    EXPECT_NEAR(part1.mean(), whole.mean(), 1e-12);
    EXPECT_NEAR(part1.variance(), whole.variance(), 1e-10);
    EXPECT_DOUBLE_EQ(part1.min(), whole.min());
    EXPECT_DOUBLE_EQ(part1.max(), whole.max());
}

TEST(RunningStat, MergeWithEmpty)
{
    RunningStat a, b;
    a.add(1.0);
    a.add(3.0);
    a.merge(b);
    EXPECT_EQ(a.count(), 2u);
    EXPECT_DOUBLE_EQ(a.mean(), 2.0);
    b.merge(a);
    EXPECT_EQ(b.count(), 2u);
    EXPECT_DOUBLE_EQ(b.mean(), 2.0);
}

TEST(Percentile, ExactQuantiles)
{
    PercentileTracker t;
    for (int i = 1; i <= 100; ++i)
        t.add(static_cast<double>(i));
    EXPECT_EQ(t.count(), 100u);
    EXPECT_DOUBLE_EQ(t.quantile(0.0), 1.0);
    EXPECT_DOUBLE_EQ(t.quantile(1.0), 100.0);
    EXPECT_NEAR(t.median(), 50.5, 1e-12);
    EXPECT_NEAR(t.quantile(0.99), 99.01, 1e-9);
    EXPECT_NEAR(t.mean(), 50.5, 1e-12);
}

TEST(Percentile, SingleSample)
{
    PercentileTracker t;
    t.add(42.0);
    EXPECT_DOUBLE_EQ(t.quantile(0.0), 42.0);
    EXPECT_DOUBLE_EQ(t.quantile(0.5), 42.0);
    EXPECT_DOUBLE_EQ(t.quantile(1.0), 42.0);
}

TEST(Percentile, UnsortedInsertions)
{
    PercentileTracker t;
    for (const double x : {5.0, 1.0, 4.0, 2.0, 3.0})
        t.add(x);
    EXPECT_DOUBLE_EQ(t.median(), 3.0);
    // Interleave a query with more insertions: must re-sort.
    t.add(0.0);
    EXPECT_DOUBLE_EQ(t.quantile(0.0), 0.0);
}

TEST(Percentile, Merge)
{
    PercentileTracker a, b;
    a.add(1.0);
    a.add(2.0);
    b.add(3.0);
    b.add(4.0);
    a.merge(b);
    EXPECT_EQ(a.count(), 4u);
    EXPECT_DOUBLE_EQ(a.quantile(1.0), 4.0);
}

TEST(Percentile, EmptyReturnsZero)
{
    PercentileTracker t;
    EXPECT_DOUBLE_EQ(t.quantile(0.5), 0.0);
    EXPECT_DOUBLE_EQ(t.mean(), 0.0);
}

TEST(Histogram, AddAndClamp)
{
    Histogram h(4);
    h.add(0);
    h.add(1);
    h.add(3);
    h.add(7);   // clamps to last bin
    h.add(-2);  // clamps to first bin
    EXPECT_EQ(h.bin(0), 2u);
    EXPECT_EQ(h.bin(1), 1u);
    EXPECT_EQ(h.bin(2), 0u);
    EXPECT_EQ(h.bin(3), 2u);
    EXPECT_EQ(h.total(), 5u);
}

TEST(Histogram, Fractions)
{
    Histogram h(2);
    h.add(0, 3);
    h.add(1, 1);
    EXPECT_DOUBLE_EQ(h.fraction(0), 0.75);
    EXPECT_DOUBLE_EQ(h.fraction(1), 0.25);
}

TEST(Histogram, QuantileBin)
{
    Histogram h(5);
    h.add(0, 50);
    h.add(1, 30);
    h.add(2, 19);
    h.add(4, 1);
    EXPECT_EQ(h.quantileBin(0.5), 0u);
    EXPECT_EQ(h.quantileBin(0.8), 1u);
    EXPECT_EQ(h.quantileBin(0.99), 2u);
    EXPECT_EQ(h.quantileBin(1.0), 4u);
}

TEST(Histogram, MergeAndEmpty)
{
    Histogram a(3), b(3);
    a.add(0);
    b.add(2, 5);
    a.merge(b);
    EXPECT_EQ(a.bin(2), 5u);
    EXPECT_EQ(a.total(), 6u);

    Histogram empty(3);
    EXPECT_DOUBLE_EQ(empty.fraction(0), 0.0);
    EXPECT_EQ(empty.quantileBin(0.5), 2u);
}

} // namespace
} // namespace harp::common
