/**
 * @file
 * Unit tests for command-line parsing and table rendering.
 */

#include <gtest/gtest.h>

#include <sstream>

#include "common/cli.hh"
#include "common/table.hh"

namespace harp::common {
namespace {

CommandLine
parse(std::initializer_list<const char *> args)
{
    std::vector<const char *> argv = {"prog"};
    argv.insert(argv.end(), args.begin(), args.end());
    return CommandLine(static_cast<int>(argv.size()), argv.data());
}

TEST(Cli, EqualsForm)
{
    const CommandLine cl = parse({"--rounds=128", "--prob=0.5"});
    EXPECT_EQ(cl.getInt("rounds", 0), 128);
    EXPECT_DOUBLE_EQ(cl.getDouble("prob", 0.0), 0.5);
}

TEST(Cli, SpaceForm)
{
    const CommandLine cl = parse({"--rounds", "64", "--name", "fig6"});
    EXPECT_EQ(cl.getInt("rounds", 0), 64);
    EXPECT_EQ(cl.getString("name", ""), "fig6");
}

TEST(Cli, BooleanFlag)
{
    const CommandLine cl = parse({"--csv", "--full=false", "--quick=0"});
    EXPECT_TRUE(cl.getBool("csv", false));
    EXPECT_FALSE(cl.getBool("full", true));
    EXPECT_FALSE(cl.getBool("quick", true));
    EXPECT_TRUE(cl.getBool("absent", true));
    EXPECT_FALSE(cl.getBool("absent", false));
}

TEST(Cli, Defaults)
{
    const CommandLine cl = parse({});
    EXPECT_EQ(cl.getInt("rounds", 7), 7);
    EXPECT_DOUBLE_EQ(cl.getDouble("prob", 0.25), 0.25);
    EXPECT_EQ(cl.getString("name", "dflt"), "dflt");
    EXPECT_FALSE(cl.has("anything"));
}

TEST(Cli, Positional)
{
    const CommandLine cl = parse({"input.txt", "--flag=1", "more"});
    ASSERT_EQ(cl.positional().size(), 2u);
    EXPECT_EQ(cl.positional()[0], "input.txt");
    EXPECT_EQ(cl.positional()[1], "more");
}

TEST(Cli, FlagNames)
{
    const CommandLine cl = parse({"--b=1", "--a=2"});
    const auto names = cl.flagNames();
    ASSERT_EQ(names.size(), 2u);
    // std::map ordering: alphabetical.
    EXPECT_EQ(names[0], "a");
    EXPECT_EQ(names[1], "b");
}

TEST(Table, AlignedOutput)
{
    Table t({"name", "value"});
    t.addRow({"x", "10"});
    t.addRow({"longer", "2"});
    std::ostringstream os;
    t.print(os);
    const std::string out = os.str();
    EXPECT_NE(out.find("| name"), std::string::npos);
    EXPECT_NE(out.find("| longer"), std::string::npos);
    // Header separator present.
    EXPECT_NE(out.find("|-"), std::string::npos);
    EXPECT_EQ(t.numRows(), 2u);
    EXPECT_EQ(t.numCols(), 2u);
}

TEST(Table, CsvOutput)
{
    Table t({"a", "b"});
    t.addRow({"1", "2"});
    std::ostringstream os;
    t.printCsv(os);
    EXPECT_EQ(os.str(), "a,b\n1,2\n");
}

TEST(Table, FormatHelpers)
{
    EXPECT_EQ(formatDouble(0.123456, 3), "0.123");
    EXPECT_EQ(formatDouble(2.0, 1), "2.0");
    EXPECT_EQ(formatSci(12345.0, 2), "1.23e+04");
    EXPECT_EQ(formatSci(1e-17, 1), "1.0e-17");
}

} // namespace
} // namespace harp::common
