/**
 * @file
 * Unit tests for the injectable I/O seam (common/io.hh): plan-spec
 * parsing round trips, one-shot vs sticky scheduling, injected errors
 * surfacing as std::error_code from File/renamePath/syncDir, short
 * writes leaving a genuinely torn tail on disk, injected EINTR being
 * consumed by the retry loop, and the retriable-errno classification
 * the degraded state machine relies on.
 */

#include <gtest/gtest.h>

#include <cerrno>
#include <filesystem>
#include <fstream>
#include <sstream>
#include <string>
#include <thread>
#include <vector>

#include <unistd.h>

#include "common/io.hh"

namespace harp::common::io {
namespace {

namespace fs = std::filesystem;

std::string
readFile(const fs::path &path)
{
    std::ifstream in(path, std::ios::binary);
    EXPECT_TRUE(in.good()) << path;
    std::ostringstream out;
    out << in.rdbuf();
    return out.str();
}

class IoFaultsTest : public ::testing::Test
{
  protected:
    void SetUp() override
    {
        root_ = fs::temp_directory_path() /
                ("io_faults_" + std::to_string(::getpid()) + "_" +
                 ::testing::UnitTest::GetInstance()
                     ->current_test_info()
                     ->name());
        fs::remove_all(root_);
        fs::create_directories(root_);
    }

    void TearDown() override { fs::remove_all(root_); }

    fs::path root_;
};

TEST_F(IoFaultsTest, CleanFileRoundTripsBytes)
{
    File file;
    const fs::path path = root_ / "out.txt";
    ASSERT_FALSE(file.open(path.string(), /*truncate=*/true));
    ASSERT_FALSE(file.writeAll("hello "));
    ASSERT_FALSE(file.writeAll("world\n"));
    ASSERT_FALSE(file.sync());
    ASSERT_FALSE(file.close());
    EXPECT_FALSE(file.isOpen());
    EXPECT_EQ(readFile(path), "hello world\n");

    // Append mode continues the file.
    ASSERT_FALSE(file.open(path.string(), /*truncate=*/false));
    ASSERT_FALSE(file.writeAll("again\n"));
    ASSERT_FALSE(file.close());
    EXPECT_EQ(readFile(path), "hello world\nagain\n");

    // Truncate mode restarts it.
    ASSERT_FALSE(file.open(path.string(), /*truncate=*/true));
    ASSERT_FALSE(file.close());
    EXPECT_EQ(readFile(path), "");
}

TEST_F(IoFaultsTest, OneShotWriteFaultFailsExactlyTheNthWrite)
{
    FaultPlan plan;
    plan.injectAt(Op::Write, 2,
                  {std::error_code(ENOSPC, std::generic_category())});
    File file;
    ASSERT_FALSE(
        file.open((root_ / "f").string(), true, &plan));
    EXPECT_FALSE(file.writeAll("a"));   // write #0
    EXPECT_FALSE(file.writeAll("b"));   // write #1
    const std::error_code ec = file.writeAll("c"); // write #2: fails
    EXPECT_EQ(ec.value(), ENOSPC);
    // One-shot: the schedule is consumed, later writes succeed.
    EXPECT_FALSE(file.writeAll("d"));
    ASSERT_FALSE(file.close());
    // The failed write persisted nothing (no short= clause).
    EXPECT_EQ(readFile(root_ / "f"), "abd");
}

TEST_F(IoFaultsTest, StickyFaultPersistsUntilThePlanGoesAway)
{
    FaultPlan plan;
    plan.injectFrom(Op::Write, 1,
                    {std::error_code(ENOSPC, std::generic_category())});
    File file;
    ASSERT_FALSE(file.open((root_ / "f").string(), true, &plan));
    EXPECT_FALSE(file.writeAll("ok"));
    for (int i = 0; i < 4; ++i)
        EXPECT_EQ(file.writeAll("x").value(), ENOSPC) << i;
    ASSERT_FALSE(file.close());
    EXPECT_EQ(readFile(root_ / "f"), "ok");
}

TEST_F(IoFaultsTest, ShortWriteLeavesATornTailOnDisk)
{
    FaultPlan plan;
    plan.injectAt(Op::Write, 0,
                  {std::error_code(EIO, std::generic_category()), 4});
    File file;
    ASSERT_FALSE(file.open((root_ / "f").string(), true, &plan));
    const std::error_code ec = file.writeAll("0123456789");
    EXPECT_EQ(ec.value(), EIO);
    ASSERT_FALSE(file.close());
    // The prefix genuinely reached the file: the torn-tail failure
    // mode checkpoint recovery must truncate away.
    EXPECT_EQ(readFile(root_ / "f"), "0123");
}

TEST_F(IoFaultsTest, InjectedEintrIsConsumedByTheRetryLoop)
{
    FaultPlan plan;
    plan.injectAt(Op::Write, 0,
                  {std::error_code(EINTR, std::generic_category()), 2});
    File file;
    ASSERT_FALSE(file.open((root_ / "f").string(), true, &plan));
    // EINTR witnesses the internal retry: the caller sees success and
    // the full payload lands.
    EXPECT_FALSE(file.writeAll("abcdef"));
    ASSERT_FALSE(file.close());
    EXPECT_EQ(readFile(root_ / "f"), "abcdef");
}

TEST_F(IoFaultsTest, FsyncOpenCloseAndRenameFaultsSurface)
{
    FaultPlan plan;
    plan.injectAt(Op::Fsync, 0,
                  {std::error_code(EIO, std::generic_category())});
    plan.injectAt(Op::Open, 1,
                  {std::error_code(EACCES, std::generic_category())});
    plan.injectAt(Op::Close, 0,
                  {std::error_code(EIO, std::generic_category())});
    plan.injectAt(Op::Rename, 0,
                  {std::error_code(ENOSPC, std::generic_category())});

    File file;
    ASSERT_FALSE(file.open((root_ / "f").string(), true, &plan));
    EXPECT_FALSE(file.writeAll("x"));
    EXPECT_EQ(file.sync().value(), EIO);
    EXPECT_EQ(file.close().value(), EIO);
    EXPECT_FALSE(file.isOpen()) << "fd must not leak on close fault";

    EXPECT_EQ(file.open((root_ / "g").string(), true, &plan).value(),
              EACCES);
    EXPECT_FALSE(file.isOpen());

    EXPECT_EQ(renamePath((root_ / "f").string(),
                         (root_ / "renamed").string(), &plan)
                  .value(),
              ENOSPC);
    EXPECT_TRUE(fs::exists(root_ / "f")) << "failed rename is a no-op";
    // With the one-shot consumed, the rename goes through.
    EXPECT_FALSE(renamePath((root_ / "f").string(),
                            (root_ / "renamed").string(), &plan));
    EXPECT_TRUE(fs::exists(root_ / "renamed"));
    EXPECT_FALSE(syncDir(root_.string(), &plan));
}

TEST_F(IoFaultsTest, RealErrorsStillSurfaceWithoutAPlan)
{
    File file;
    const std::error_code ec =
        file.open((root_ / "no_such_dir" / "f").string(), true);
    EXPECT_TRUE(ec);
    EXPECT_EQ(ec.value(), ENOENT);
    EXPECT_FALSE(file.isOpen());

    EXPECT_TRUE(renamePath((root_ / "absent").string(),
                           (root_ / "target").string()));
    EXPECT_TRUE(syncDir((root_ / "no_such_dir").string()));
}

TEST_F(IoFaultsTest, SpecGrammarRoundTrips)
{
    FaultPlan plan =
        FaultPlan::parse("write#4+=ENOSPC/short=10,fsync#0=EIO,"
                         "rename#1=EACCES");
    // describe() re-serializes the schedule: a chaos failure is
    // reproducible from the logged line alone.
    const std::string described = plan.describe();
    EXPECT_NE(described.find("write#4+=ENOSPC/short=10"),
              std::string::npos)
        << described;
    EXPECT_NE(described.find("fsync#0=EIO"), std::string::npos);
    EXPECT_NE(described.find("rename#1=EACCES"), std::string::npos);

    // And the parsed plan behaves as scheduled.
    for (int i = 0; i < 4; ++i)
        EXPECT_FALSE(plan.next(Op::Write).has_value()) << i;
    const std::optional<Fault> fifth = plan.next(Op::Write);
    ASSERT_TRUE(fifth.has_value());
    EXPECT_EQ(fifth->ec.value(), ENOSPC);
    EXPECT_EQ(fifth->shortBytes, 10u);
    EXPECT_TRUE(plan.next(Op::Write).has_value()) << "sticky";
    ASSERT_TRUE(plan.next(Op::Fsync).has_value());
    EXPECT_FALSE(plan.next(Op::Rename).has_value());
    ASSERT_TRUE(plan.next(Op::Rename).has_value());
    EXPECT_EQ(plan.consumed(Op::Write), 6u);
}

TEST_F(IoFaultsTest, NumericErrnosAndNamesAgree)
{
    FaultPlan plan = FaultPlan::parse("write#0=" +
                                      std::to_string(ENOSPC));
    const std::optional<Fault> fault = plan.next(Op::Write);
    ASSERT_TRUE(fault.has_value());
    EXPECT_EQ(fault->ec.value(), ENOSPC);
    EXPECT_EQ(errnoName(ENOSPC), "ENOSPC");
    EXPECT_EQ(errnoName(EIO), "EIO");
    // Unknown values still round-trip through the numeric fallback.
    const std::string odd = errnoName(12345);
    EXPECT_EQ(odd, "errno_12345");
}

TEST_F(IoFaultsTest, MalformedSpecsAreRejectedWithTheOffendingEntry)
{
    const std::vector<std::string> bad = {
        "frobnicate#0=EIO",     // unknown op
        "write#x=EIO",          // bad index
        "write#0=EFROB",        // unknown errno
        "write#0",              // missing errno
        "fsync#0=EIO/short=4",  // short= is write-only
        "write#0=EIO/short=no", // bad short value
    };
    for (const std::string &spec : bad) {
        EXPECT_THROW(
            {
                try {
                    FaultPlan::parse(spec);
                } catch (const std::runtime_error &e) {
                    // The message names the entry so a bad --fault-plan
                    // flag is diagnosable.
                    EXPECT_NE(std::string(e.what()).find(
                                  spec.substr(0, 5)),
                              std::string::npos)
                        << e.what();
                    throw;
                }
            },
            std::runtime_error)
            << spec;
    }
}

TEST_F(IoFaultsTest, PlanIsSafeToShareAcrossThreads)
{
    FaultPlan plan;
    for (std::size_t i = 0; i < 64; i += 2)
        plan.injectAt(Op::Write, i,
                      {std::error_code(EIO, std::generic_category())});
    std::vector<std::thread> threads;
    std::vector<int> faults(4, 0);
    for (int t = 0; t < 4; ++t)
        threads.emplace_back([&plan, &faults, t] {
            for (int i = 0; i < 16; ++i)
                if (plan.next(Op::Write).has_value())
                    ++faults[t];
        });
    for (std::thread &thread : threads)
        thread.join();
    // Every even-indexed occurrence fired exactly once, whoever drew it.
    EXPECT_EQ(faults[0] + faults[1] + faults[2] + faults[3], 32);
    EXPECT_EQ(plan.consumed(Op::Write), 64u);
}

TEST_F(IoFaultsTest, RetriableClassificationMatchesTheRunbook)
{
    const auto code = [](int value) {
        return std::error_code(value, std::generic_category());
    };
    EXPECT_TRUE(isRetriable(code(ENOSPC)));
    EXPECT_TRUE(isRetriable(code(EDQUOT)));
    EXPECT_FALSE(isRetriable(code(EIO)));
    EXPECT_FALSE(isRetriable(code(EACCES)));
    EXPECT_FALSE(isRetriable(std::error_code()));
}

} // namespace
} // namespace harp::common::io
