/**
 * @file
 * Unit and property tests for the data-dependent fault model: Bernoulli,
 * isolated, data-dependent errors (HARP section 2.4).
 */

#include <gtest/gtest.h>

#include <set>

#include "common/rng.hh"
#include "fault/fault_model.hh"

namespace harp::fault {
namespace {

TEST(CellTechnology, ChargePolarity)
{
    EXPECT_TRUE(isCharged(CellTechnology::TrueCell, true));
    EXPECT_FALSE(isCharged(CellTechnology::TrueCell, false));
    EXPECT_TRUE(isCharged(CellTechnology::AntiCell, false));
    EXPECT_FALSE(isCharged(CellTechnology::AntiCell, true));
}

TEST(FaultModel, ConstructionValidation)
{
    EXPECT_THROW(WordFaultModel(8, {{8, 0.5}}), std::invalid_argument);
    EXPECT_THROW(WordFaultModel(8, {{1, 0.5}, {1, 0.5}}),
                 std::invalid_argument);
    EXPECT_THROW(WordFaultModel(8, {{1, -0.1}}), std::invalid_argument);
    EXPECT_THROW(WordFaultModel(8, {{1, 1.5}}), std::invalid_argument);
    EXPECT_NO_THROW(WordFaultModel(8, {{7, 1.0}, {0, 0.0}}));
}

TEST(FaultModel, PositionsSortedAndQueryable)
{
    const WordFaultModel fm(16, {{9, 0.5}, {2, 0.5}, {13, 0.5}});
    EXPECT_EQ(fm.atRiskPositions(),
              (std::vector<std::size_t>{2, 9, 13}));
    EXPECT_TRUE(fm.isAtRisk(9));
    EXPECT_FALSE(fm.isAtRisk(3));
    EXPECT_EQ(fm.numFaults(), 3u);
}

TEST(FaultModel, TrueCellNeverFailsWhenDischarged)
{
    // A true-cell storing '0' holds no charge and cannot leak.
    const WordFaultModel fm(8, {{3, 1.0}});
    common::Xoshiro256 rng(1);
    gf2::BitVector stored(8); // all zero: discharged
    for (int trial = 0; trial < 50; ++trial)
        EXPECT_TRUE(fm.injectErrors(stored, rng).isZero());
}

TEST(FaultModel, TrueCellAlwaysFailsAtProbabilityOneWhenCharged)
{
    const WordFaultModel fm(8, {{3, 1.0}});
    common::Xoshiro256 rng(2);
    gf2::BitVector stored(8);
    stored.set(3, true);
    for (int trial = 0; trial < 50; ++trial) {
        const gf2::BitVector mask = fm.injectErrors(stored, rng);
        EXPECT_EQ(mask.popcount(), 1u);
        EXPECT_TRUE(mask.get(3));
    }
}

TEST(FaultModel, AntiCellPolarityReversed)
{
    const WordFaultModel fm(8, {{3, 1.0}}, CellTechnology::AntiCell);
    common::Xoshiro256 rng(3);
    gf2::BitVector stored(8); // all zero: anti-cells are charged
    EXPECT_TRUE(fm.injectErrors(stored, rng).get(3));
    stored.set(3, true); // discharged for an anti-cell
    EXPECT_TRUE(fm.injectErrors(stored, rng).isZero());
}

TEST(FaultModel, NonAtRiskCellsNeverFail)
{
    const WordFaultModel fm(32, {{5, 1.0}, {20, 1.0}});
    common::Xoshiro256 rng(4);
    gf2::BitVector stored(32);
    stored.fill(true);
    for (int trial = 0; trial < 20; ++trial) {
        const gf2::BitVector mask = fm.injectErrors(stored, rng);
        EXPECT_EQ(mask.setBits(), (std::vector<std::size_t>{5, 20}));
    }
}

TEST(FaultModel, BernoulliFrequencyMatchesProbability)
{
    const WordFaultModel fm(8, {{0, 0.25}});
    common::Xoshiro256 rng(5);
    gf2::BitVector stored(8);
    stored.set(0, true);
    int hits = 0;
    const int trials = 20000;
    for (int i = 0; i < trials; ++i)
        hits += fm.injectErrors(stored, rng).get(0) ? 1 : 0;
    EXPECT_NEAR(static_cast<double>(hits) / trials, 0.25, 0.015);
}

TEST(FaultModel, CrnInjectionIsDeterministic)
{
    const WordFaultModel fm(16, {{1, 0.5}, {8, 0.5}, {14, 0.5}});
    gf2::BitVector stored(16);
    stored.fill(true);
    const std::vector<double> uniforms = {0.4, 0.6, 0.1};
    const gf2::BitVector a = fm.injectErrorsCrn(stored, uniforms);
    const gf2::BitVector b = fm.injectErrorsCrn(stored, uniforms);
    EXPECT_EQ(a, b);
    // u < p fails: cells at sorted positions 1 (u=0.4) and 14 (u=0.1).
    EXPECT_TRUE(a.get(1));
    EXPECT_FALSE(a.get(8));
    EXPECT_TRUE(a.get(14));
}

TEST(FaultModel, CrnRespectsCharge)
{
    const WordFaultModel fm(16, {{1, 0.5}, {8, 0.5}});
    gf2::BitVector stored(16);
    stored.set(1, true); // 8 stays discharged
    const std::vector<double> uniforms = {0.0, 0.0};
    const gf2::BitVector mask = fm.injectErrorsCrn(stored, uniforms);
    EXPECT_TRUE(mask.get(1));
    EXPECT_FALSE(mask.get(8));
}

TEST(FaultModel, FixedCountGeneratorProperties)
{
    common::Xoshiro256 rng(6);
    for (int trial = 0; trial < 50; ++trial) {
        const WordFaultModel fm =
            WordFaultModel::makeUniformFixedCount(71, 5, 0.5, rng);
        EXPECT_EQ(fm.numFaults(), 5u);
        std::set<std::size_t> positions;
        for (const CellFault &f : fm.faults()) {
            EXPECT_LT(f.position, 71u);
            EXPECT_DOUBLE_EQ(f.probability, 0.5);
            positions.insert(f.position);
        }
        EXPECT_EQ(positions.size(), 5u) << "positions must be distinct";
    }
}

TEST(FaultModel, FixedCountCoversWholeWord)
{
    // Across many draws every position should eventually be chosen,
    // i.e.\ the sample is not biased to a sub-range.
    common::Xoshiro256 rng(7);
    std::set<std::size_t> seen;
    for (int trial = 0; trial < 400; ++trial) {
        const WordFaultModel fm =
            WordFaultModel::makeUniformFixedCount(71, 3, 0.5, rng);
        for (const CellFault &f : fm.faults())
            seen.insert(f.position);
    }
    EXPECT_EQ(seen.size(), 71u);
}

TEST(FaultModel, RberGeneratorDensity)
{
    common::Xoshiro256 rng(8);
    std::size_t total = 0;
    const int trials = 2000;
    for (int i = 0; i < trials; ++i) {
        total += WordFaultModel::makeUniformRber(71, 0.05, 0.5, rng)
                     .numFaults();
    }
    const double mean = static_cast<double>(total) / trials;
    EXPECT_NEAR(mean, 71.0 * 0.05, 0.35);
}

TEST(FaultModel, RberZeroAndOne)
{
    common::Xoshiro256 rng(9);
    EXPECT_EQ(WordFaultModel::makeUniformRber(71, 0.0, 0.5, rng)
                  .numFaults(),
              0u);
    EXPECT_EQ(WordFaultModel::makeUniformRber(71, 1.0, 0.5, rng)
                  .numFaults(),
              71u);
}

} // namespace
} // namespace harp::fault
