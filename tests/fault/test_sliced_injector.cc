/**
 * @file
 * Equivalence tests for the bit-sliced CRN fault injector: with each
 * lane's RNG seeded identically to a scalar reference, apply() must
 * reproduce WordFaultModel::injectErrorsCrn exactly — across mixed
 * fault models, probabilities, cell technologies and repeated
 * application within a round (the common-random-number contract).
 */

#include <gtest/gtest.h>

#include "fault/sliced_injector.hh"
#include "support/property.hh"

namespace harp::fault {
namespace {

using test::forEachSeed;

/** The scalar reference: the per-word uniforms buffer the scalar round
 *  engine feeds injectErrorsCrn. */
std::vector<double>
drawUniforms(const WordFaultModel &model, common::Xoshiro256 &rng)
{
    std::vector<double> uniforms(model.numFaults());
    for (double &u : uniforms)
        u = rng.nextDouble();
    return uniforms;
}

TEST(SlicedCrnInjector, MatchesScalarInjectErrorsCrn)
{
    forEachSeed(6, [](std::uint64_t seed, common::Xoshiro256 &rng) {
        const std::size_t word_bits = 71;
        const std::size_t lanes = 37;

        // Heterogeneous lane population: varying cell counts,
        // probabilities and technologies, including fault-free lanes.
        std::vector<WordFaultModel> models;
        for (std::size_t w = 0; w < lanes; ++w) {
            const std::size_t count = w % 7; // 0..6 at-risk cells
            const double probability = 0.25 * static_cast<double>(w % 5);
            WordFaultModel base = WordFaultModel::makeUniformFixedCount(
                word_bits, count, probability, rng);
            const CellTechnology tech = (w % 3 == 0)
                                            ? CellTechnology::AntiCell
                                            : CellTechnology::TrueCell;
            models.emplace_back(word_bits, base.faults(), tech);
        }
        std::vector<const WordFaultModel *> ptrs;
        for (const WordFaultModel &model : models)
            ptrs.push_back(&model);
        SlicedCrnInjector injector(ptrs);
        ASSERT_EQ(injector.lanes(), lanes);
        ASSERT_EQ(injector.wordBits(), word_bits);

        // Per-lane RNGs, plus identically seeded scalar references.
        std::vector<common::Xoshiro256> lane_rngs;
        std::vector<common::Xoshiro256> ref_rngs;
        for (std::size_t w = 0; w < lanes; ++w) {
            const std::uint64_t s = common::deriveSeed(seed, {w});
            lane_rngs.emplace_back(s);
            ref_rngs.emplace_back(s);
        }

        for (std::size_t round = 0; round < 8; ++round) {
            injector.drawRound(lane_rngs);
            std::vector<std::vector<double>> uniforms;
            for (std::size_t w = 0; w < lanes; ++w)
                uniforms.push_back(drawUniforms(models[w], ref_rngs[w]));

            // The CRN contract: the same trials apply to *different*
            // stored codewords (one per profiler) within one round.
            for (std::size_t use = 0; use < 3; ++use) {
                std::vector<gf2::BitVector> stored;
                for (std::size_t w = 0; w < lanes; ++w)
                    stored.push_back(
                        gf2::BitVector::random(word_bits, rng));
                gf2::BitSlice64 stored_slice(word_bits);
                stored_slice.gather(stored);
                gf2::BitSlice64 received = stored_slice;
                injector.apply(stored_slice, received);

                std::vector<gf2::BitVector> out(
                    lanes, gf2::BitVector(word_bits));
                received.scatter(out);
                for (std::size_t w = 0; w < lanes; ++w) {
                    gf2::BitVector expected = stored[w];
                    expected ^= models[w].injectErrorsCrn(stored[w],
                                                          uniforms[w]);
                    ASSERT_EQ(out[w], expected)
                        << "round " << round << ", use " << use
                        << ", lane " << w;
                }
            }
        }
    });
}

/**
 * The injector is code-agnostic over the word length: BCH codewords
 * are longer than the Hamming (71, 64) shape (t = 3 over k = 64 gives
 * n = 85), and the sliced engine feeds it whatever n the SlicedCode
 * reports. Check the scalar-equivalence contract at a BCH geometry
 * with cells concentrated in the (wide) parity region.
 */
TEST(SlicedCrnInjector, MatchesScalarAtBchWordLengths)
{
    forEachSeed(2, [](std::uint64_t seed, common::Xoshiro256 &rng) {
        const std::size_t word_bits = 85; // (85, 64) t = 3 BCH shape
        const std::size_t lanes = 9;
        std::vector<WordFaultModel> models;
        for (std::size_t w = 0; w < lanes; ++w) {
            // Bias at-risk cells into the parity tail [64, 85).
            std::vector<CellFault> cells;
            for (std::size_t c = 0; c < 1 + w % 4; ++c)
                cells.push_back(
                    {64 + (w * 5 + c) % 21, 0.25 * (1 + w % 3)});
            models.emplace_back(word_bits, cells);
        }
        std::vector<const WordFaultModel *> ptrs;
        for (const WordFaultModel &model : models)
            ptrs.push_back(&model);
        SlicedCrnInjector injector(ptrs);
        ASSERT_EQ(injector.wordBits(), word_bits);

        std::vector<common::Xoshiro256> lane_rngs;
        std::vector<common::Xoshiro256> ref_rngs;
        for (std::size_t w = 0; w < lanes; ++w) {
            const std::uint64_t s = common::deriveSeed(seed, {w});
            lane_rngs.emplace_back(s);
            ref_rngs.emplace_back(s);
        }
        for (std::size_t round = 0; round < 6; ++round) {
            injector.drawRound(lane_rngs);
            std::vector<gf2::BitVector> stored;
            for (std::size_t w = 0; w < lanes; ++w)
                stored.push_back(gf2::BitVector::random(word_bits, rng));
            gf2::BitSlice64 stored_slice(word_bits);
            stored_slice.gather(stored);
            gf2::BitSlice64 received = stored_slice;
            injector.apply(stored_slice, received);
            for (std::size_t w = 0; w < lanes; ++w) {
                gf2::BitVector expected = stored[w];
                expected ^= models[w].injectErrorsCrn(
                    stored[w], drawUniforms(models[w], ref_rngs[w]));
                ASSERT_EQ(received.extractWord(w), expected)
                    << "round " << round << ", lane " << w;
            }
        }
    });
}

TEST(SlicedCrnInjector, RejectsMismatchedLanes)
{
    common::Xoshiro256 rng(1);
    const WordFaultModel a =
        WordFaultModel::makeUniformFixedCount(71, 2, 0.5, rng);
    const WordFaultModel b =
        WordFaultModel::makeUniformFixedCount(72, 2, 0.5, rng);
    EXPECT_THROW(SlicedCrnInjector({&a, &b}), std::invalid_argument);
    EXPECT_THROW(
        SlicedCrnInjector(std::vector<const WordFaultModel *>{}),
        std::invalid_argument);
}

} // namespace
} // namespace harp::fault
