/**
 * @file
 * Unit and property tests for gf2::BitVector.
 */

#include <gtest/gtest.h>

#include "common/rng.hh"
#include "gf2/bit_vector.hh"

namespace harp::gf2 {
namespace {

TEST(BitVector, DefaultIsZero)
{
    const BitVector v(130);
    EXPECT_EQ(v.size(), 130u);
    EXPECT_TRUE(v.isZero());
    EXPECT_EQ(v.popcount(), 0u);
}

TEST(BitVector, SetGetFlip)
{
    BitVector v(71);
    v.set(0, true);
    v.set(70, true);
    EXPECT_TRUE(v.get(0));
    EXPECT_TRUE(v.get(70));
    EXPECT_FALSE(v.get(35));
    v.flip(70);
    EXPECT_FALSE(v.get(70));
    v.flip(35);
    EXPECT_TRUE(v.get(35));
    EXPECT_EQ(v.popcount(), 2u);
}

TEST(BitVector, FromUint)
{
    const BitVector v = BitVector::fromUint(0b1011, 8);
    EXPECT_TRUE(v.get(0));
    EXPECT_TRUE(v.get(1));
    EXPECT_FALSE(v.get(2));
    EXPECT_TRUE(v.get(3));
    EXPECT_EQ(v.toUint(), 0b1011u);
}

TEST(BitVector, FromUintMasksHighBits)
{
    const BitVector v = BitVector::fromUint(0xFF, 4);
    EXPECT_EQ(v.popcount(), 4u);
    EXPECT_EQ(v.toUint(), 0xFu);
}

TEST(BitVector, FromIndices)
{
    const BitVector v = BitVector::fromIndices(100, {0, 64, 99});
    EXPECT_EQ(v.popcount(), 3u);
    EXPECT_TRUE(v.get(64));
    const auto bits = v.setBits();
    EXPECT_EQ(bits, (std::vector<std::size_t>{0, 64, 99}));
}

TEST(BitVector, FillRespectsTail)
{
    BitVector v(71);
    v.fill(true);
    EXPECT_EQ(v.popcount(), 71u);
    v.fill(false);
    EXPECT_TRUE(v.isZero());
}

TEST(BitVector, XorIsSelfInverse)
{
    common::Xoshiro256 rng(1);
    const BitVector a = BitVector::random(200, rng);
    const BitVector b = BitVector::random(200, rng);
    BitVector c = a;
    c ^= b;
    c ^= b;
    EXPECT_EQ(c, a);
}

TEST(BitVector, AndOrSemantics)
{
    const BitVector a = BitVector::fromUint(0b1100, 4);
    const BitVector b = BitVector::fromUint(0b1010, 4);
    BitVector and_v = a;
    and_v &= b;
    EXPECT_EQ(and_v.toUint(), 0b1000u);
    BitVector or_v = a;
    or_v |= b;
    EXPECT_EQ(or_v.toUint(), 0b1110u);
}

TEST(BitVector, DotProduct)
{
    const BitVector a = BitVector::fromUint(0b1101, 4);
    const BitVector b = BitVector::fromUint(0b1011, 4);
    // Overlap = {0, 3} -> even -> 0.
    EXPECT_FALSE(a.dot(b));
    const BitVector c = BitVector::fromUint(0b0001, 4);
    EXPECT_TRUE(a.dot(c));
}

TEST(BitVector, DotDistributesOverXor)
{
    common::Xoshiro256 rng(7);
    for (int trial = 0; trial < 20; ++trial) {
        const BitVector a = BitVector::random(97, rng);
        const BitVector b = BitVector::random(97, rng);
        const BitVector c = BitVector::random(97, rng);
        BitVector bc = b;
        bc ^= c;
        EXPECT_EQ(a.dot(bc), a.dot(b) != a.dot(c));
    }
}

TEST(BitVector, SliceExtractsRange)
{
    BitVector v(71);
    v.set(64, true);
    v.set(70, true);
    v.set(3, true);
    const BitVector data = v.slice(0, 64);
    EXPECT_EQ(data.size(), 64u);
    EXPECT_EQ(data.popcount(), 1u);
    EXPECT_TRUE(data.get(3));
    const BitVector parity = v.slice(64, 71);
    EXPECT_EQ(parity.size(), 7u);
    EXPECT_TRUE(parity.get(0));
    EXPECT_TRUE(parity.get(6));
    EXPECT_EQ(parity.popcount(), 2u);
}

TEST(BitVector, ForEachSetBitAscending)
{
    const BitVector v = BitVector::fromIndices(150, {149, 0, 64, 63});
    std::vector<std::size_t> seen;
    v.forEachSetBit([&](std::size_t i) { seen.push_back(i); });
    EXPECT_EQ(seen, (std::vector<std::size_t>{0, 63, 64, 149}));
}

TEST(BitVector, ComparisonAndOrdering)
{
    const BitVector a = BitVector::fromUint(1, 8);
    const BitVector b = BitVector::fromUint(2, 8);
    EXPECT_NE(a, b);
    EXPECT_TRUE(a < b);
    const BitVector shorter = BitVector::fromUint(1, 4);
    EXPECT_NE(a, shorter);
    EXPECT_TRUE(shorter < a);
}

TEST(BitVector, ToString)
{
    const BitVector v = BitVector::fromUint(0b101, 5);
    EXPECT_EQ(v.toString(), "10100");
}

TEST(BitVector, RandomHasRoughlyHalfOnes)
{
    common::Xoshiro256 rng(13);
    std::size_t total = 0;
    const int trials = 50;
    for (int i = 0; i < trials; ++i)
        total += BitVector::random(256, rng).popcount();
    const double mean = static_cast<double>(total) / trials;
    EXPECT_NEAR(mean, 128.0, 12.0);
}

TEST(BitVector, RandomMasksTail)
{
    common::Xoshiro256 rng(19);
    for (int i = 0; i < 20; ++i) {
        const BitVector v = BitVector::random(71, rng);
        EXPECT_LE(v.popcount(), 71u);
        // Words beyond the tail must be masked: slice back and compare.
        EXPECT_EQ(v.slice(0, 71), v);
    }
}

} // namespace
} // namespace harp::gf2
