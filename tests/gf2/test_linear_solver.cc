/**
 * @file
 * Unit and property tests for the GF(2) linear solver and the
 * constraint-system wrapper.
 */

#include <gtest/gtest.h>

#include <set>
#include <vector>

#include "common/rng.hh"
#include "gf2/linear_solver.hh"

namespace harp::gf2 {
namespace {

TEST(LinearSolver, SolvesIdentitySystem)
{
    const BitMatrix a = BitMatrix::identity(5);
    const BitVector b = BitVector::fromUint(0b10110, 5);
    const auto sol = solve(a, b);
    ASSERT_TRUE(sol.has_value());
    EXPECT_EQ(sol->particular, b);
    EXPECT_TRUE(sol->nullspace.empty());
}

TEST(LinearSolver, DetectsInconsistency)
{
    // x0 = 0 and x0 = 1 simultaneously.
    BitMatrix a(2, 1);
    a.set(0, 0, true);
    a.set(1, 0, true);
    BitVector b(2);
    b.set(1, true);
    EXPECT_FALSE(solve(a, b).has_value());
}

TEST(LinearSolver, UnderdeterminedNullspace)
{
    // One equation, three unknowns: x0 ^ x1 ^ x2 = 1.
    BitMatrix a(1, 3);
    a.set(0, 0, true);
    a.set(0, 1, true);
    a.set(0, 2, true);
    BitVector b(1);
    b.set(0, true);
    const auto sol = solve(a, b);
    ASSERT_TRUE(sol.has_value());
    EXPECT_EQ(sol->nullspace.size(), 2u);
    // Particular solution satisfies the equation.
    EXPECT_TRUE(a.multiply(sol->particular) == b);
    // Every nullspace combination also satisfies it.
    for (const BitVector &basis : sol->nullspace) {
        BitVector x = sol->particular;
        x ^= basis;
        EXPECT_TRUE(a.multiply(x) == b);
    }
}

TEST(LinearSolver, RandomSystemsSolutionsVerify)
{
    common::Xoshiro256 rng(17);
    int solved = 0;
    for (int trial = 0; trial < 50; ++trial) {
        const BitMatrix a = BitMatrix::random(8, 12, rng);
        const BitVector b = BitVector::random(8, rng);
        const auto sol = solve(a, b);
        if (!sol)
            continue;
        ++solved;
        EXPECT_EQ(a.multiply(sol->particular), b);
        for (const BitVector &basis : sol->nullspace)
            EXPECT_TRUE(a.multiply(basis).isZero());
        // Rank-nullity: #nullspace = cols - rank.
        EXPECT_EQ(sol->nullspace.size(), 12u - a.rank());
    }
    // Wide random systems are almost always consistent.
    EXPECT_GT(solved, 40);
}

TEST(LinearSolver, SquareSingularConsistentAndInconsistent)
{
    // Rows: x0^x1 = b0, x0^x1 = b1. Consistent iff b0 == b1.
    BitMatrix a(2, 2);
    a.set(0, 0, true);
    a.set(0, 1, true);
    a.set(1, 0, true);
    a.set(1, 1, true);
    BitVector consistent(2);
    consistent.set(0, true);
    consistent.set(1, true);
    EXPECT_TRUE(solve(a, consistent).has_value());
    BitVector inconsistent(2);
    inconsistent.set(0, true);
    EXPECT_FALSE(solve(a, inconsistent).has_value());
}

TEST(ConstraintSystem, PinVariables)
{
    ConstraintSystem cs(8);
    cs.pinVariable(2, true);
    cs.pinVariable(5, false);
    const auto x = cs.solveAny();
    ASSERT_TRUE(x.has_value());
    EXPECT_TRUE(x->get(2));
    EXPECT_FALSE(x->get(5));
}

TEST(ConstraintSystem, ConflictingPinsInconsistent)
{
    ConstraintSystem cs(4);
    cs.pinVariable(1, true);
    cs.pinVariable(1, false);
    EXPECT_FALSE(cs.consistent());
    EXPECT_FALSE(cs.solveAny().has_value());
}

TEST(ConstraintSystem, ParityConstraint)
{
    ConstraintSystem cs(6);
    // x0 ^ x1 ^ x2 = 1 with x0 = 1, x1 = 1 forces x2 = 1.
    BitVector row(6);
    row.set(0, true);
    row.set(1, true);
    row.set(2, true);
    cs.addConstraint(row, true);
    cs.pinVariable(0, true);
    cs.pinVariable(1, true);
    const auto x = cs.solveAny();
    ASSERT_TRUE(x.has_value());
    EXPECT_TRUE(x->get(2));
}

TEST(ConstraintSystem, SolveRandomSatisfiesAllConstraints)
{
    common::Xoshiro256 rng(23);
    ConstraintSystem cs(16);
    BitVector row1(16), row2(16);
    for (std::size_t i = 0; i < 8; ++i)
        row1.set(i, true);
    for (std::size_t i = 4; i < 12; ++i)
        row2.set(i, true);
    cs.addConstraint(row1, true);
    cs.addConstraint(row2, false);
    for (int trial = 0; trial < 20; ++trial) {
        const auto x = cs.solveRandom(rng);
        ASSERT_TRUE(x.has_value());
        BitVector t1 = *x;
        t1 &= row1;
        EXPECT_EQ(t1.popcount() % 2, 1u);
        BitVector t2 = *x;
        t2 &= row2;
        EXPECT_EQ(t2.popcount() % 2, 0u);
    }
}

TEST(ConstraintSystem, SolveRandomExploresSolutionSpace)
{
    // x0 ^ x1 = 0 has many solutions; random solving should produce at
    // least two distinct ones over 32 draws.
    common::Xoshiro256 rng(29);
    ConstraintSystem cs(8);
    BitVector row(8);
    row.set(0, true);
    row.set(1, true);
    cs.addConstraint(row, false);
    std::set<std::vector<std::size_t>> distinct;
    for (int trial = 0; trial < 32; ++trial) {
        const auto x = cs.solveRandom(rng);
        ASSERT_TRUE(x.has_value());
        distinct.insert(x->setBits());
    }
    EXPECT_GE(distinct.size(), 2u);
}

TEST(ConstraintSystem, EmptySystemAlwaysConsistent)
{
    ConstraintSystem cs(10);
    EXPECT_TRUE(cs.consistent());
    const auto x = cs.solveAny();
    ASSERT_TRUE(x.has_value());
    EXPECT_EQ(x->size(), 10u);
}

} // namespace
} // namespace harp::gf2
