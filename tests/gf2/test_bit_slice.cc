/**
 * @file
 * Unit tests for the BitSlice64 transposed word block: the 64x64 bit
 * transpose, gather/scatter round trips (including ragged lane counts
 * and non-multiple-of-64 position counts), and prefix scatter.
 */

#include <gtest/gtest.h>

#include "gf2/bit_slice.hh"
#include "support/property.hh"
#include "support/seeded_fixture.hh"

namespace harp::gf2 {
namespace {

using test::forEachSeed;

TEST(Transpose64, MatchesNaiveOnRandomMatrices)
{
    forEachSeed(8, [](std::uint64_t, common::Xoshiro256 &rng) {
        std::uint64_t m[64];
        std::uint64_t original[64];
        for (std::size_t r = 0; r < 64; ++r)
            original[r] = m[r] = rng();
        transpose64x64(m);
        for (std::size_t r = 0; r < 64; ++r)
            for (std::size_t c = 0; c < 64; ++c)
                ASSERT_EQ((m[r] >> c) & 1, (original[c] >> r) & 1)
                    << "element (" << r << "," << c << ")";
    });
}

TEST(Transpose64, IsAnInvolution)
{
    forEachSeed(4, [](std::uint64_t, common::Xoshiro256 &rng) {
        std::uint64_t m[64];
        std::uint64_t original[64];
        for (std::size_t r = 0; r < 64; ++r)
            original[r] = m[r] = rng();
        transpose64x64(m);
        transpose64x64(m);
        for (std::size_t r = 0; r < 64; ++r)
            ASSERT_EQ(m[r], original[r]);
    });
}

TEST(BitSlice64, GatherScatterRoundTrips)
{
    const std::size_t position_counts[] = {1, 5, 63, 64, 65, 71, 128, 137};
    const std::size_t lane_counts[] = {1, 5, 63, 64};
    forEachSeed(3, [&](std::uint64_t, common::Xoshiro256 &rng) {
        for (const std::size_t positions : position_counts) {
            for (const std::size_t lanes : lane_counts) {
                std::vector<BitVector> words;
                for (std::size_t w = 0; w < lanes; ++w)
                    words.push_back(BitVector::random(positions, rng));

                BitSlice64 slice(positions);
                slice.gather(words);
                // Lane bits match the gathered words...
                for (std::size_t w = 0; w < lanes; ++w)
                    for (std::size_t pos = 0; pos < positions; ++pos)
                        ASSERT_EQ(slice.get(pos, w), words[w].get(pos))
                            << positions << " positions, lane " << w
                            << ", pos " << pos;
                // ...unpopulated lanes are zeroed...
                for (std::size_t w = lanes; w < 64; ++w)
                    ASSERT_TRUE(slice.extractWord(w).isZero());
                // ...and scatter restores the originals.
                std::vector<BitVector> out(lanes, BitVector(positions));
                slice.scatter(out);
                for (std::size_t w = 0; w < lanes; ++w)
                    ASSERT_EQ(out[w], words[w]);
            }
        }
    });
}

TEST(BitSlice64, ScatterPrefixExtractsLeadingPositions)
{
    forEachSeed(3, [](std::uint64_t, common::Xoshiro256 &rng) {
        const std::size_t positions = 71; // (71,64) codeword length
        const std::size_t prefix = 64;
        std::vector<BitVector> words;
        for (std::size_t w = 0; w < 10; ++w)
            words.push_back(BitVector::random(positions, rng));
        BitSlice64 slice(positions);
        slice.gather(words);

        std::vector<BitVector> out(words.size(), BitVector(prefix));
        slice.scatterPrefix(prefix, out);
        for (std::size_t w = 0; w < words.size(); ++w)
            ASSERT_EQ(out[w], words[w].slice(0, prefix)) << "lane " << w;
    });
}

TEST(BitSlice64, LaneAccessAndSetBit)
{
    BitSlice64 slice(3);
    EXPECT_EQ(slice.positions(), 3u);
    slice.set(2, 63, true);
    slice.set(0, 0, true);
    EXPECT_TRUE(slice.get(2, 63));
    EXPECT_TRUE(slice.get(0, 0));
    EXPECT_FALSE(slice.get(1, 0));
    EXPECT_EQ(slice.lane(0), 1u);
    EXPECT_EQ(slice.lane(2), std::uint64_t{1} << 63);
    slice.lane(1) = 0xFF;
    EXPECT_TRUE(slice.get(1, 7));
    slice.clear();
    EXPECT_EQ(slice.lane(1), 0u);
}

TEST(BitVectorSetWord, MasksTailBits)
{
    BitVector v(70);
    v.setWord(0, ~std::uint64_t{0});
    v.setWord(1, ~std::uint64_t{0});
    EXPECT_EQ(v.popcount(), 70u);
    v.setWord(1, 0);
    EXPECT_EQ(v.popcount(), 64u);
}

} // namespace
} // namespace harp::gf2
