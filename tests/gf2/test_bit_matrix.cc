/**
 * @file
 * Unit and property tests for gf2::BitMatrix.
 */

#include <gtest/gtest.h>

#include "common/rng.hh"
#include "gf2/bit_matrix.hh"

namespace harp::gf2 {
namespace {

TEST(BitMatrix, IdentityProperties)
{
    const BitMatrix id = BitMatrix::identity(8);
    EXPECT_EQ(id.rows(), 8u);
    EXPECT_EQ(id.cols(), 8u);
    EXPECT_EQ(id.rank(), 8u);
    common::Xoshiro256 rng(3);
    const BitVector v = BitVector::random(8, rng);
    EXPECT_EQ(id.multiply(v), v);
}

TEST(BitMatrix, MultiplyVectorKnown)
{
    // H from the paper's Equation 1 (k=4 SEC Hamming example).
    BitMatrix h(3, 7);
    const char *rows[] = {"1110100", "1101010", "1011001"};
    for (std::size_t r = 0; r < 3; ++r)
        for (std::size_t c = 0; c < 7; ++c)
            h.set(r, c, rows[r][c] == '1');
    // A codeword of the example code must be in the nullspace of H.
    // d = (1,0,0,0) -> parity (1,1,1): c = 1000111.
    BitVector c(7);
    c.set(0, true);
    c.set(4, true);
    c.set(5, true);
    c.set(6, true);
    EXPECT_TRUE(h.multiply(c).isZero());
    // A single-bit error at position 2 yields syndrome = column 2 = (1,0,1).
    c.flip(2);
    const BitVector syndrome = h.multiply(c);
    EXPECT_TRUE(syndrome.get(0));
    EXPECT_FALSE(syndrome.get(1));
    EXPECT_TRUE(syndrome.get(2));
}

TEST(BitMatrix, MatrixProductAssociatesWithVector)
{
    common::Xoshiro256 rng(11);
    for (int trial = 0; trial < 10; ++trial) {
        const BitMatrix a = BitMatrix::random(9, 13, rng);
        const BitMatrix b = BitMatrix::random(13, 17, rng);
        const BitVector v = BitVector::random(17, rng);
        // (A·B)·v == A·(B·v)
        EXPECT_EQ(a.multiply(b).multiply(v), a.multiply(b.multiply(v)));
    }
}

TEST(BitMatrix, TransposeInvolution)
{
    common::Xoshiro256 rng(5);
    const BitMatrix m = BitMatrix::random(10, 20, rng);
    EXPECT_EQ(m.transposed().transposed(), m);
    EXPECT_EQ(m.transposed().rows(), 20u);
    EXPECT_EQ(m.transposed().cols(), 10u);
}

TEST(BitMatrix, TransposeColumnIsRow)
{
    common::Xoshiro256 rng(6);
    const BitMatrix m = BitMatrix::random(12, 8, rng);
    const BitMatrix mt = m.transposed();
    for (std::size_t c = 0; c < m.cols(); ++c)
        EXPECT_EQ(m.column(c), mt.row(c));
}

TEST(BitMatrix, RankBounds)
{
    common::Xoshiro256 rng(21);
    for (int trial = 0; trial < 10; ++trial) {
        const BitMatrix m = BitMatrix::random(6, 10, rng);
        EXPECT_LE(m.rank(), 6u);
    }
    const BitMatrix zero(4, 4);
    EXPECT_EQ(zero.rank(), 0u);
}

TEST(BitMatrix, RankOfDependentRows)
{
    BitMatrix m(3, 4);
    m.row(0) = BitVector::fromUint(0b0011, 4);
    m.row(1) = BitVector::fromUint(0b0110, 4);
    m.row(2) = BitVector::fromUint(0b0101, 4); // row0 ^ row1
    EXPECT_EQ(m.rank(), 2u);
}

TEST(BitMatrix, RowReduceProducesPivots)
{
    BitMatrix m(3, 5);
    m.row(0) = BitVector::fromUint(0b00110, 5);
    m.row(1) = BitVector::fromUint(0b01100, 5);
    m.row(2) = BitVector::fromUint(0b11000, 5);
    const auto pivots = m.rowReduce();
    EXPECT_EQ(pivots.size(), 3u);
    // Each pivot column has exactly one set bit, in its own row.
    for (std::size_t i = 0; i < pivots.size(); ++i) {
        const BitVector col = m.column(pivots[i]);
        EXPECT_EQ(col.popcount(), 1u);
        EXPECT_TRUE(col.get(i));
    }
}

TEST(BitMatrix, RandomFullProductDimensions)
{
    common::Xoshiro256 rng(31);
    const BitMatrix a = BitMatrix::random(3, 5, rng);
    const BitMatrix b = BitMatrix::random(5, 2, rng);
    const BitMatrix ab = a.multiply(b);
    EXPECT_EQ(ab.rows(), 3u);
    EXPECT_EQ(ab.cols(), 2u);
}

TEST(BitMatrix, ToStringShape)
{
    BitMatrix m(2, 3);
    m.set(0, 0, true);
    m.set(1, 2, true);
    EXPECT_EQ(m.toString(), "100\n001\n");
}

} // namespace
} // namespace harp::gf2
