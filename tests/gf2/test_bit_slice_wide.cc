/**
 * @file
 * Width-parameterized property tests for BitSliceW: the same suite
 * runs at W=1 (the historical BitSlice64) and W=4 (the 256-lane AVX2
 * shape) through typed GoogleTest, so any divergence between the two
 * instantiations is a test failure, not a latent wide-lane bug.
 *
 * Covered: gather/scatter round trips over ragged lane and position
 * counts (both gather forms), orXorPrefix and diffLanesPrefix against
 * a scalar per-bit reference, ragged-tail live-lane masks, and the
 * lane helper algebra (laneMaskOf / laneBit / popcount / sub-word
 * access).
 */

#include <gtest/gtest.h>

#include "gf2/bit_slice.hh"
#include "gf2/lane.hh"
#include "support/property.hh"
#include "support/seeded_fixture.hh"

namespace harp::gf2 {
namespace {

using test::forEachSeed;

template <typename WidthConstant>
class BitSliceWide : public ::testing::Test
{
  public:
    static constexpr std::size_t W = WidthConstant::value;
    using Slice = BitSliceW<W>;
    using Lane = typename Slice::Lane;
};

using Widths = ::testing::Types<std::integral_constant<std::size_t, 1>,
                                std::integral_constant<std::size_t, 4>>;
TYPED_TEST_SUITE(BitSliceWide, Widths);

TYPED_TEST(BitSliceWide, GatherScatterRoundTrips)
{
    using Slice = typename TestFixture::Slice;
    constexpr std::size_t laneCount = Slice::laneCount;
    const std::size_t position_counts[] = {1, 5, 63, 64, 65, 71, 137};
    const std::size_t lane_counts[] = {1,
                                       5,
                                       63,
                                       64,
                                       std::min<std::size_t>(65, laneCount),
                                       laneCount - 1,
                                       laneCount};
    forEachSeed(2, [&](std::uint64_t, common::Xoshiro256 &rng) {
        for (const std::size_t positions : position_counts) {
            for (const std::size_t lanes : lane_counts) {
                std::vector<BitVector> words;
                for (std::size_t w = 0; w < lanes; ++w)
                    words.push_back(BitVector::random(positions, rng));

                Slice slice(positions);
                slice.gather(words);
                // Lane bits match the gathered words...
                for (std::size_t w = 0; w < lanes; ++w)
                    for (std::size_t pos = 0; pos < positions; ++pos)
                        ASSERT_EQ(slice.get(pos, w), words[w].get(pos))
                            << positions << " positions, lane " << w
                            << ", pos " << pos;
                // ...unpopulated lanes are zeroed...
                for (std::size_t w = lanes; w < laneCount; ++w)
                    ASSERT_TRUE(slice.extractWord(w).isZero())
                        << "lane " << w;
                // ...and scatter restores the originals.
                std::vector<BitVector> out(lanes, BitVector(positions));
                slice.scatter(out);
                for (std::size_t w = 0; w < lanes; ++w)
                    ASSERT_EQ(out[w], words[w]);
            }
        }
    });
}

TYPED_TEST(BitSliceWide, BorrowedGatherMatchesOwningGather)
{
    using Slice = typename TestFixture::Slice;
    constexpr std::size_t laneCount = Slice::laneCount;
    forEachSeed(2, [&](std::uint64_t, common::Xoshiro256 &rng) {
        const std::size_t positions = 71;
        const std::size_t lanes = laneCount - 3;
        std::vector<BitVector> words;
        for (std::size_t w = 0; w < lanes; ++w)
            words.push_back(BitVector::random(positions, rng));
        std::vector<const BitVector *> views;
        for (const BitVector &word : words)
            views.push_back(&word);

        Slice owning(positions);
        owning.gather(words);
        Slice borrowed(positions);
        borrowed.gather(views.data(), views.size());
        for (std::size_t pos = 0; pos < positions; ++pos)
            ASSERT_TRUE(owning.lane(pos) == borrowed.lane(pos))
                << "pos " << pos;
    });
}

TYPED_TEST(BitSliceWide, ScatterPrefixExtractsLeadingPositions)
{
    using Slice = typename TestFixture::Slice;
    forEachSeed(2, [](std::uint64_t, common::Xoshiro256 &rng) {
        const std::size_t positions = 71; // (71,64) codeword length
        const std::size_t prefix = 64;
        const std::size_t lanes = Slice::laneCount - 1;
        std::vector<BitVector> words;
        for (std::size_t w = 0; w < lanes; ++w)
            words.push_back(BitVector::random(positions, rng));
        Slice slice(positions);
        slice.gather(words);

        std::vector<BitVector> out(words.size(), BitVector(prefix));
        slice.scatterPrefix(prefix, out);
        for (std::size_t w = 0; w < words.size(); ++w)
            ASSERT_EQ(out[w], words[w].slice(0, prefix)) << "lane " << w;
    });
}

TYPED_TEST(BitSliceWide, OrXorPrefixMatchesScalarReference)
{
    using Slice = typename TestFixture::Slice;
    using Lane = typename TestFixture::Lane;
    constexpr std::size_t laneCount = Slice::laneCount;
    forEachSeed(3, [&](std::uint64_t, common::Xoshiro256 &rng) {
        const std::size_t positions = 71;
        const std::size_t prefix = 64;
        const std::size_t lanes = laneCount - 5;
        std::vector<BitVector> a_words, b_words;
        for (std::size_t w = 0; w < lanes; ++w) {
            a_words.push_back(BitVector::random(positions, rng));
            // Give some word pairs identical prefixes so the returned
            // mismatch mask has zero lanes to witness.
            if (w % 3 == 0)
                b_words.push_back(a_words.back());
            else
                b_words.push_back(BitVector::random(positions, rng));
        }

        Slice a(positions), b(positions), acc(prefix);
        a.gather(a_words);
        b.gather(b_words);
        const Lane changed = acc.orXorPrefix(a, b, prefix);

        for (std::size_t w = 0; w < lanes; ++w) {
            bool any = false;
            for (std::size_t pos = 0; pos < prefix; ++pos) {
                const bool mismatch =
                    a_words[w].get(pos) != b_words[w].get(pos);
                any = any || mismatch;
                ASSERT_EQ(acc.get(pos, w), mismatch)
                    << "lane " << w << ", pos " << pos;
            }
            ASSERT_EQ(laneTestBit(changed, w), any) << "lane " << w;
        }
        // Accumulation: a second pass ORs into the existing state.
        Slice ones(prefix);
        std::vector<BitVector> one_words(lanes, BitVector(prefix));
        for (auto &word : one_words)
            for (std::size_t pos = 0; pos < prefix; ++pos)
                word.set(pos, true);
        ones.gather(one_words);
        Slice zeros(prefix);
        zeros.gather(std::vector<BitVector>(lanes, BitVector(prefix)));
        acc.orXorPrefix(ones, zeros, prefix);
        for (std::size_t w = 0; w < lanes; ++w)
            for (std::size_t pos = 0; pos < prefix; ++pos)
                ASSERT_TRUE(acc.get(pos, w));
    });
}

TYPED_TEST(BitSliceWide, DiffLanesPrefixMatchesScalarReference)
{
    using Slice = typename TestFixture::Slice;
    using Lane = typename TestFixture::Lane;
    constexpr std::size_t laneCount = Slice::laneCount;
    forEachSeed(3, [&](std::uint64_t, common::Xoshiro256 &rng) {
        const std::size_t positions = 71;
        const std::size_t prefix = 64;
        const std::size_t lanes = laneCount;
        std::vector<BitVector> a_words, b_words;
        for (std::size_t w = 0; w < lanes; ++w) {
            a_words.push_back(BitVector::random(positions, rng));
            b_words.push_back(a_words.back());
        }
        // Flip one bit in a spread of lanes: some inside the prefix
        // (must be reported), some beyond it (must not).
        for (std::size_t w = 0; w < lanes; w += 7)
            b_words[w].set(w % prefix, !b_words[w].get(w % prefix));
        for (std::size_t w = 3; w < lanes; w += 11)
            if (w % 7 != 0)
                b_words[w].set(prefix + (w % (positions - prefix)),
                               !b_words[w].get(prefix +
                                               (w % (positions - prefix))));

        Slice a(positions), b(positions);
        a.gather(a_words);
        b.gather(b_words);
        const Lane diff = a.diffLanesPrefix(b, prefix);
        for (std::size_t w = 0; w < lanes; ++w) {
            const bool expect =
                !(a_words[w].slice(0, prefix) ==
                  b_words[w].slice(0, prefix));
            ASSERT_EQ(laneTestBit(diff, w), expect) << "lane " << w;
        }
    });
}

TYPED_TEST(BitSliceWide, RaggedTailMasksSelectExactlyLiveLanes)
{
    using Lane = typename TestFixture::Lane;
    constexpr std::size_t laneCount = TestFixture::Slice::laneCount;
    for (std::size_t lanes = 0; lanes <= laneCount; ++lanes) {
        const Lane mask = laneMaskOf<Lane>(lanes);
        ASSERT_EQ(lanePopcount(mask), lanes);
        for (std::size_t w = 0; w < laneCount; ++w)
            ASSERT_EQ(laneTestBit(mask, w), w < lanes)
                << lanes << " live lanes, lane " << w;
    }
    const Lane all = laneOnes<Lane>();
    ASSERT_EQ(lanePopcount(all), laneCount);
    ASSERT_TRUE(all == laneMaskOf<Lane>(laneCount));
}

TYPED_TEST(BitSliceWide, LaneHelperAlgebra)
{
    using Lane = typename TestFixture::Lane;
    constexpr std::size_t laneCount = TestFixture::Slice::laneCount;

    Lane lane{};
    ASSERT_FALSE(laneAny(lane));
    laneSetBit(lane, laneCount - 1);
    laneSetBit(lane, 0);
    ASSERT_TRUE(laneAny(lane));
    ASSERT_EQ(lanePopcount(lane), 2u);
    ASSERT_TRUE(laneTestBit(lane, 0));
    ASSERT_TRUE(laneTestBit(lane, laneCount - 1));
    laneClearBit(lane, 0);
    ASSERT_FALSE(laneTestBit(lane, 0));
    ASSERT_TRUE(lane == laneBit<Lane>(laneCount - 1));

    // forEachSetLane walks ascending; sub-word access agrees.
    laneSetBit(lane, 2);
    std::vector<std::size_t> seen;
    forEachSetLane(lane, [&](std::size_t w) { seen.push_back(w); });
    ASSERT_EQ(seen, (std::vector<std::size_t>{2, laneCount - 1}));
    ASSERT_EQ(laneWord(lane, 0) & 0x4u, 0x4u);
    laneWordRef(lane, (laneCount - 1) / 64) = 0;
    laneWordRef(lane, 0) = 0;
    ASSERT_FALSE(laneAny(lane));
}

} // namespace
} // namespace harp::gf2
