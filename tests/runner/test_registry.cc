/**
 * @file
 * Unit tests for the experiment registry: the built-in catalogue must
 * expose every ported bench and example experiment, selection by name
 * and label must resolve, and every spec must be well-formed.
 */

#include <gtest/gtest.h>

#include "runner/registry.hh"

namespace harp::runner {
namespace {

TEST(Registry, BuiltinCatalogueIsComplete)
{
    const Registry &registry = builtinRegistry();
    // 15 bench binaries (incl. the BCH t-sweep) + 4 former examples +
    // the engine perf experiment + 2 fleet experiments.
    EXPECT_EQ(registry.size(), 22u);
    EXPECT_EQ(registry.withLabel("bench").size(), 16u);
    EXPECT_EQ(registry.withLabel("example").size(), 4u);
    EXPECT_EQ(registry.withLabel("figure").size(), 7u);
    EXPECT_EQ(registry.withLabel("table").size(), 2u);
    EXPECT_EQ(registry.withLabel("ablation").size(), 2u);
    EXPECT_EQ(registry.withLabel("extension").size(), 6u);
    EXPECT_EQ(registry.withLabel("perf").size(), 1u);
    EXPECT_EQ(registry.withLabel("fleet").size(), 2u);

    const char *expected[] = {
        "ablation_code_length",
        "ablation_data_patterns",
        "bch_t_sweep",
        "beer_reverse_engineering",
        "extension_dec_on_die_ecc",
        "extension_low_probability",
        "extension_secondary_interleaving",
        "fig02_wasted_storage",
        "fig04_postcorrection_probability",
        "fig06_direct_coverage",
        "fig07_bootstrapping",
        "fig08_indirect_coverage",
        "fig09_secondary_ecc",
        "fig10_case_study",
        "fleet_policy_sweep",
        "fleet_population_stats",
        "perf_engine_throughput",
        "quickstart",
        "retention_case_study",
        "secondary_ecc_sizing",
        "table01_repair_survey",
        "table02_amplification",
    };
    for (const char *name : expected)
        EXPECT_NE(registry.find(name), nullptr) << name;
    EXPECT_EQ(registry.find("no_such_experiment"), nullptr);
}

TEST(Registry, SpecsAreWellFormed)
{
    for (const ExperimentSpec *spec : builtinRegistry().all()) {
        EXPECT_FALSE(spec->description.empty()) << spec->name;
        EXPECT_FALSE(spec->labels.empty()) << spec->name;
        EXPECT_FALSE(spec->schema.empty()) << spec->name;
        EXPECT_TRUE(static_cast<bool>(spec->run)) << spec->name;
        EXPECT_GE(spec->grid.numPoints(), 1u) << spec->name;
        // Axis names must not collide with tunable names: both resolve
        // through the same RunContext lookup.
        for (const ParamAxis &axis : spec->grid.axes())
            for (const TunableSpec &tunable : spec->tunables)
                EXPECT_NE(axis.name, tunable.name) << spec->name;
    }
}

TEST(Registry, AllIsSortedByName)
{
    const auto all = builtinRegistry().all();
    for (std::size_t i = 1; i < all.size(); ++i)
        EXPECT_LT(all[i - 1]->name, all[i]->name);
}

TEST(Registry, SelectByNameAndLabel)
{
    const Registry &registry = builtinRegistry();
    const auto by_name =
        registry.select({"quickstart", "fig02_wasted_storage"});
    ASSERT_EQ(by_name.size(), 2u);
    EXPECT_EQ(by_name[0]->name, "quickstart");
    EXPECT_EQ(by_name[1]->name, "fig02_wasted_storage");

    const auto tables = registry.select({"label:table"});
    ASSERT_EQ(tables.size(), 2u);
    EXPECT_EQ(tables[0]->name, "table01_repair_survey");

    // Duplicates collapse.
    const auto dedup =
        registry.select({"quickstart", "label:example", "quickstart"});
    EXPECT_EQ(dedup.size(), 4u);

    EXPECT_THROW(registry.select({"nope"}), std::invalid_argument);
    EXPECT_THROW(registry.select({"label:nope"}), std::invalid_argument);
}

TEST(Registry, RejectsDuplicatesAndMalformedSpecs)
{
    Registry registry;
    ExperimentSpec spec;
    spec.name = "x";
    spec.description = "d";
    spec.schema = {{"v", JsonType::Int, ""}};
    spec.run = [](const RunContext &) { return JsonValue::object(); };
    registry.add(spec);
    EXPECT_THROW(registry.add(spec), std::invalid_argument);

    ExperimentSpec unnamed = spec;
    unnamed.name.clear();
    EXPECT_THROW(registry.add(unnamed), std::invalid_argument);

    ExperimentSpec runless;
    runless.name = "y";
    EXPECT_THROW(registry.add(runless), std::invalid_argument);
}

TEST(SchemaValidation, AcceptsMatchingAndRejectsMismatch)
{
    const std::vector<FieldSpec> schema = {
        {"count", JsonType::Int, ""},
        {"rate", JsonType::Double, ""},
        {"name", JsonType::String, ""},
    };
    JsonValue ok = JsonValue::object();
    ok.set("count", JsonValue(3));
    ok.set("rate", JsonValue(0.5));
    ok.set("name", JsonValue("x"));
    EXPECT_FALSE(validateSchema(schema, ok).has_value());

    // Int satisfies Double; null satisfies anything.
    JsonValue relaxed = ok;
    relaxed.set("rate", JsonValue(2));
    relaxed.set("name", JsonValue());
    EXPECT_FALSE(validateSchema(schema, relaxed).has_value());

    JsonValue missing = JsonValue::object();
    missing.set("count", JsonValue(3));
    EXPECT_TRUE(validateSchema(schema, missing).has_value());

    JsonValue wrong_type = ok;
    wrong_type.set("count", JsonValue("three"));
    EXPECT_TRUE(validateSchema(schema, wrong_type).has_value());

    JsonValue extra = ok;
    extra.set("undeclared", JsonValue(1));
    EXPECT_TRUE(validateSchema(schema, extra).has_value());

    EXPECT_TRUE(validateSchema(schema, JsonValue(5)).has_value());
}

TEST(SchemaValidation, SchemaJsonRoundTrips)
{
    for (const ExperimentSpec *spec : builtinRegistry().all()) {
        const JsonValue schema = schemaToJson(spec->schema);
        EXPECT_EQ(JsonValue::parse(schema.dump()), schema) << spec->name;
        EXPECT_EQ(schema.size(), spec->schema.size()) << spec->name;
    }
}

} // namespace
} // namespace harp::runner
