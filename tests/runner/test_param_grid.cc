/**
 * @file
 * Unit tests for parameter values, points and grid expansion: the
 * row-major point order is part of the campaign output contract, so it
 * is pinned here.
 */

#include <gtest/gtest.h>

#include "runner/param.hh"

namespace harp::runner {
namespace {

TEST(ParamValue, TypedAccessAndRendering)
{
    EXPECT_EQ(ParamValue(std::int64_t{5}).asInt(), 5);
    EXPECT_DOUBLE_EQ(ParamValue(0.25).asDouble(), 0.25);
    EXPECT_DOUBLE_EQ(ParamValue(std::int64_t{4}).asDouble(), 4.0);
    EXPECT_EQ(ParamValue("random").asString(), "random");
    EXPECT_TRUE(ParamValue(true).asBool());
    EXPECT_THROW(ParamValue("x").asInt(), std::logic_error);

    EXPECT_EQ(ParamValue(std::int64_t{128}).toString(), "128");
    EXPECT_EQ(ParamValue(0.5).toString(), "0.5");
    EXPECT_EQ(ParamValue("charged").toString(), "charged");
}

TEST(ParamValue, ParseSameType)
{
    EXPECT_EQ(ParamValue(std::int64_t{1}).parseSameType("42").asInt(), 42);
    EXPECT_DOUBLE_EQ(ParamValue(1.0).parseSameType("0.75").asDouble(),
                     0.75);
    EXPECT_EQ(ParamValue("a").parseSameType("b").asString(), "b");
    EXPECT_TRUE(ParamValue(false).parseSameType("true").asBool());
    EXPECT_THROW(ParamValue(std::int64_t{1}).parseSameType("abc"),
                 std::invalid_argument);
    EXPECT_THROW(ParamValue(1.0).parseSameType("wat"),
                 std::invalid_argument);
}

ParamGrid
sampleGrid()
{
    return ParamGrid({
        {"prob", {ParamValue(0.25), ParamValue(0.5)}},
        {"pre_errors",
         {ParamValue(std::int64_t{2}), ParamValue(std::int64_t{3}),
          ParamValue(std::int64_t{4})}},
    });
}

TEST(ParamGrid, ExpandsRowMajorFirstAxisSlowest)
{
    const ParamGrid grid = sampleGrid();
    EXPECT_EQ(grid.numPoints(), 6u);
    const std::vector<ParamPoint> points = grid.expand();
    ASSERT_EQ(points.size(), 6u);
    EXPECT_EQ(points[0].toString(), "prob=0.25 pre_errors=2");
    EXPECT_EQ(points[1].toString(), "prob=0.25 pre_errors=3");
    EXPECT_EQ(points[2].toString(), "prob=0.25 pre_errors=4");
    EXPECT_EQ(points[3].toString(), "prob=0.5 pre_errors=2");
    EXPECT_EQ(points[5].toString(), "prob=0.5 pre_errors=4");
}

TEST(ParamGrid, EmptyGridExpandsToOneEmptyPoint)
{
    const ParamGrid grid;
    EXPECT_EQ(grid.numPoints(), 1u);
    const std::vector<ParamPoint> points = grid.expand();
    ASSERT_EQ(points.size(), 1u);
    EXPECT_TRUE(points[0].entries().empty());
    EXPECT_EQ(points[0].toJson().dump(), "{}");
}

TEST(ParamGrid, CollapseAxisFromText)
{
    const ParamGrid collapsed = sampleGrid().collapsed("prob", "0.75");
    EXPECT_EQ(collapsed.numPoints(), 3u);
    const std::vector<ParamPoint> points = collapsed.expand();
    for (const ParamPoint &p : points)
        EXPECT_DOUBLE_EQ(p.find("prob")->asDouble(), 0.75);
    // The collapsed value parses with the axis's type, not as a string.
    EXPECT_EQ(points[0].find("prob")->type(), ParamValue::Type::Double);

    EXPECT_THROW(sampleGrid().collapsed("nope", "1"),
                 std::invalid_argument);
    EXPECT_THROW(sampleGrid().collapsed("pre_errors", "many"),
                 std::invalid_argument);
}

TEST(ParamPoint, LookupAndJson)
{
    ParamPoint point;
    point.add("prob", ParamValue(0.5));
    point.add("pattern", ParamValue("random"));
    ASSERT_NE(point.find("prob"), nullptr);
    EXPECT_EQ(point.find("missing"), nullptr);
    EXPECT_EQ(point.toJson().dump(),
              R"({"prob":0.5,"pattern":"random"})");
}

} // namespace
} // namespace harp::runner
