/**
 * @file
 * Unit tests for the runner's JSON document model: construction, typed
 * access, ordered-object semantics, serialization stability and
 * parse/dump round trips.
 */

#include <gtest/gtest.h>

#include "runner/json.hh"

namespace harp::runner {
namespace {

TEST(Json, TypesAndAccessors)
{
    EXPECT_TRUE(JsonValue().isNull());
    EXPECT_EQ(JsonValue(true).asBool(), true);
    EXPECT_EQ(JsonValue(std::int64_t{-7}).asInt(), -7);
    EXPECT_DOUBLE_EQ(JsonValue(1.5).asDouble(), 1.5);
    EXPECT_EQ(JsonValue("hi").asString(), "hi");
    // Int satisfies asDouble (metric fields holding integral values).
    EXPECT_DOUBLE_EQ(JsonValue(std::int64_t{3}).asDouble(), 3.0);
    EXPECT_THROW(JsonValue(1.5).asInt(), std::logic_error);
    EXPECT_THROW(JsonValue("x").asBool(), std::logic_error);
}

TEST(Json, ObjectPreservesInsertionOrder)
{
    JsonValue obj = JsonValue::object();
    obj.set("zebra", JsonValue(1));
    obj.set("alpha", JsonValue(2));
    obj.set("mid", JsonValue(3));
    EXPECT_EQ(obj.dump(), R"({"zebra":1,"alpha":2,"mid":3})");
    // Replacement keeps the original position.
    obj.set("alpha", JsonValue(9));
    EXPECT_EQ(obj.dump(), R"({"zebra":1,"alpha":9,"mid":3})");
    ASSERT_NE(obj.find("mid"), nullptr);
    EXPECT_EQ(obj.find("mid")->asInt(), 3);
    EXPECT_EQ(obj.find("absent"), nullptr);
}

TEST(Json, DumpEscapesStrings)
{
    JsonValue obj = JsonValue::object();
    obj.set("s", JsonValue("a\"b\\c\nd\te"));
    EXPECT_EQ(obj.dump(), "{\"s\":\"a\\\"b\\\\c\\nd\\te\"}");
}

TEST(Json, NumberFormattingIsShortestRoundTrip)
{
    EXPECT_EQ(JsonValue(0.5).dump(), "0.5");
    EXPECT_EQ(JsonValue(1e-07).dump(), "1e-07");
    EXPECT_EQ(JsonValue(std::int64_t{128}).dump(), "128");
    // Non-finite doubles cannot be represented in JSON.
    EXPECT_EQ(jsonNumberToString(
                  std::numeric_limits<double>::infinity()),
              "null");
}

TEST(Json, ParseDumpRoundTrip)
{
    const std::string text =
        R"({"a":1,"b":[true,false,null],"c":{"x":0.25,"y":"s"},"d":-3})";
    const JsonValue parsed = JsonValue::parse(text);
    EXPECT_EQ(parsed.dump(), text);
    // Round trip again through the parsed form.
    EXPECT_EQ(JsonValue::parse(parsed.dump()), parsed);
}

TEST(Json, ParseDistinguishesIntFromDouble)
{
    const JsonValue v = JsonValue::parse(R"([1,1.0,1e2])");
    EXPECT_EQ(v.at(0).type(), JsonType::Int);
    EXPECT_EQ(v.at(1).type(), JsonType::Double);
    EXPECT_EQ(v.at(2).type(), JsonType::Double);
}

TEST(Json, ParseRejectsMalformedInput)
{
    EXPECT_THROW(JsonValue::parse(""), std::runtime_error);
    EXPECT_THROW(JsonValue::parse("{"), std::runtime_error);
    EXPECT_THROW(JsonValue::parse("[1,]"), std::runtime_error);
    EXPECT_THROW(JsonValue::parse("tru"), std::runtime_error);
    EXPECT_THROW(JsonValue::parse("{} extra"), std::runtime_error);
    EXPECT_THROW(JsonValue::parse("\"unterminated"), std::runtime_error);
}

TEST(Json, PrettyPrintNests)
{
    JsonValue obj = JsonValue::object();
    JsonValue arr = JsonValue::array();
    arr.push(JsonValue(1));
    obj.set("a", std::move(arr));
    EXPECT_EQ(obj.dump(2), "{\n  \"a\": [\n    1\n  ]\n}");
    // Pretty and compact forms parse to the same document.
    EXPECT_EQ(JsonValue::parse(obj.dump(2)), obj);
}

TEST(Json, ParseUnicodeEscape)
{
    // U+00E9 decodes to its two-byte UTF-8 form.
    const JsonValue v = JsonValue::parse("\"aA\\u00e9A\"");
    EXPECT_EQ(v.asString(), "aA\xC3\xA9"
                            "A");
}

} // namespace
} // namespace harp::runner
