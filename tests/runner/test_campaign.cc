/**
 * @file
 * Integration tests for the campaign driver: JSONL/summary emission,
 * schema validity of every emitted metrics object, axis collapsing from
 * overrides, repeats, and the determinism contract — a seed-fixed
 * campaign produces identical result hashes across 1/4/hardware-thread
 * sharding.
 */

#include <gtest/gtest.h>

#include <algorithm>
#include <array>
#include <atomic>
#include <filesystem>
#include <fstream>
#include <map>
#include <sstream>
#include <unistd.h>

#include "common/thread_pool.hh"
#include "runner/campaign.hh"
#include "runner/registry.hh"
#include "runner/session.hh"

namespace harp::runner {
namespace {

namespace fs = std::filesystem;

/** Self-cleaning output directory under the system temp dir. */
class TempDir
{
  public:
    explicit TempDir(const std::string &tag)
        : path_(fs::temp_directory_path() /
                ("harp_campaign_" + tag + "_" +
                 std::to_string(::getpid())))
    {
        fs::remove_all(path_);
    }
    ~TempDir() { fs::remove_all(path_); }

    std::string str() const { return path_.string(); }
    fs::path path() const { return path_; }

  private:
    fs::path path_;
};

std::string
readFile(const fs::path &path)
{
    std::ifstream in(path, std::ios::binary);
    EXPECT_TRUE(in.good()) << path;
    std::ostringstream out;
    out << in.rdbuf();
    return out.str();
}

/** Cheap scale-down overrides so integration runs stay fast. */
std::map<std::string, std::string>
fastOverrides()
{
    return {{"blocks", "200"}, {"trials", "20"}, {"rounds", "8"}};
}

CampaignSummary
runFast(const std::vector<std::string> &selectors,
        const CampaignOptions &base, std::ostream &log)
{
    const auto specs = builtinRegistry().select(selectors);
    return runCampaign(specs, base, log);
}

TEST(Campaign, EmitsSchemaValidJsonlInGridOrder)
{
    const TempDir dir("jsonl");
    CampaignOptions options;
    options.seed = 1;
    options.threads = 1;
    options.outDir = dir.str();
    options.overrides = fastOverrides();

    std::ostringstream log;
    const CampaignSummary summary =
        runFast({"table02_amplification"}, options, log);
    ASSERT_EQ(summary.experiments.size(), 1u);
    const ExperimentRunSummary &exp = summary.experiments[0];
    EXPECT_EQ(exp.points, 7u);

    const ExperimentSpec *spec =
        builtinRegistry().find("table02_amplification");
    ASSERT_NE(spec, nullptr);
    const auto points = spec->grid.expand();

    std::istringstream jsonl(readFile(exp.jsonlPath));
    std::string line;
    std::size_t index = 0;
    while (std::getline(jsonl, line)) {
        const JsonValue doc = JsonValue::parse(line);
        ASSERT_NE(doc.find("experiment"), nullptr);
        EXPECT_EQ(doc.find("experiment")->asString(),
                  "table02_amplification");
        // Lines appear in grid-expansion order.
        EXPECT_EQ(doc.find("point")->asInt(),
                  static_cast<std::int64_t>(index));
        EXPECT_EQ(*doc.find("params"), points[index].toJson());
        // Every metrics object round-trips schema-valid through text.
        const auto error = validateSchema(spec->schema,
                                          *doc.find("metrics"));
        EXPECT_FALSE(error.has_value()) << *error;
        ++index;
    }
    EXPECT_EQ(index, 7u);
}

TEST(Campaign, SummaryJsonParsesAndMatchesReturnValue)
{
    const TempDir dir("summary");
    CampaignOptions options;
    options.seed = 3;
    options.threads = 2;
    options.outDir = dir.str();
    options.overrides = fastOverrides();

    std::ostringstream log;
    const CampaignSummary summary =
        runFast({"quickstart", "table01_repair_survey"}, options, log);

    const JsonValue doc =
        JsonValue::parse(readFile(dir.path() / "summary.json"));
    ASSERT_NE(doc.find("experiments"), nullptr);
    ASSERT_EQ(doc.find("experiments")->size(), 2u);
    for (std::size_t i = 0; i < 2; ++i) {
        const JsonValue &exp = doc.find("experiments")->at(i);
        EXPECT_EQ(exp.find("name")->asString(),
                  summary.experiments[i].name);
        EXPECT_EQ(exp.find("result_hash")->asString(),
                  formatResultHash(summary.experiments[i].resultHash));
        EXPECT_EQ(
            exp.find("points")->asInt(),
            static_cast<std::int64_t>(summary.experiments[i].points));
        // Timing fields exist (values are machine-dependent).
        EXPECT_NE(exp.find("wall_seconds"), nullptr);
        EXPECT_NE(exp.find("job_seconds"), nullptr);
    }
    EXPECT_EQ(doc.find("campaign")->find("seed")->asString(), "3");
}

TEST(Campaign, OverridesCollapseAxesAndScaleTunables)
{
    const TempDir dir("collapse");
    CampaignOptions options;
    options.seed = 1;
    options.threads = 1;
    options.outDir = dir.str();
    options.overrides = {{"rber", "0.01"}, {"blocks", "100"}};

    std::ostringstream log;
    const CampaignSummary summary =
        runFast({"fig02_wasted_storage"}, options, log);
    // The rber axis (14 values) collapses to 1; granularity (5) stays.
    ASSERT_EQ(summary.experiments.size(), 1u);
    EXPECT_EQ(summary.experiments[0].points, 5u);

    std::istringstream jsonl(
        readFile(summary.experiments[0].jsonlPath));
    std::string line;
    while (std::getline(jsonl, line)) {
        const JsonValue doc = JsonValue::parse(line);
        EXPECT_DOUBLE_EQ(
            doc.find("params")->find("rber")->asDouble(), 0.01);
    }
}

TEST(Campaign, RepeatsGetDistinctSeeds)
{
    const TempDir dir("repeat");
    CampaignOptions options;
    options.seed = 1;
    options.threads = 1;
    options.repeat = 3;
    options.outDir = dir.str();
    options.overrides = fastOverrides();

    std::ostringstream log;
    const CampaignSummary summary = runFast({"quickstart"}, options, log);
    EXPECT_EQ(summary.experiments[0].points, 1u);
    EXPECT_EQ(summary.experiments[0].repeats, 3u);

    std::istringstream jsonl(
        readFile(summary.experiments[0].jsonlPath));
    std::string line;
    std::vector<std::string> seeds;
    std::size_t repeat_index = 0;
    while (std::getline(jsonl, line)) {
        const JsonValue doc = JsonValue::parse(line);
        EXPECT_EQ(doc.find("repeat")->asInt(),
                  static_cast<std::int64_t>(repeat_index++));
        seeds.push_back(doc.find("seed")->asString());
    }
    ASSERT_EQ(seeds.size(), 3u);
    EXPECT_NE(seeds[0], seeds[1]);
    EXPECT_NE(seeds[1], seeds[2]);
}

TEST(Campaign, SchemaViolationSurfacesAsError)
{
    ExperimentSpec bad;
    bad.name = "bad_spec";
    bad.description = "emits an undeclared field";
    bad.labels = {"test"};
    bad.schema = {{"declared", JsonType::Int, ""}};
    bad.run = [](const RunContext &) {
        JsonValue metrics = JsonValue::object();
        metrics.set("declared", JsonValue(1));
        metrics.set("surprise", JsonValue(2));
        return metrics;
    };
    Registry registry;
    registry.add(bad);

    const TempDir dir("badspec");
    CampaignOptions options;
    options.outDir = dir.str();
    std::ostringstream log;
    EXPECT_THROW(
        runCampaign(registry.select({"bad_spec"}), options, log),
        std::runtime_error);
}

/**
 * The determinism contract behind the perf-trajectory loop: a
 * seed-fixed campaign emits byte-identical JSONL (hence equal result
 * hashes) when sharded over 1, 4 or hardware-concurrency threads.
 */
TEST(CampaignDeterminism, SeedFixedHashesAgreeAcrossShardCounts)
{
    // Multi-point experiments from three different spec families keep
    // this representative while staying fast.
    const std::vector<std::string> selectors = {
        "fig02_wasted_storage", "table02_amplification", "quickstart"};

    std::vector<CampaignSummary> runs;
    std::vector<std::string> jsonl_bytes;
    for (const std::size_t threads : {std::size_t{1}, std::size_t{4},
                                      std::size_t{0} /* hardware */}) {
        const TempDir dir("shard" + std::to_string(threads));
        CampaignOptions options;
        options.seed = 7;
        options.threads = threads;
        options.outDir = dir.str();
        options.overrides = fastOverrides();
        std::ostringstream log;
        runs.push_back(runFast(selectors, options, log));
        std::string bytes;
        for (const ExperimentRunSummary &exp : runs.back().experiments)
            bytes += readFile(exp.jsonlPath);
        jsonl_bytes.push_back(std::move(bytes));
    }

    ASSERT_EQ(runs.size(), 3u);
    for (std::size_t r = 1; r < runs.size(); ++r) {
        ASSERT_EQ(runs[r].experiments.size(),
                  runs[0].experiments.size());
        for (std::size_t e = 0; e < runs[0].experiments.size(); ++e) {
            EXPECT_EQ(runs[r].experiments[e].resultHash,
                      runs[0].experiments[e].resultHash)
                << runs[0].experiments[e].name << " with "
                << runs[r].threads << " threads";
        }
        EXPECT_EQ(jsonl_bytes[r], jsonl_bytes[0]);
    }
}

/**
 * The engine × sharding contract behind `--engine`/`--threads`: every
 * engine (scalar, sliced64, sliced256) at every shard count (1, 4,
 * hardware) must emit byte-identical JSONL (equal result hashes) for a
 * fixed seed over the coverage and case-study specs. wordsPerCode = 70
 * exercises a ragged sliced block (64 + 6 lanes at W=1; 70 lanes of
 * one 256-lane block at W=4), and the multi-thread runs drive the
 * intra-job sharding + OrderedMerger path.
 */
TEST(CampaignDeterminism, EngineAndShardOverridesHashIdentically)
{
    std::vector<CampaignSummary> runs;
    std::vector<std::string> jsonl_bytes;
    std::vector<std::string> tags;
    for (const char *engine : {"scalar", "sliced64", "sliced256"}) {
        for (const std::size_t threads :
             {std::size_t{1}, std::size_t{4}, std::size_t{0} /* hw */}) {
            const std::string tag = std::string(engine) + "_t" +
                                    std::to_string(threads);
            const TempDir dir("engine_" + tag);
            CampaignOptions options;
            options.seed = 11;
            options.threads = threads;
            options.outDir = dir.str();
            options.overrides = {{"engine", engine}, {"codes", "1"},
                                 {"words", "70"},    {"rounds", "6"},
                                 {"prob", "0.5"},    {"pre_errors", "3"},
                                 {"samples", "5"},   {"max_cells", "2"}};
            std::ostringstream log;
            runs.push_back(
                runFast({"fig06_direct_coverage", "fig10_case_study"},
                        options, log));
            std::string bytes;
            for (const ExperimentRunSummary &exp :
                 runs.back().experiments)
                bytes += readFile(exp.jsonlPath);
            jsonl_bytes.push_back(std::move(bytes));
            tags.push_back(tag);
        }
    }
    ASSERT_EQ(runs.size(), 9u);
    for (std::size_t r = 1; r < runs.size(); ++r) {
        ASSERT_EQ(runs[r].experiments.size(),
                  runs[0].experiments.size());
        for (std::size_t e = 0; e < runs[0].experiments.size(); ++e)
            EXPECT_EQ(runs[r].experiments[e].resultHash,
                      runs[0].experiments[e].resultHash)
                << runs[0].experiments[e].name << ": " << tags[r]
                << " vs " << tags[0];
        EXPECT_EQ(jsonl_bytes[r], jsonl_bytes[0])
            << tags[r] << " vs " << tags[0];
    }
}

/**
 * The BCH extension sweep under `--engine`: scalar, sliced64 and
 * sliced256 runs of bch_t_sweep must emit byte-identical JSONL for a
 * fixed seed — the memoized sliced BCH datapath is exactly equivalent
 * to the scalar Berlekamp-Massey decoder at every width. words = 70
 * exercises a ragged sliced block (64 + 6 lanes).
 */
TEST(CampaignDeterminism, BchTSweepEngineOverridesHashIdentically)
{
    std::vector<std::uint64_t> hashes;
    std::vector<std::string> jsonl_bytes;
    for (const char *engine : {"scalar", "sliced64", "sliced256"}) {
        const TempDir dir(std::string("bch_engine_") + engine);
        CampaignOptions options;
        options.seed = 13;
        options.threads = 2;
        options.outDir = dir.str();
        options.overrides = {{"engine", engine},
                             {"words", "70"},
                             {"rounds", "6"},
                             {"pre_errors", "3"}};
        std::ostringstream log;
        const CampaignSummary summary =
            runFast({"bch_t_sweep"}, options, log);
        ASSERT_EQ(summary.experiments.size(), 1u);
        hashes.push_back(summary.experiments[0].resultHash);
        jsonl_bytes.push_back(
            readFile(summary.experiments[0].jsonlPath));
    }
    ASSERT_EQ(hashes.size(), 3u);
    EXPECT_EQ(hashes[0], hashes[1]);
    EXPECT_EQ(hashes[0], hashes[2]);
    EXPECT_EQ(jsonl_bytes[0], jsonl_bytes[1]);
    EXPECT_EQ(jsonl_bytes[0], jsonl_bytes[2]);
}

/** The longest-first scheduling heuristic: scale-like integer params
 *  multiply into the cost key, non-integers are ignored. */
TEST(Campaign, JobCostKeyOrdersHeavyPointsFirst)
{
    ParamPoint light;
    light.add("on_die_t", ParamValue(std::size_t{1}));
    light.add("pre_errors", ParamValue(std::size_t{2}));
    light.add("prob", ParamValue(0.25));
    ParamPoint heavy;
    heavy.add("on_die_t", ParamValue(std::size_t{3}));
    heavy.add("pre_errors", ParamValue(std::size_t{5}));
    heavy.add("prob", ParamValue(0.25));

    EXPECT_DOUBLE_EQ(jobCostKey(light), 2.0);
    EXPECT_DOUBLE_EQ(jobCostKey(heavy), 15.0);
    EXPECT_GT(jobCostKey(heavy), jobCostKey(light));

    // Empty points (no-sweep specs) cost 1.
    EXPECT_DOUBLE_EQ(jobCostKey(ParamPoint()), 1.0);
}

/** The perf experiment runs end-to-end through the campaign driver and
 *  reports matching profiles across its three engine measurements. */
TEST(Campaign, PerfEngineThroughputSmoke)
{
    const TempDir dir("perf");
    CampaignOptions options;
    options.seed = 1;
    options.threads = 1;
    options.outDir = dir.str();
    options.overrides = {{"codes", "1"}, {"words", "8"}, {"rounds", "8"},
                         {"reps", "1"}};

    std::ostringstream log;
    const CampaignSummary summary =
        runFast({"perf_engine_throughput"}, options, log);
    ASSERT_EQ(summary.experiments.size(), 1u);

    std::istringstream jsonl(
        readFile(summary.experiments[0].jsonlPath));
    std::string line;
    // Point 0: the Hamming workload with the Fig. 6 profiler set.
    ASSERT_TRUE(std::getline(jsonl, line));
    const JsonValue doc = JsonValue::parse(line);
    const JsonValue *metrics = doc.find("metrics");
    ASSERT_NE(metrics, nullptr);
    ASSERT_NE(metrics->find("profiles_match"), nullptr);
    ASSERT_NE(metrics->find("speedup"), nullptr);
    ASSERT_NE(metrics->find("profiler_rounds"), nullptr);
    EXPECT_TRUE(metrics->find("profiles_match")->asBool());
    EXPECT_GT(metrics->find("speedup")->asDouble(), 0.0);
    // The third (wide-lane) measurement reports alongside the first two
    // and participates in the profiles_match checksum equality.
    ASSERT_NE(metrics->find("speedup_256"), nullptr);
    EXPECT_GT(metrics->find("speedup_256")->asDouble(), 0.0);
    EXPECT_GT(metrics->find("sliced256_rounds_per_sec")->asDouble(), 0.0);
    EXPECT_EQ(metrics->find("profiler_rounds")->asInt(), 8 * 8 * 4);
    EXPECT_TRUE(metrics->find("memo_hit_rate")->isNull());

    // Point 1: the BCH workload (Naive + HARP-U) with memo statistics
    // from the sliced syndrome-decode table.
    ASSERT_TRUE(std::getline(jsonl, line));
    const JsonValue bch_doc = JsonValue::parse(line);
    const JsonValue *bch_metrics = bch_doc.find("metrics");
    ASSERT_NE(bch_metrics, nullptr);
    EXPECT_EQ(bch_doc.find("params")->find("workload")->asString(),
              "bch");
    EXPECT_TRUE(bch_metrics->find("profiles_match")->asBool());
    EXPECT_EQ(bch_metrics->find("profiler_rounds")->asInt(), 8 * 8 * 2);
    EXPECT_GE(bch_metrics->find("memo_hits")->asInt(), 0);
    EXPECT_GT(bch_metrics->find("memo_misses")->asInt(), 0);
}

/** Changing the seed must change the results (the hash actually hashes
 *  content, not structure). */
TEST(CampaignDeterminism, DifferentSeedsProduceDifferentHashes)
{
    std::vector<std::uint64_t> hashes;
    for (const std::uint64_t seed : {1u, 2u}) {
        const TempDir dir("seed" + std::to_string(seed));
        CampaignOptions options;
        options.seed = seed;
        options.threads = 1;
        options.outDir = dir.str();
        options.overrides = fastOverrides();
        std::ostringstream log;
        const CampaignSummary summary =
            runFast({"table02_amplification"}, options, log);
        hashes.push_back(summary.experiments[0].resultHash);
    }
    EXPECT_NE(hashes[0], hashes[1]);
}

/** Collects the ordered line stream for byte comparisons. */
class CollectLines : public ResultSink
{
  public:
    void onResult(std::size_t, const std::string &line, bool) override
    {
        bytes += line + "\n";
    }
    std::string bytes;
};

/**
 * Satellite contract: the intra-job thread allowance is recomputed per
 * scheduling wave, so when the trailing wave is narrower than the pool
 * the leftover capacity flows into the remaining jobs — and the output
 * bytes are unchanged by any of it.
 */
TEST(CampaignDeterminism, TrailingWaveWidensIntraJobThreads)
{
    // 5 equal-cost jobs on a 4-thread pool: wave 1 runs jobs 0..3 with
    // a 1-thread allowance, wave 2 runs job 4 alone with all 4.
    constexpr std::size_t kJobs = 5;
    constexpr std::size_t kPool = 4;
    ExperimentSpec spec;
    spec.name = "wave_witness";
    spec.description = "records its per-job thread allowance";
    ParamAxis axis;
    axis.name = "p";
    for (std::size_t i = 0; i < kJobs; ++i)
        axis.values.push_back(ParamValue(std::int64_t(3)));
    spec.grid = ParamGrid({axis});
    spec.schema = {{"v", JsonType::Int, "seed echo"}};
    SessionOptions options;
    options.seed = 123;

    // Witness channel: map each job's (unique, deterministic) seed
    // back to its index so run() can record the allowance it was
    // handed without touching the metrics.
    std::map<std::uint64_t, std::size_t> seed_to_job;
    {
        CampaignSession probe(spec, options);
        for (std::size_t j = 0; j < probe.totalJobs(); ++j)
            seed_to_job[probe.jobSeedAt(j)] = j;
        ASSERT_EQ(seed_to_job.size(), kJobs);
    }
    std::array<std::atomic<std::size_t>, kJobs> seen{};
    spec.run = [&seen, &seed_to_job](const RunContext &ctx) {
        // Metrics stay allowance-independent — which is exactly what
        // the byte-identity half of the test checks.
        seen[seed_to_job.at(ctx.seed())].store(ctx.threads());
        JsonValue metrics = JsonValue::object();
        metrics.set("v", JsonValue(static_cast<std::int64_t>(
                             ctx.seed() % 97)));
        return metrics;
    };

    common::ThreadPool pool(kPool);
    CollectLines pooled;
    {
        CampaignSession session(spec, options);
        const auto outcome =
            session.run(&pool, kPool, pooled);
        EXPECT_EQ(outcome.freshJobs, kJobs);
    }
    std::size_t wide = 0;
    std::size_t narrow = 0;
    for (const auto &slot : seen) {
        if (slot.load() == kPool)
            ++wide;
        else if (slot.load() == 1)
            ++narrow;
    }
    // Exactly the trailing wave's lone job got the whole pool.
    EXPECT_EQ(narrow, kJobs - 1);
    EXPECT_EQ(wide, 1u);

    // And none of it shows in the bytes: inline single-thread run
    // (allowance 1 everywhere) produces the identical stream.
    CollectLines inline_run;
    {
        CampaignSession session(spec, options);
        session.run(nullptr, 1, inline_run);
    }
    EXPECT_EQ(pooled.bytes, inline_run.bytes);
}

/** Records the full (job, line, fresh) stream. */
class RecordStream : public ResultSink
{
  public:
    struct Entry
    {
        std::size_t job;
        std::string line;
        bool fresh;
    };
    void onResult(std::size_t job, const std::string &line,
                  bool fresh) override
    {
        entries.push_back({job, line, fresh});
    }
    std::string bytes() const
    {
        std::string out;
        for (const Entry &e : entries)
            out += e.line + "\n";
        return out;
    }
    std::vector<Entry> entries;
};

/**
 * Satellite contract: checkpoint-restored jobs re-enter the ordered
 * stream without being recomputed, and the wave scheduler plans only
 * over the remaining fresh jobs — including the trailing-wave widening
 * — while the merged output stays byte-identical to an all-fresh run.
 */
TEST(CampaignDeterminism, RestoredJobsInjectIntoOrderedStream)
{
    // 13 equal-cost jobs, 4 restored -> 9 fresh on a 4-thread pool:
    // waves of 4, 4 and 1, the lone trailing job widened to the pool.
    constexpr std::size_t kJobs = 13;
    constexpr std::size_t kPool = 4;
    const std::vector<std::size_t> kRestored{0, 3, 7, 12};
    ExperimentSpec spec;
    spec.name = "restore_witness";
    spec.description = "records which jobs actually run";
    ParamAxis axis;
    axis.name = "p";
    for (std::size_t i = 0; i < kJobs; ++i)
        axis.values.push_back(ParamValue(std::int64_t(1)));
    spec.grid = ParamGrid({axis});
    spec.schema = {{"v", JsonType::Int, "seed echo"}};
    SessionOptions options;
    options.seed = 321;

    std::map<std::uint64_t, std::size_t> seed_to_job;
    {
        CampaignSession probe(spec, options);
        for (std::size_t j = 0; j < probe.totalJobs(); ++j)
            seed_to_job[probe.jobSeedAt(j)] = j;
        ASSERT_EQ(seed_to_job.size(), kJobs);
    }
    std::array<std::atomic<std::size_t>, kJobs> seen{};
    spec.run = [&seen, &seed_to_job](const RunContext &ctx) {
        seen[seed_to_job.at(ctx.seed())].store(ctx.threads());
        JsonValue metrics = JsonValue::object();
        metrics.set("v", JsonValue(static_cast<std::int64_t>(
                             ctx.seed() % 89)));
        return metrics;
    };

    // Reference: everything fresh, inline.
    RecordStream all_fresh;
    std::uint64_t fresh_hash = 0;
    {
        CampaignSession session(spec, options);
        fresh_hash = session.run(nullptr, 1, all_fresh).resultHash;
        ASSERT_EQ(all_fresh.entries.size(), kJobs);
    }
    for (auto &slot : seen)
        slot.store(0);

    // Restored session: inject the checkpoint lines, then run pooled.
    CampaignSession session(spec, options);
    for (const std::size_t job : kRestored)
        EXPECT_TRUE(session.restore(job, all_fresh.entries[job].line));
    // Out-of-range and double restores are rejected.
    EXPECT_FALSE(session.restore(kJobs, "{}"));
    EXPECT_FALSE(session.restore(kRestored[0], "{}"));
    EXPECT_EQ(session.restoredJobs(), kRestored.size());

    common::ThreadPool pool(kPool);
    RecordStream resumed;
    const auto outcome = session.run(&pool, kPool, resumed);
    EXPECT_EQ(outcome.freshJobs, kJobs - kRestored.size());
    EXPECT_EQ(outcome.freshJobSeconds.size(), outcome.freshJobs);
    EXPECT_FALSE(outcome.cancelled);

    // The sink saw every job exactly once, in job order, with the
    // fresh flag cleared exactly on the restored indices.
    ASSERT_EQ(resumed.entries.size(), kJobs);
    for (std::size_t j = 0; j < kJobs; ++j) {
        EXPECT_EQ(resumed.entries[j].job, j);
        const bool restored =
            std::find(kRestored.begin(), kRestored.end(), j) !=
            kRestored.end();
        EXPECT_EQ(resumed.entries[j].fresh, !restored) << "job " << j;
    }

    // Restored jobs were never recomputed; the fresh ones were planned
    // as waves of 4, 4 and 1 with the trailing job widened to the pool.
    std::size_t narrow = 0, wide = 0;
    for (const std::size_t job : kRestored)
        EXPECT_EQ(seen[job].load(), 0u) << "job " << job << " recomputed";
    for (std::size_t j = 0; j < kJobs; ++j) {
        if (seen[j].load() == 1)
            ++narrow;
        else if (seen[j].load() == kPool)
            ++wide;
    }
    EXPECT_EQ(narrow, kJobs - kRestored.size() - 1);
    EXPECT_EQ(wide, 1u);

    // Byte- and hash-identical to the all-fresh stream.
    EXPECT_EQ(resumed.bytes(), all_fresh.bytes());
    EXPECT_EQ(outcome.resultHash, fresh_hash);
}

} // namespace
} // namespace harp::runner
