/**
 * @file
 * Bit-identity tests for the sliced profiling engine: a
 * SlicedRoundEngine driving N lanes must produce, for every profiler
 * of every lane after every round, exactly the state that N scalar
 * RoundEngines produce from the same per-word seeds — across code
 * lengths, data patterns, heterogeneous per-lane codes, and ragged
 * lane counts.
 */

#include <gtest/gtest.h>

#include <memory>

#include "core/beep_profiler.hh"
#include "core/case_study_experiment.hh"
#include "core/coverage_experiment.hh"
#include "core/harp_a_beep_profiler.hh"
#include "core/harp_profiler.hh"
#include "core/naive_profiler.hh"
#include "core/round_engine.hh"
#include "core/sliced_round_engine.hh"
#include "ecc/bch_general.hh"
#include "ecc/sliced_bch.hh"
#include "support/property.hh"

namespace harp::core {
namespace {

using test::forEachSeed;

/** The full profiler set of the paper's evaluation for one word. */
std::vector<std::unique_ptr<Profiler>>
makeProfilerSet(const ecc::HammingCode &code)
{
    std::vector<std::unique_ptr<Profiler>> set;
    set.push_back(std::make_unique<NaiveProfiler>(code.k()));
    set.push_back(std::make_unique<BeepProfiler>(code));
    set.push_back(std::make_unique<HarpUProfiler>(code.k()));
    set.push_back(std::make_unique<HarpAProfiler>(code));
    set.push_back(std::make_unique<HarpABeepProfiler>(code));
    return set;
}

/**
 * Run @p lanes words for @p rounds under both engines with identical
 * per-word seed derivation and assert per-round, per-profiler
 * identical identified() profiles.
 */
void
checkEngineEquivalence(const std::vector<ecc::HammingCode> &codes,
                       const std::vector<fault::WordFaultModel> &faults,
                       PatternKind pattern, std::size_t rounds,
                       std::uint64_t seed)
{
    const std::size_t lanes = codes.size();

    // Scalar reference: one engine + profiler set per word.
    std::vector<std::vector<std::unique_ptr<Profiler>>> scalar_sets;
    std::vector<std::unique_ptr<RoundEngine>> scalar_engines;
    // Sliced: one engine over all lanes, same profiler classes.
    std::vector<std::vector<std::unique_ptr<Profiler>>> sliced_sets;
    std::vector<const ecc::HammingCode *> code_ptrs;
    std::vector<const fault::WordFaultModel *> fault_ptrs;
    std::vector<std::uint64_t> lane_seeds;
    for (std::size_t w = 0; w < lanes; ++w) {
        const std::uint64_t word_seed = common::deriveSeed(seed, {w});
        scalar_sets.push_back(makeProfilerSet(codes[w]));
        scalar_engines.push_back(std::make_unique<RoundEngine>(
            codes[w], faults[w], pattern, word_seed));
        sliced_sets.push_back(makeProfilerSet(codes[w]));
        code_ptrs.push_back(&codes[w]);
        fault_ptrs.push_back(&faults[w]);
        lane_seeds.push_back(word_seed);
    }
    SlicedRoundEngine sliced_engine(code_ptrs, fault_ptrs, pattern,
                                    lane_seeds);
    ASSERT_EQ(sliced_engine.lanes(), lanes);

    std::vector<std::vector<Profiler *>> sliced_raw(lanes);
    std::vector<std::vector<Profiler *>> scalar_raw(lanes);
    for (std::size_t w = 0; w < lanes; ++w) {
        for (auto &p : sliced_sets[w])
            sliced_raw[w].push_back(p.get());
        for (auto &p : scalar_sets[w])
            scalar_raw[w].push_back(p.get());
    }

    for (std::size_t r = 0; r < rounds; ++r) {
        sliced_engine.runRound(sliced_raw);
        for (std::size_t w = 0; w < lanes; ++w)
            scalar_engines[w]->runRound(scalar_raw[w]);
        for (std::size_t w = 0; w < lanes; ++w) {
            for (std::size_t s = 0; s < scalar_raw[w].size(); ++s) {
                ASSERT_EQ(sliced_raw[w][s]->identified(),
                          scalar_raw[w][s]->identified())
                    << "round " << r << ", lane " << w << ", profiler "
                    << scalar_raw[w][s]->name();
            }
        }
    }
    EXPECT_EQ(sliced_engine.roundsRun(), rounds);
}

TEST(SlicedRoundEngine, BitIdenticalToScalarHomogeneousCode)
{
    forEachSeed(2, [](std::uint64_t seed, common::Xoshiro256 &rng) {
        for (const PatternKind pattern :
             {PatternKind::Random, PatternKind::Charged,
              PatternKind::Checkered}) {
            const ecc::HammingCode code =
                ecc::HammingCode::randomSec(64, rng);
            std::vector<ecc::HammingCode> codes(64, code);
            std::vector<fault::WordFaultModel> faults;
            for (std::size_t w = 0; w < codes.size(); ++w)
                faults.push_back(
                    fault::WordFaultModel::makeUniformFixedCount(
                        code.n(), 2 + w % 4, 0.5, rng));
            checkEngineEquivalence(codes, faults, pattern, 24, seed);
        }
    });
}

TEST(SlicedRoundEngine, BitIdenticalWithHeterogeneousCodesAndRaggedTail)
{
    // Case-study shape: every lane its own random code, and fewer live
    // words than lanes fit (the ragged tail of a 64-word block).
    forEachSeed(2, [](std::uint64_t seed, common::Xoshiro256 &rng) {
        for (const std::size_t lanes : {std::size_t{1}, std::size_t{5},
                                        std::size_t{23}}) {
            std::vector<ecc::HammingCode> codes;
            std::vector<fault::WordFaultModel> faults;
            for (std::size_t w = 0; w < lanes; ++w) {
                codes.push_back(ecc::HammingCode::randomSec(64, rng));
                faults.push_back(
                    fault::WordFaultModel::makeUniformFixedCount(
                        codes[w].n(), 1 + w % 5, 0.25 + 0.25 * (w % 4),
                        rng));
            }
            checkEngineEquivalence(codes, faults, PatternKind::Random,
                                   20, seed);
        }
    });
}

TEST(SlicedRoundEngine, BitIdenticalAtK128)
{
    forEachSeed(1, [](std::uint64_t seed, common::Xoshiro256 &rng) {
        std::vector<ecc::HammingCode> codes;
        std::vector<fault::WordFaultModel> faults;
        for (std::size_t w = 0; w < 16; ++w) {
            codes.push_back(ecc::HammingCode::randomSec(128, rng));
            faults.push_back(
                fault::WordFaultModel::makeUniformFixedCount(
                    codes[w].n(), 3, 0.75, rng));
        }
        checkEngineEquivalence(codes, faults, PatternKind::Random, 16,
                               seed);
    });
}

TEST(SlicedRoundEngine, HandlesFaultFreeLanes)
{
    // Lanes without any at-risk cell must stay error-free and cost no
    // RNG draws, exactly like a scalar engine over a clean word.
    forEachSeed(1, [](std::uint64_t seed, common::Xoshiro256 &rng) {
        std::vector<ecc::HammingCode> codes;
        std::vector<fault::WordFaultModel> faults;
        for (std::size_t w = 0; w < 8; ++w) {
            codes.push_back(ecc::HammingCode::randomSec(64, rng));
            faults.push_back(
                fault::WordFaultModel::makeUniformFixedCount(
                    codes[w].n(), w % 2 == 0 ? 0 : 3, 1.0, rng));
        }
        checkEngineEquivalence(codes, faults, PatternKind::Charged, 12,
                               seed);
    });
}

/**
 * Whole-experiment equivalence: the coverage experiment must emit
 * byte-identical aggregates under both engines — the property the
 * runner's `--engine` tunable and campaign result_hash equality rely
 * on. wordsPerCode = 70 forces a ragged second block (64 + 6 lanes).
 */
TEST(EngineEquivalence, CoverageExperimentAggregatesMatch)
{
    CoverageConfig config;
    config.k = 64;
    config.numCodes = 2;
    config.wordsPerCode = 70;
    config.rounds = 10;
    config.numPreCorrectionErrors = 3;
    config.perBitProbability = 0.5;
    config.includeHarpABeep = true;
    config.seed = 99;
    config.threads = 2;

    config.engine = EngineKind::Scalar;
    const CoverageResult scalar = runCoverageExperiment(config);
    config.engine = EngineKind::Sliced64;
    const CoverageResult sliced = runCoverageExperiment(config);

    EXPECT_EQ(scalar.totalDirectAtRisk, sliced.totalDirectAtRisk);
    EXPECT_EQ(scalar.totalIndirectAtRisk, sliced.totalIndirectAtRisk);
    EXPECT_EQ(scalar.numWords, sliced.numWords);
    ASSERT_EQ(scalar.profilers.size(), sliced.profilers.size());
    for (std::size_t p = 0; p < scalar.profilers.size(); ++p) {
        const ProfilerAggregate &a = scalar.profilers[p];
        const ProfilerAggregate &b = sliced.profilers[p];
        EXPECT_EQ(a.name, b.name);
        EXPECT_EQ(a.directIdentifiedSum, b.directIdentifiedSum) << a.name;
        EXPECT_EQ(a.indirectMissedSum, b.indirectMissedSum) << a.name;
        EXPECT_EQ(a.falsePositiveSum, b.falsePositiveSum) << a.name;
        EXPECT_EQ(a.bootstrapRounds.sortedSamples(),
                  b.bootstrapRounds.sortedSamples())
            << a.name;
        ASSERT_EQ(a.maxSimultaneousFinal.numBins(),
                  b.maxSimultaneousFinal.numBins());
        for (std::size_t bin = 0; bin < a.maxSimultaneousFinal.numBins();
             ++bin)
            EXPECT_EQ(a.maxSimultaneousFinal.bin(bin),
                      b.maxSimultaneousFinal.bin(bin))
                << a.name << " bin " << bin;
        for (std::size_t x = 0; x < maxTrackedBound; ++x)
            EXPECT_EQ(a.roundsToBound[x].sortedSamples(),
                      b.roundsToBound[x].sortedSamples())
                << a.name << " bound " << x + 1;
    }
}

/** Same property for the Fig. 10 case study, whose sliced blocks carry
 *  a different random code in every lane. */
TEST(EngineEquivalence, CaseStudyExperimentSeriesMatch)
{
    CaseStudyConfig config;
    config.k = 64;
    config.perBitProbability = 0.75;
    config.maxConditionedCells = 3;
    config.samplesPerCellCount = 9;
    config.rounds = 12;
    config.seed = 17;
    config.threads = 2;

    config.engine = EngineKind::Scalar;
    const CaseStudyResult scalar = runCaseStudyExperiment(config);
    config.engine = EngineKind::Sliced64;
    const CaseStudyResult sliced = runCaseStudyExperiment(config);

    EXPECT_EQ(scalar.roundsToZeroAfter, sliced.roundsToZeroAfter);
    ASSERT_EQ(scalar.series.size(), sliced.series.size());
    for (std::size_t i = 0; i < scalar.series.size(); ++i) {
        EXPECT_EQ(scalar.series[i].profiler, sliced.series[i].profiler);
        EXPECT_EQ(scalar.series[i].rber, sliced.series[i].rber);
        // Conditional sums are integers mixed with identical Binomial
        // weights in identical order: exact double equality holds.
        EXPECT_EQ(scalar.series[i].berBefore, sliced.series[i].berBefore);
        EXPECT_EQ(scalar.series[i].berAfter, sliced.series[i].berAfter);
    }
}

/**
 * A slot whose lanes carry *different* profiler types cannot form a
 * lane-native observer group; the engine must fall back to the scalar
 * scatter+observe path for that slot and stay bit-identical.
 */
TEST(SlicedRoundEngine, MixedProfilerTypesWithinASlotStayBitIdentical)
{
    forEachSeed(1, [](std::uint64_t seed, common::Xoshiro256 &rng) {
        const std::size_t lanes = 11;
        std::vector<ecc::HammingCode> codes;
        std::vector<fault::WordFaultModel> faults;
        for (std::size_t w = 0; w < lanes; ++w) {
            codes.push_back(ecc::HammingCode::randomSec(64, rng));
            faults.push_back(
                fault::WordFaultModel::makeUniformFixedCount(
                    codes[w].n(), 2 + w % 3, 0.5, rng));
        }

        // Slot 0 alternates Naive/HARP-U per lane (group formation
        // must bail); slot 1 is homogeneous HARP-A (group forms).
        const auto makeSet =
            [&](std::size_t w) -> std::vector<std::unique_ptr<Profiler>> {
            std::vector<std::unique_ptr<Profiler>> set;
            if (w % 2 == 0)
                set.push_back(std::make_unique<NaiveProfiler>(64));
            else
                set.push_back(std::make_unique<HarpUProfiler>(64));
            set.push_back(std::make_unique<HarpAProfiler>(codes[w]));
            return set;
        };

        std::vector<std::vector<std::unique_ptr<Profiler>>> scalar_sets;
        std::vector<std::vector<std::unique_ptr<Profiler>>> sliced_sets;
        std::vector<std::unique_ptr<RoundEngine>> scalar_engines;
        std::vector<const ecc::HammingCode *> code_ptrs;
        std::vector<const fault::WordFaultModel *> fault_ptrs;
        std::vector<std::uint64_t> lane_seeds;
        std::vector<std::vector<Profiler *>> scalar_raw(lanes);
        std::vector<std::vector<Profiler *>> sliced_raw(lanes);
        for (std::size_t w = 0; w < lanes; ++w) {
            const std::uint64_t word_seed = common::deriveSeed(seed, {w});
            scalar_sets.push_back(makeSet(w));
            sliced_sets.push_back(makeSet(w));
            for (auto &p : scalar_sets[w])
                scalar_raw[w].push_back(p.get());
            for (auto &p : sliced_sets[w])
                sliced_raw[w].push_back(p.get());
            scalar_engines.push_back(std::make_unique<RoundEngine>(
                codes[w], faults[w], PatternKind::Random, word_seed));
            code_ptrs.push_back(&codes[w]);
            fault_ptrs.push_back(&faults[w]);
            lane_seeds.push_back(word_seed);
        }
        SlicedRoundEngine sliced_engine(code_ptrs, fault_ptrs,
                                        PatternKind::Random, lane_seeds);

        for (std::size_t r = 0; r < 20; ++r) {
            sliced_engine.runRound(sliced_raw);
            for (std::size_t w = 0; w < lanes; ++w) {
                scalar_engines[w]->runRound(scalar_raw[w]);
                for (std::size_t s = 0; s < 2; ++s)
                    ASSERT_EQ(sliced_raw[w][s]->identified(),
                              scalar_raw[w][s]->identified())
                        << "round " << r << ", lane " << w
                        << ", profiler " << scalar_raw[w][s]->name();
            }
        }
        // The mixed slot really ran scalar: observes happened (the
        // lanes are faulty, so not every round was clean).
        EXPECT_GT(sliced_engine.stats().scalarObserveCalls, 0u);
        // The homogeneous HARP-A slot ran lane-natively every round.
        EXPECT_EQ(sliced_engine.stats().laneObserveSlotRounds, 20u);
    });
}

/**
 * The observation-path instrumentation witnesses the tentpole elision:
 * a workload whose slots are all lane-native performs *zero* scatters
 * and zero scalar observe() calls, no matter how often profiles are
 * read; adding a crafting slot brings the scalar path (and its
 * scatters) back for that slot only.
 */
TEST(SlicedRoundEngine, LaneNativeSlotsElideScattersAndObserves)
{
    common::Xoshiro256 rng(77);
    std::vector<ecc::HammingCode> codes;
    std::vector<fault::WordFaultModel> faults;
    const std::size_t lanes = 64;
    for (std::size_t w = 0; w < lanes; ++w) {
        codes.push_back(ecc::HammingCode::randomSec(64, rng));
        faults.push_back(fault::WordFaultModel::makeUniformFixedCount(
            codes[w].n(), 3, 0.75, rng));
    }
    std::vector<const ecc::HammingCode *> code_ptrs;
    std::vector<const fault::WordFaultModel *> fault_ptrs;
    std::vector<std::uint64_t> seeds;
    for (std::size_t w = 0; w < lanes; ++w) {
        code_ptrs.push_back(&codes[w]);
        fault_ptrs.push_back(&faults[w]);
        seeds.push_back(common::deriveSeed(4242, {w}));
    }

    // All-lane-native fleet: Naive + HARP-U + HARP-A slots.
    {
        std::vector<std::vector<std::unique_ptr<Profiler>>> sets(lanes);
        std::vector<std::vector<Profiler *>> raw(lanes);
        for (std::size_t w = 0; w < lanes; ++w) {
            sets[w].push_back(std::make_unique<NaiveProfiler>(64));
            sets[w].push_back(std::make_unique<HarpUProfiler>(64));
            sets[w].push_back(std::make_unique<HarpAProfiler>(codes[w]));
            for (auto &p : sets[w])
                raw[w].push_back(p.get());
        }
        SlicedRoundEngine engine(code_ptrs, fault_ptrs,
                                 PatternKind::Random, seeds);
        for (std::size_t r = 0; r < 16; ++r) {
            engine.runRound(raw);
            // Per-round profile reads flush the observer groups but
            // must not bring the per-round scatters back.
            ASSERT_GT(raw[0][0]->identified().size(), 0u);
        }
        const SlicedRoundEngine::Stats &stats = engine.stats();
        EXPECT_EQ(stats.postScatters, 0u);
        EXPECT_EQ(stats.rawScatters, 0u);
        EXPECT_EQ(stats.scalarObserveCalls, 0u);
        EXPECT_EQ(stats.mixedDatapathRuns, 0u);
        EXPECT_EQ(stats.laneObserveSlotRounds, 16u * 3u);
        EXPECT_EQ(stats.suggestedDatapathRuns, 16u);
    }

    // Same fleet plus a BEEP slot: the crafting slot (and only it)
    // runs the scalar path — scatters and observes return, bounded by
    // one slot's worth, and clean lanes are skipped.
    {
        std::vector<std::vector<std::unique_ptr<Profiler>>> sets(lanes);
        std::vector<std::vector<Profiler *>> raw(lanes);
        for (std::size_t w = 0; w < lanes; ++w) {
            sets[w].push_back(std::make_unique<NaiveProfiler>(64));
            sets[w].push_back(std::make_unique<BeepProfiler>(codes[w]));
            sets[w].push_back(std::make_unique<HarpUProfiler>(64));
            sets[w].push_back(std::make_unique<HarpAProfiler>(codes[w]));
            for (auto &p : sets[w])
                raw[w].push_back(p.get());
        }
        SlicedRoundEngine engine(code_ptrs, fault_ptrs,
                                 PatternKind::Random, seeds);
        const std::size_t rounds = 16;
        for (std::size_t r = 0; r < rounds; ++r)
            engine.runRound(raw);
        const SlicedRoundEngine::Stats &stats = engine.stats();
        EXPECT_GT(stats.postScatters, 0u);
        EXPECT_LE(stats.postScatters, rounds);
        EXPECT_EQ(stats.rawScatters, 0u); // BEEP never reads raw
        EXPECT_GT(stats.scalarObserveCalls, 0u);
        // Observe calls + clean skips account for exactly the BEEP
        // slot's lane-rounds.
        EXPECT_EQ(stats.scalarObserveCalls + stats.cleanObserveSkips,
                  rounds * lanes);
        EXPECT_EQ(stats.laneObserveSlotRounds, rounds * 3u);
    }
}

/**
 * Regression: the engine caches observer groups per profiler
 * generation by pointer identity, but a destroyed profiler set
 * reallocated at the same addresses must NOT revive the old groups
 * (whose lanes were nulled on destruction) — that would silently
 * drop every observation of the new generation. Placement new forces
 * the exact address-reuse deterministically.
 */
TEST(SlicedRoundEngine, ReallocatedProfilersAtSameAddressObserveAgain)
{
    common::Xoshiro256 rng(31);
    const ecc::HammingCode code = ecc::HammingCode::randomSec(64, rng);
    const fault::WordFaultModel faults =
        fault::WordFaultModel::makeUniformFixedCount(code.n(), 3, 1.0,
                                                     rng);
    const std::vector<const ecc::HammingCode *> codes = {&code};
    const std::vector<const fault::WordFaultModel *> fault_ptrs = {
        &faults};
    SlicedRoundEngine engine(codes, fault_ptrs, PatternKind::Charged,
                             {5});

    alignas(NaiveProfiler) unsigned char slot[sizeof(NaiveProfiler)];
    auto *gen1 = new (slot) NaiveProfiler(64);
    std::vector<std::vector<Profiler *>> raw = {{gen1}};
    for (std::size_t r = 0; r < 8; ++r)
        engine.runRound(raw);
    const bool gen1_found = !gen1->identified().isZero();
    gen1->~NaiveProfiler();

    // Same address, same pointer vector — a fresh profiler.
    auto *gen2 = new (slot) NaiveProfiler(64);
    ASSERT_TRUE(gen2->identified().isZero());
    for (std::size_t r = 0; r < 8; ++r)
        engine.runRound(raw);
    // Three always-failing cells under the charged pattern identify
    // bits for generation 1; generation 2 sees the same fault model,
    // so dropping its observations (the bug) leaves it empty.
    EXPECT_TRUE(gen1_found);
    EXPECT_FALSE(gen2->identified().isZero());
    gen2->~NaiveProfiler();
}

TEST(SlicedRoundEngine, RejectsInconsistentLaneCounts)
{
    common::Xoshiro256 rng(3);
    const ecc::HammingCode code = ecc::HammingCode::randomSec(64, rng);
    const fault::WordFaultModel faults =
        fault::WordFaultModel::makeUniformFixedCount(code.n(), 2, 0.5,
                                                     rng);
    const std::vector<const ecc::HammingCode *> two_codes = {&code,
                                                             &code};
    const std::vector<const ecc::HammingCode *> one_code = {&code};
    const std::vector<const fault::WordFaultModel *> one_fault = {
        &faults};
    EXPECT_THROW(SlicedRoundEngine(two_codes, one_fault,
                                   PatternKind::Random, {1, 2}),
                 std::invalid_argument);
    EXPECT_THROW(SlicedRoundEngine(one_code, one_fault,
                                   PatternKind::Random, {1, 2}),
                 std::invalid_argument);
}

/**
 * One SlicedBchCode shared (non-owning) by consecutive block engines —
 * the amortized-warm-up shape the BCH specs use — must stay
 * bit-identical to scalar references, including a ragged final block
 * narrower than the shared datapath's lane count.
 */
TEST(SlicedRoundEngine, SharedBchDatapathAcrossBlocksStaysBitIdentical)
{
    common::Xoshiro256 rng(21);
    const ecc::BchCode code(64, 2);
    // Shared 8-lane datapath; cold memo so the shared-warm-up
    // accounting below stays observable.
    const ecc::SlicedBchCode sliced(code, 8, /*prewarm=*/false);
    const std::size_t block_sizes[] = {8, 8, 3}; // ragged tail

    std::size_t word = 0;
    for (const std::size_t block : block_sizes) {
        std::vector<fault::WordFaultModel> faults;
        std::vector<const fault::WordFaultModel *> fault_ptrs;
        std::vector<std::uint64_t> seeds;
        std::vector<std::unique_ptr<Profiler>> scalar_ps, sliced_ps;
        std::vector<std::vector<Profiler *>> scalar_raw(block),
            sliced_raw(block);
        faults.reserve(block);
        for (std::size_t w = 0; w < block; ++w, ++word) {
            faults.push_back(
                fault::WordFaultModel::makeUniformFixedCount(
                    code.n(), 2 + word % 3, 0.5, rng));
            seeds.push_back(common::deriveSeed(77, {word}));
            scalar_ps.push_back(
                std::make_unique<HarpUProfiler>(code.k()));
            sliced_ps.push_back(
                std::make_unique<HarpUProfiler>(code.k()));
            scalar_raw[w] = {scalar_ps[w].get()};
            sliced_raw[w] = {sliced_ps[w].get()};
        }
        for (std::size_t w = 0; w < block; ++w)
            fault_ptrs.push_back(&faults[w]);

        SlicedRoundEngine engine(sliced, fault_ptrs,
                                 PatternKind::Random, seeds);
        ASSERT_EQ(engine.lanes(), block);
        std::vector<std::unique_ptr<RoundEngine>> refs;
        for (std::size_t w = 0; w < block; ++w)
            refs.push_back(std::make_unique<RoundEngine>(
                code, faults[w], PatternKind::Random, seeds[w]));

        for (std::size_t r = 0; r < 12; ++r) {
            engine.runRound(sliced_raw);
            for (std::size_t w = 0; w < block; ++w) {
                refs[w]->runRound(scalar_raw[w]);
                ASSERT_EQ(sliced_raw[w][0]->identified(),
                          scalar_raw[w][0]->identified())
                    << "block of " << block << ", round " << r
                    << ", lane " << w;
            }
        }
    }
    // The shared memo really was shared: later blocks hit entries the
    // earlier ones populated.
    EXPECT_GT(sliced.memoHits(), 0u);
    EXPECT_EQ(sliced.memoEntries(), sliced.memoMisses());

    // More fault models than the shared datapath has lanes: rejected.
    std::vector<fault::WordFaultModel> many;
    std::vector<const fault::WordFaultModel *> many_ptrs;
    for (std::size_t w = 0; w < 9; ++w)
        many.push_back(fault::WordFaultModel::makeUniformFixedCount(
            code.n(), 1, 0.5, rng));
    for (const fault::WordFaultModel &fm : many)
        many_ptrs.push_back(&fm);
    EXPECT_THROW(SlicedRoundEngine(sliced, many_ptrs,
                                   PatternKind::Random,
                                   std::vector<std::uint64_t>(9, 1)),
                 std::invalid_argument);
}

/**
 * The code-agnostic engine contract for BCH lanes: a SlicedRoundEngine
 * over ecc::SlicedBchCode (memoized syndrome decoding) must produce,
 * per round and per profiler, exactly the state of scalar RoundEngines
 * over the same t-error BCH word — across t, pre-correction error
 * counts, and ragged lane counts.
 */
TEST(SlicedRoundEngine, BitIdenticalForBchLanes)
{
    forEachSeed(1, [](std::uint64_t seed, common::Xoshiro256 &rng) {
        for (const std::size_t t : {std::size_t{1}, std::size_t{2},
                                    std::size_t{3}}) {
            const ecc::BchCode code(64, t);
            for (const std::size_t lanes :
                 {std::size_t{3}, std::size_t{17}}) {
                std::vector<fault::WordFaultModel> faults;
                for (std::size_t w = 0; w < lanes; ++w)
                    faults.push_back(
                        fault::WordFaultModel::makeUniformFixedCount(
                            code.n(), 1 + w % 5, 0.25 + 0.25 * (w % 4),
                            rng));

                // Per-word profiler pairs and engines with identical
                // per-word seed derivation on both paths.
                std::vector<std::unique_ptr<Profiler>> scalar_ps;
                std::vector<std::unique_ptr<Profiler>> sliced_ps;
                std::vector<std::unique_ptr<RoundEngine>> scalar_engines;
                std::vector<const ecc::BchCode *> code_ptrs;
                std::vector<const fault::WordFaultModel *> fault_ptrs;
                std::vector<std::uint64_t> lane_seeds;
                std::vector<std::vector<Profiler *>> sliced_raw(lanes);
                std::vector<std::vector<Profiler *>> scalar_raw(lanes);
                for (std::size_t w = 0; w < lanes; ++w) {
                    const std::uint64_t word_seed =
                        common::deriveSeed(seed, {t, w});
                    scalar_ps.push_back(
                        std::make_unique<NaiveProfiler>(code.k()));
                    scalar_ps.push_back(
                        std::make_unique<HarpUProfiler>(code.k()));
                    sliced_ps.push_back(
                        std::make_unique<NaiveProfiler>(code.k()));
                    sliced_ps.push_back(
                        std::make_unique<HarpUProfiler>(code.k()));
                    scalar_raw[w] = {scalar_ps[2 * w].get(),
                                     scalar_ps[2 * w + 1].get()};
                    sliced_raw[w] = {sliced_ps[2 * w].get(),
                                     sliced_ps[2 * w + 1].get()};
                    scalar_engines.push_back(
                        std::make_unique<RoundEngine>(
                            code, faults[w], PatternKind::Random,
                            word_seed));
                    code_ptrs.push_back(&code);
                    fault_ptrs.push_back(&faults[w]);
                    lane_seeds.push_back(word_seed);
                }
                SlicedRoundEngine sliced_engine(
                    code_ptrs, fault_ptrs, PatternKind::Random,
                    lane_seeds);

                for (std::size_t r = 0; r < 16; ++r) {
                    sliced_engine.runRound(sliced_raw);
                    for (std::size_t w = 0; w < lanes; ++w)
                        scalar_engines[w]->runRound(scalar_raw[w]);
                    for (std::size_t w = 0; w < lanes; ++w)
                        for (std::size_t s = 0; s < 2; ++s)
                            ASSERT_EQ(sliced_raw[w][s]->identified(),
                                      scalar_raw[w][s]->identified())
                                << "t " << t << ", round " << r
                                << ", lane " << w << ", profiler "
                                << scalar_raw[w][s]->name();
                }
            }
        }
    });
}

/**
 * Wide-lane contract: a single 256-lane (W=4) engine over 100 words
 * must stay per-round bit-identical to both the scalar references and
 * the narrow W=1 engines the experiments would otherwise partition the
 * words into (blocks of 64 + 36 — so the test also pins down that the
 * block partition itself doesn't affect results). 100 lanes exercises
 * two 64-lane sub-words plus a ragged tail at W=4.
 */
TEST(SlicedRoundEngine, Wide256BitIdenticalToNarrowBlocksAndScalar)
{
    forEachSeed(1, [](std::uint64_t seed, common::Xoshiro256 &rng) {
        const std::size_t lanes = 100;
        std::vector<ecc::HammingCode> codes;
        std::vector<fault::WordFaultModel> faults;
        for (std::size_t w = 0; w < lanes; ++w) {
            codes.push_back(ecc::HammingCode::randomSec(64, rng));
            faults.push_back(
                fault::WordFaultModel::makeUniformFixedCount(
                    codes[w].n(), 1 + w % 4, 0.5, rng));
        }

        std::vector<const ecc::HammingCode *> code_ptrs;
        std::vector<const fault::WordFaultModel *> fault_ptrs;
        std::vector<std::uint64_t> lane_seeds;
        std::vector<std::vector<std::unique_ptr<Profiler>>> scalar_sets,
            narrow_sets, wide_sets;
        std::vector<std::unique_ptr<RoundEngine>> scalar_engines;
        std::vector<std::vector<Profiler *>> scalar_raw(lanes),
            narrow_raw(lanes), wide_raw(lanes);
        for (std::size_t w = 0; w < lanes; ++w) {
            const std::uint64_t word_seed = common::deriveSeed(seed, {w});
            scalar_sets.push_back(makeProfilerSet(codes[w]));
            narrow_sets.push_back(makeProfilerSet(codes[w]));
            wide_sets.push_back(makeProfilerSet(codes[w]));
            for (auto &p : scalar_sets[w])
                scalar_raw[w].push_back(p.get());
            for (auto &p : narrow_sets[w])
                narrow_raw[w].push_back(p.get());
            for (auto &p : wide_sets[w])
                wide_raw[w].push_back(p.get());
            scalar_engines.push_back(std::make_unique<RoundEngine>(
                codes[w], faults[w], PatternKind::Random, word_seed));
            code_ptrs.push_back(&codes[w]);
            fault_ptrs.push_back(&faults[w]);
            lane_seeds.push_back(word_seed);
        }

        // One wide engine over all 100 lanes...
        SlicedRoundEngine256 wide_engine(code_ptrs, fault_ptrs,
                                         PatternKind::Random, lane_seeds);
        ASSERT_EQ(wide_engine.lanes(), lanes);
        // ...versus the narrow engines over the 64/36 block partition.
        std::vector<std::unique_ptr<SlicedRoundEngine>> narrow_engines;
        std::vector<std::vector<std::vector<Profiler *>>> narrow_blocks;
        for (std::size_t begin = 0; begin < lanes; begin += 64) {
            const std::size_t end = std::min(lanes, begin + 64);
            const auto b = static_cast<std::ptrdiff_t>(begin);
            const auto e = static_cast<std::ptrdiff_t>(end);
            narrow_engines.push_back(std::make_unique<SlicedRoundEngine>(
                std::vector<const ecc::HammingCode *>(
                    code_ptrs.begin() + b, code_ptrs.begin() + e),
                std::vector<const fault::WordFaultModel *>(
                    fault_ptrs.begin() + b, fault_ptrs.begin() + e),
                PatternKind::Random,
                std::vector<std::uint64_t>(lane_seeds.begin() + b,
                                           lane_seeds.begin() + e)));
            narrow_blocks.emplace_back(narrow_raw.begin() + b,
                                       narrow_raw.begin() + e);
        }

        for (std::size_t r = 0; r < 16; ++r) {
            wide_engine.runRound(wide_raw);
            for (std::size_t blk = 0; blk < narrow_engines.size(); ++blk)
                narrow_engines[blk]->runRound(narrow_blocks[blk]);
            for (std::size_t w = 0; w < lanes; ++w)
                scalar_engines[w]->runRound(scalar_raw[w]);
            for (std::size_t w = 0; w < lanes; ++w) {
                for (std::size_t s = 0; s < scalar_raw[w].size(); ++s) {
                    ASSERT_EQ(wide_raw[w][s]->identified(),
                              scalar_raw[w][s]->identified())
                        << "wide vs scalar: round " << r << ", lane "
                        << w << ", profiler " << scalar_raw[w][s]->name();
                    ASSERT_EQ(wide_raw[w][s]->identified(),
                              narrow_raw[w][s]->identified())
                        << "wide vs narrow: round " << r << ", lane "
                        << w << ", profiler " << scalar_raw[w][s]->name();
                }
            }
        }
    });
}

/** Same wide-lane contract for memoized BCH lanes with a ragged tail
 *  (70 lanes: one full sub-word + 6). */
TEST(SlicedRoundEngine, Wide256BitIdenticalForBchLanes)
{
    forEachSeed(1, [](std::uint64_t seed, common::Xoshiro256 &rng) {
        const ecc::BchCode code(64, 2);
        const std::size_t lanes = 70;
        std::vector<fault::WordFaultModel> faults;
        for (std::size_t w = 0; w < lanes; ++w)
            faults.push_back(
                fault::WordFaultModel::makeUniformFixedCount(
                    code.n(), 1 + w % 5, 0.25 + 0.25 * (w % 4), rng));

        std::vector<const ecc::BchCode *> code_ptrs;
        std::vector<const fault::WordFaultModel *> fault_ptrs;
        std::vector<std::uint64_t> lane_seeds;
        std::vector<std::unique_ptr<Profiler>> scalar_ps, wide_ps;
        std::vector<std::unique_ptr<RoundEngine>> scalar_engines;
        std::vector<std::vector<Profiler *>> scalar_raw(lanes),
            wide_raw(lanes);
        for (std::size_t w = 0; w < lanes; ++w) {
            const std::uint64_t word_seed = common::deriveSeed(seed, {w});
            scalar_ps.push_back(
                std::make_unique<HarpUProfiler>(code.k()));
            wide_ps.push_back(std::make_unique<HarpUProfiler>(code.k()));
            scalar_raw[w] = {scalar_ps[w].get()};
            wide_raw[w] = {wide_ps[w].get()};
            scalar_engines.push_back(std::make_unique<RoundEngine>(
                code, faults[w], PatternKind::Random, word_seed));
            code_ptrs.push_back(&code);
            fault_ptrs.push_back(&faults[w]);
            lane_seeds.push_back(word_seed);
        }
        SlicedRoundEngine256 wide_engine(code_ptrs, fault_ptrs,
                                         PatternKind::Random, lane_seeds);

        for (std::size_t r = 0; r < 12; ++r) {
            wide_engine.runRound(wide_raw);
            for (std::size_t w = 0; w < lanes; ++w) {
                scalar_engines[w]->runRound(scalar_raw[w]);
                ASSERT_EQ(wide_raw[w][0]->identified(),
                          scalar_raw[w][0]->identified())
                    << "round " << r << ", lane " << w;
            }
        }
    });
}

/** The experiment-level tunables accept the wide engine too and stay
 *  byte-identical to scalar (the sliced256 campaign-hash contract). */
TEST(EngineEquivalence, Sliced256ExperimentAggregatesMatch)
{
    CoverageConfig config;
    config.k = 64;
    config.numCodes = 2;
    config.wordsPerCode = 70;
    config.rounds = 10;
    config.numPreCorrectionErrors = 3;
    config.perBitProbability = 0.5;
    config.includeHarpABeep = true;
    config.seed = 99;
    config.threads = 2;

    config.engine = EngineKind::Scalar;
    const CoverageResult scalar = runCoverageExperiment(config);
    config.engine = EngineKind::Sliced256;
    const CoverageResult wide = runCoverageExperiment(config);

    EXPECT_EQ(scalar.totalDirectAtRisk, wide.totalDirectAtRisk);
    EXPECT_EQ(scalar.totalIndirectAtRisk, wide.totalIndirectAtRisk);
    ASSERT_EQ(scalar.profilers.size(), wide.profilers.size());
    for (std::size_t p = 0; p < scalar.profilers.size(); ++p) {
        const ProfilerAggregate &a = scalar.profilers[p];
        const ProfilerAggregate &b = wide.profilers[p];
        EXPECT_EQ(a.directIdentifiedSum, b.directIdentifiedSum) << a.name;
        EXPECT_EQ(a.indirectMissedSum, b.indirectMissedSum) << a.name;
        EXPECT_EQ(a.falsePositiveSum, b.falsePositiveSum) << a.name;
        EXPECT_EQ(a.bootstrapRounds.sortedSamples(),
                  b.bootstrapRounds.sortedSamples())
            << a.name;
    }

    CaseStudyConfig cs;
    cs.k = 64;
    cs.perBitProbability = 0.75;
    cs.maxConditionedCells = 3;
    cs.samplesPerCellCount = 9;
    cs.rounds = 12;
    cs.seed = 17;
    cs.threads = 2;
    cs.engine = EngineKind::Scalar;
    const CaseStudyResult cs_scalar = runCaseStudyExperiment(cs);
    cs.engine = EngineKind::Sliced256;
    const CaseStudyResult cs_wide = runCaseStudyExperiment(cs);
    EXPECT_EQ(cs_scalar.roundsToZeroAfter, cs_wide.roundsToZeroAfter);
    ASSERT_EQ(cs_scalar.series.size(), cs_wide.series.size());
    for (std::size_t i = 0; i < cs_scalar.series.size(); ++i) {
        EXPECT_EQ(cs_scalar.series[i].berBefore,
                  cs_wide.series[i].berBefore);
        EXPECT_EQ(cs_scalar.series[i].berAfter,
                  cs_wide.series[i].berAfter);
    }
}

} // namespace
} // namespace harp::core
