/**
 * @file
 * Unit, property, and behavioural tests for the five profilers. These
 * encode the paper's qualitative claims: HARP identifies every direct
 * at-risk bit as soon as it fails; Naive needs uncorrectable combinations;
 * BEEP crafts patterns around suspects; HARP-A predicts indirect errors;
 * no profiler ever reports a bit the ground truth rules out as at-risk
 * (no unsound identifications against the ground-truth analyzer).
 */

#include <gtest/gtest.h>

#include <memory>

#include "common/rng.hh"
#include "core/at_risk_analyzer.hh"
#include "core/beep_profiler.hh"
#include "core/harp_a_beep_profiler.hh"
#include "core/harp_profiler.hh"
#include "core/naive_profiler.hh"
#include "core/round_engine.hh"

namespace harp::core {
namespace {

ecc::HammingCode
makeCode(std::uint64_t seed = 1)
{
    common::Xoshiro256 rng(seed);
    return ecc::HammingCode::randomSec(64, rng);
}

/** Run all profilers for @p rounds rounds on a scenario. */
struct Scenario
{
    ecc::HammingCode code;
    fault::WordFaultModel faults;
    NaiveProfiler naive;
    BeepProfiler beep;
    HarpUProfiler harpU;
    HarpAProfiler harpA;
    HarpABeepProfiler harpABeep;
    RoundEngine engine;

    Scenario(std::uint64_t seed, std::size_t n_faults, double prob)
        : code(makeCode(seed)),
          faults([&] {
              common::Xoshiro256 rng(seed + 1000);
              return fault::WordFaultModel::makeUniformFixedCount(
                  code.n(), n_faults, prob, rng);
          }()),
          naive(code.k()),
          beep(code),
          harpU(code.k()),
          harpA(code),
          harpABeep(code),
          engine(code, faults, PatternKind::Random, seed + 2000)
    {
    }

    std::vector<Profiler *>
    all()
    {
        return {&naive, &beep, &harpU, &harpA, &harpABeep};
    }

    void
    run(std::size_t rounds)
    {
        auto profilers = all();
        for (std::size_t r = 0; r < rounds; ++r)
            engine.runRound(profilers);
    }
};

TEST(Profilers, NamesAndBypassFlags)
{
    Scenario s(1, 2, 0.5);
    EXPECT_EQ(s.naive.name(), "Naive");
    EXPECT_EQ(s.beep.name(), "BEEP");
    EXPECT_EQ(s.harpU.name(), "HARP-U");
    EXPECT_EQ(s.harpA.name(), "HARP-A");
    EXPECT_EQ(s.harpABeep.name(), "HARP-A+BEEP");
    EXPECT_FALSE(s.naive.usesBypassPath());
    EXPECT_FALSE(s.beep.usesBypassPath());
    EXPECT_TRUE(s.harpU.usesBypassPath());
    EXPECT_TRUE(s.harpA.usesBypassPath());
    EXPECT_TRUE(s.harpABeep.usesBypassPath());
}

TEST(Profilers, AllStartEmpty)
{
    Scenario s(2, 3, 0.5);
    for (Profiler *p : s.all())
        EXPECT_TRUE(p->identified().isZero()) << p->name();
}

TEST(Profilers, HarpUAchievesFullDirectCoverage)
{
    // With p = 0.5 and random+inverse patterns, 64 rounds make a missed
    // direct cell a ~2^-32 event.
    for (std::uint64_t seed = 10; seed < 20; ++seed) {
        Scenario s(seed, 4, 0.5);
        const AtRiskAnalyzer analyzer(s.code, s.faults);
        s.run(64);
        gf2::BitVector covered = s.harpU.identified();
        covered &= analyzer.directAtRisk();
        EXPECT_EQ(covered.popcount(),
                  analyzer.directAtRisk().popcount())
            << "seed " << seed;
    }
}

TEST(Profilers, HarpUIdentifiesOnlyDirectErrors)
{
    // HARP-U bypasses on-die ECC, so it can never observe (or report)
    // an indirect error that is not also a direct one.
    for (std::uint64_t seed = 30; seed < 40; ++seed) {
        Scenario s(seed, 4, 0.5);
        const AtRiskAnalyzer analyzer(s.code, s.faults);
        s.run(64);
        gf2::BitVector outside = s.harpU.identified();
        gf2::BitVector mask = analyzer.directAtRisk();
        mask.fill(true);
        mask ^= analyzer.directAtRisk(); // complement
        outside &= mask;
        EXPECT_TRUE(outside.isZero()) << "seed " << seed;
    }
}

TEST(Profilers, HarpUAtProbabilityOneCoversInOneInversionPair)
{
    // p = 1.0: every charged at-risk cell fails every round; the pattern
    // and its inverse charge every cell, so 2 rounds give full coverage.
    for (std::uint64_t seed = 50; seed < 56; ++seed) {
        Scenario s(seed, 5, 1.0);
        const AtRiskAnalyzer analyzer(s.code, s.faults);
        s.run(2);
        gf2::BitVector covered = s.harpU.identified();
        covered &= analyzer.directAtRisk();
        EXPECT_EQ(covered.popcount(),
                  analyzer.directAtRisk().popcount())
            << "seed " << seed;
    }
}

TEST(Profilers, NaiveCannotSeeLoneCellFailures)
{
    // A word with a single at-risk data cell never produces a
    // post-correction error (SEC always corrects a lone failure), so
    // Naive identifies nothing, ever, while HARP-U sees the raw failure
    // immediately through the bypass path.
    const ecc::HammingCode code = makeCode(60);
    const fault::WordFaultModel faults(code.n(), {{17, 1.0}});
    NaiveProfiler naive(code.k());
    HarpUProfiler harp(code.k());
    RoundEngine engine(code, faults, PatternKind::Random, 61);
    std::vector<Profiler *> ps = {&naive, &harp};
    for (int r = 0; r < 32; ++r)
        engine.runRound(ps);
    EXPECT_TRUE(naive.identified().isZero());
    EXPECT_EQ(harp.identified().setBits(),
              (std::vector<std::size_t>{17}));
}

TEST(Profilers, NaiveEventuallyCoversDirectWithRandomPatterns)
{
    // With >= 2 at-risk cells at p=0.5, uncorrectable combinations occur
    // regularly; Naive converges, just more slowly than HARP.
    std::size_t naive_total = 0, harp_total = 0, gt_total = 0;
    for (std::uint64_t seed = 70; seed < 80; ++seed) {
        Scenario s(seed, 3, 0.5);
        const AtRiskAnalyzer analyzer(s.code, s.faults);
        s.run(128);
        gf2::BitVector naive_cov = s.naive.identified();
        naive_cov &= analyzer.directAtRisk();
        gf2::BitVector harp_cov = s.harpU.identified();
        harp_cov &= analyzer.directAtRisk();
        naive_total += naive_cov.popcount();
        harp_total += harp_cov.popcount();
        gt_total += analyzer.directAtRisk().popcount();
    }
    EXPECT_EQ(harp_total, gt_total);
    // Naive reaches at least 90% aggregate coverage after 128 rounds...
    EXPECT_GE(naive_total * 10, gt_total * 9);
}

TEST(Profilers, HarpFasterThanNaive)
{
    // Count rounds to full direct coverage; HARP must never be slower.
    std::size_t harp_rounds_total = 0, naive_rounds_total = 0;
    for (std::uint64_t seed = 90; seed < 100; ++seed) {
        Scenario s(seed, 3, 0.5);
        const AtRiskAnalyzer analyzer(s.code, s.faults);
        const std::size_t target = analyzer.directAtRisk().popcount();
        auto profilers = s.all();
        std::size_t harp_done = 129, naive_done = 129;
        for (std::size_t r = 0; r < 128; ++r) {
            s.engine.runRound(profilers);
            gf2::BitVector h = s.harpU.identified();
            h &= analyzer.directAtRisk();
            if (h.popcount() == target && harp_done > 128)
                harp_done = r + 1;
            gf2::BitVector n = s.naive.identified();
            n &= analyzer.directAtRisk();
            if (n.popcount() == target && naive_done > 128)
                naive_done = r + 1;
            if (harp_done <= 128 && naive_done <= 128)
                break;
        }
        ASSERT_LE(harp_done, 128u) << "seed " << seed;
        EXPECT_LE(harp_done, naive_done) << "seed " << seed;
        harp_rounds_total += harp_done;
        naive_rounds_total += std::min<std::size_t>(naive_done, 128);
    }
    EXPECT_LT(harp_rounds_total, naive_rounds_total);
}

TEST(Profilers, HarpAPredictionsAreSoundIndirectTargets)
{
    // Every bit HARP-A predicts must be a ground-truth indirect-at-risk
    // bit: predictions derive from actually-at-risk data cells only.
    for (std::uint64_t seed = 110; seed < 120; ++seed) {
        Scenario s(seed, 4, 0.5);
        const AtRiskAnalyzer analyzer(s.code, s.faults);
        s.run(64);
        gf2::BitVector predictions = s.harpA.predictedIndirect();
        gf2::BitVector sound = predictions;
        sound &= analyzer.indirectAtRisk();
        EXPECT_EQ(sound.popcount(), predictions.popcount())
            << "seed " << seed;
    }
}

TEST(Profilers, HarpAIdentifiesAtLeastAsMuchAsHarpU)
{
    for (std::uint64_t seed = 130; seed < 136; ++seed) {
        Scenario s(seed, 4, 0.75);
        s.run(32);
        gf2::BitVector u_minus_a = s.harpU.identified();
        gf2::BitVector in_both = u_minus_a;
        in_both &= s.harpA.identified();
        EXPECT_EQ(in_both.popcount(), u_minus_a.popcount())
            << "HARP-A must contain HARP-U's profile, seed " << seed;
    }
}

TEST(Profilers, HarpADirectCoverageEqualsHarpU)
{
    // Footnote 5 of the paper: HARP-U and HARP-A have identical coverage
    // of bits at risk of direct error.
    for (std::uint64_t seed = 140; seed < 146; ++seed) {
        Scenario s(seed, 3, 0.5);
        const AtRiskAnalyzer analyzer(s.code, s.faults);
        s.run(48);
        gf2::BitVector u = s.harpU.identified();
        u &= analyzer.directAtRisk();
        gf2::BitVector a = s.harpA.identified();
        a &= analyzer.directAtRisk();
        EXPECT_EQ(u, a) << "seed " << seed;
    }
}

TEST(Profilers, BeepStartsWithSuggestedPattern)
{
    Scenario s(150, 2, 0.5);
    common::Xoshiro256 rng(1);
    const gf2::BitVector suggested = gf2::BitVector::random(64, rng);
    const gf2::BitVector chosen =
        s.beep.chooseDataword(0, suggested, rng);
    EXPECT_EQ(chosen, suggested);
}

TEST(Profilers, BeepCraftsChargedPatternsAfterConfirmation)
{
    Scenario s(151, 2, 0.5);
    s.beep.addSuspectedCell(5);
    s.beep.addSuspectedCell(9);
    common::Xoshiro256 rng(2);
    const gf2::BitVector suggested(64); // all zeros
    const gf2::BitVector chosen =
        s.beep.chooseDataword(1, suggested, rng);
    // Crafted pattern must charge the suspected data cells.
    EXPECT_TRUE(chosen.get(5));
    EXPECT_TRUE(chosen.get(9));
    // And keep most other data cells discharged for attributability
    // (suspects + probe + any parity implications only).
    EXPECT_LE(chosen.popcount(), 4u);
}

TEST(Profilers, BeepObservationUpdatesSuspects)
{
    Scenario s(152, 2, 0.5);
    gf2::BitVector written(64);
    gf2::BitVector post = written;
    post.flip(7);
    post.flip(21);
    const gf2::BitVector raw = written;
    const RoundObservation obs{0, written, post, raw};
    s.beep.observe(obs);
    EXPECT_TRUE(s.beep.identified().get(7));
    EXPECT_TRUE(s.beep.identified().get(21));
    EXPECT_EQ(s.beep.suspectedCells().count(7), 1u);
    EXPECT_EQ(s.beep.suspectedCells().count(21), 1u);
}

TEST(Profilers, BeepSlowerThanHarpOnDirectCoverage)
{
    // Aggregate over scenarios: BEEP's crafted patterns pin non-target
    // cells discharged, so its direct coverage lags HARP's.
    std::size_t beep_total = 0, harp_total = 0;
    for (std::uint64_t seed = 160; seed < 172; ++seed) {
        Scenario s(seed, 4, 0.5);
        const AtRiskAnalyzer analyzer(s.code, s.faults);
        s.run(48);
        gf2::BitVector b = s.beep.identified();
        b &= analyzer.directAtRisk();
        beep_total += b.popcount();
        gf2::BitVector h = s.harpU.identified();
        h &= analyzer.directAtRisk();
        harp_total += h.popcount();
    }
    EXPECT_LT(beep_total, harp_total);
}

TEST(Profilers, HarpABeepContainsHarpDirectCoverage)
{
    for (std::uint64_t seed = 180; seed < 186; ++seed) {
        Scenario s(seed, 3, 0.5);
        const AtRiskAnalyzer analyzer(s.code, s.faults);
        s.run(64);
        // The hybrid uses the bypass path, so its direct coverage matches
        // HARP's full coverage.
        gf2::BitVector hybrid = s.harpABeep.identifiedDirect();
        EXPECT_EQ(hybrid, analyzer.directAtRisk()) << "seed " << seed;
    }
}

TEST(Profilers, HybridFindsIndirectAtLeastAsFastAsHarpA)
{
    std::size_t hybrid_total = 0, harpa_total = 0;
    for (std::uint64_t seed = 190; seed < 202; ++seed) {
        Scenario s(seed, 4, 0.75);
        const AtRiskAnalyzer analyzer(s.code, s.faults);
        s.run(64);
        gf2::BitVector hy = s.harpABeep.identified();
        hy &= analyzer.indirectAtRisk();
        hybrid_total += hy.popcount();
        gf2::BitVector ha = s.harpA.identified();
        ha &= analyzer.indirectAtRisk();
        harpa_total += ha.popcount();
    }
    EXPECT_GE(hybrid_total, harpa_total);
}

TEST(Profilers, ObservationBasedProfilersNeverReportImpossibleBits)
{
    // Anything Naive identifies must be a ground-truth post-correction
    // at-risk bit (it only reports observed errors).
    for (std::uint64_t seed = 210; seed < 220; ++seed) {
        Scenario s(seed, 4, 0.5);
        const AtRiskAnalyzer analyzer(s.code, s.faults);
        s.run(64);
        gf2::BitVector naive_ids = s.naive.identified();
        gf2::BitVector sound = naive_ids;
        sound &= analyzer.postCorrectionAtRisk();
        EXPECT_EQ(sound.popcount(), naive_ids.popcount())
            << "seed " << seed;
    }
}

} // namespace
} // namespace harp::core
