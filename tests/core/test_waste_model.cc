/**
 * @file
 * Unit tests for the Fig. 2 storage-waste model: closed form vs.
 * Monte-Carlo, plus the qualitative properties the paper reads off the
 * figure.
 */

#include <gtest/gtest.h>

#include "core/waste_model.hh"

namespace harp::core {
namespace {

TEST(WasteModel, BitGranularityWastesNothing)
{
    for (const double rber : {1e-7, 1e-4, 1e-2, 0.5})
        EXPECT_DOUBLE_EQ(expectedWastedFraction(1, rber), 0.0);
}

TEST(WasteModel, ZeroErrorRateWastesNothing)
{
    for (const std::size_t g : {1u, 32u, 64u, 512u, 1024u})
        EXPECT_DOUBLE_EQ(expectedWastedFraction(g, 0.0), 0.0);
}

TEST(WasteModel, CoarserGranularityWastesMore)
{
    const double rber = 1e-3;
    double prev = -1.0;
    for (const std::size_t g : {1u, 32u, 64u, 512u, 1024u}) {
        const double waste = expectedWastedFraction(g, rber);
        EXPECT_GT(waste, prev);
        prev = waste;
    }
}

TEST(WasteModel, PaperWorstCaseValue)
{
    // The paper: "wasting over 99% of total memory capacity in the worst
    // case for a 1024-bit granularity at a raw bit error rate of
    // 6.8e-3".
    const double waste = expectedWastedFraction(1024, 6.8e-3);
    EXPECT_GT(waste, 0.99);
}

TEST(WasteModel, WasteDecreasesAtVeryHighErrorRates)
{
    // Beyond the peak, more bits are truly erroneous so fewer repaired
    // bits are wasted.
    const std::size_t g = 1024;
    const double peak = expectedWastedFraction(g, 6.8e-3);
    EXPECT_LT(expectedWastedFraction(g, 0.5), peak);
    EXPECT_LT(expectedWastedFraction(g, 0.9), peak);
}

TEST(WasteModel, ClosedFormWithinUnitInterval)
{
    for (const std::size_t g : {2u, 64u, 1024u})
        for (double rber = 1e-7; rber < 1.0; rber *= 10.0) {
            const double w = expectedWastedFraction(g, rber);
            EXPECT_GE(w, 0.0);
            EXPECT_LE(w, 1.0);
        }
}

TEST(WasteModel, MonteCarloMatchesClosedForm)
{
    common::Xoshiro256 rng(1);
    struct Case
    {
        std::size_t g;
        double rber;
    };
    for (const Case c : {Case{32, 1e-2}, Case{64, 5e-3}, Case{512, 1e-3},
                         Case{8, 0.1}}) {
        const double expected = expectedWastedFraction(c.g, c.rber);
        const double simulated =
            simulateWastedFraction(c.g, c.rber, 20000, rng);
        EXPECT_NEAR(simulated, expected, 0.01)
            << "g=" << c.g << " rber=" << c.rber;
    }
}

} // namespace
} // namespace harp::core
