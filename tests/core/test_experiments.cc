/**
 * @file
 * Integration tests for the experiment drivers: small configurations of
 * the coverage experiment (Figs. 6-9), the case study (Fig. 10), and the
 * Fig. 4 probability sweep. These assert the paper's headline orderings
 * on reduced Monte-Carlo samples.
 */

#include <gtest/gtest.h>

#include <cmath>

#include "core/case_study_experiment.hh"
#include "core/coverage_experiment.hh"
#include "core/fig4_experiment.hh"

namespace harp::core {
namespace {

CoverageConfig
smallCoverageConfig()
{
    CoverageConfig config;
    config.numCodes = 4;
    config.wordsPerCode = 6;
    config.rounds = 64;
    config.numPreCorrectionErrors = 3;
    config.perBitProbability = 0.5;
    config.seed = 99;
    config.threads = 4;
    return config;
}

TEST(CoverageExperiment, ShapesAndInvariants)
{
    const CoverageConfig config = smallCoverageConfig();
    const CoverageResult result = runCoverageExperiment(config);
    ASSERT_EQ(result.profilers.size(), 4u);
    EXPECT_EQ(result.numWords,
              config.numCodes * config.wordsPerCode);
    EXPECT_GT(result.totalDirectAtRisk, 0u);
    for (const ProfilerAggregate &agg : result.profilers) {
        ASSERT_EQ(agg.directIdentifiedSum.size(), config.rounds);
        // Coverage curves are monotone non-decreasing.
        for (std::size_t r = 1; r < config.rounds; ++r) {
            EXPECT_GE(agg.directIdentifiedSum[r],
                      agg.directIdentifiedSum[r - 1])
                << agg.name;
            EXPECT_LE(agg.indirectMissedSum[r],
                      agg.indirectMissedSum[r - 1])
                << agg.name;
        }
        // Coverage never exceeds 1.
        EXPECT_LE(agg.directIdentifiedSum.back(),
                  result.totalDirectAtRisk);
        EXPECT_EQ(agg.bootstrapRounds.count(), result.numWords);
    }
}

TEST(CoverageExperiment, DeterministicAcrossThreadCounts)
{
    CoverageConfig config = smallCoverageConfig();
    config.threads = 1;
    const CoverageResult serial = runCoverageExperiment(config);
    config.threads = 8;
    const CoverageResult parallel = runCoverageExperiment(config);
    ASSERT_EQ(serial.profilers.size(), parallel.profilers.size());
    EXPECT_EQ(serial.totalDirectAtRisk, parallel.totalDirectAtRisk);
    for (std::size_t p = 0; p < serial.profilers.size(); ++p) {
        EXPECT_EQ(serial.profilers[p].directIdentifiedSum,
                  parallel.profilers[p].directIdentifiedSum);
        EXPECT_EQ(serial.profilers[p].indirectMissedSum,
                  parallel.profilers[p].indirectMissedSum);
    }
}

TEST(CoverageExperiment, HarpReachesFullDirectCoverage)
{
    const CoverageResult result =
        runCoverageExperiment(smallCoverageConfig());
    // Profiler order: Naive, BEEP, HARP-U, HARP-A.
    const double harp_u = result.directCoverage(2, 63);
    const double harp_a = result.directCoverage(3, 63);
    EXPECT_DOUBLE_EQ(harp_u, 1.0);
    EXPECT_DOUBLE_EQ(harp_a, 1.0);
}

TEST(CoverageExperiment, HarpDominatesBaselinesEveryRound)
{
    const CoverageResult result =
        runCoverageExperiment(smallCoverageConfig());
    for (std::size_t r = 0; r < result.config.rounds; ++r) {
        EXPECT_GE(result.directCoverage(2, r),
                  result.directCoverage(0, r))
            << "round " << r; // HARP-U >= Naive
        EXPECT_GE(result.directCoverage(2, r),
                  result.directCoverage(1, r))
            << "round " << r; // HARP-U >= BEEP
    }
}

TEST(CoverageExperiment, HarpABootstrapsNoSlowerThanNaive)
{
    const CoverageResult result =
        runCoverageExperiment(smallCoverageConfig());
    EXPECT_LE(result.profilers[2].bootstrapRounds.quantile(0.99),
              result.profilers[0].bootstrapRounds.quantile(0.99));
}

TEST(CoverageExperiment, HarpNeverExceedsOneSimultaneousError)
{
    // Fig. 9a: after 128 (here 64) rounds HARP words never admit > 1
    // simultaneous post-correction error.
    const CoverageResult result =
        runCoverageExperiment(smallCoverageConfig());
    for (const std::size_t profiler : {2u, 3u}) {
        const auto &hist =
            result.profilers[profiler].maxSimultaneousFinal;
        for (std::size_t bin = 2; bin < hist.numBins(); ++bin)
            EXPECT_EQ(hist.bin(bin), 0u)
                << result.profilers[profiler].name << " bin " << bin;
    }
}

TEST(CoverageExperiment, HarpAIndirectMissedBelowHarpU)
{
    const CoverageResult result =
        runCoverageExperiment(smallCoverageConfig());
    const std::size_t last = result.config.rounds - 1;
    // HARP-A's predictions reduce missed indirect errors vs HARP-U.
    EXPECT_LE(result.profilers[3].indirectMissedSum[last],
              result.profilers[2].indirectMissedSum[last]);
    // HARP-U identifies (almost) no indirect bits: missed stays near the
    // total.
    EXPECT_GT(result.profilers[2].indirectMissedSum[last], 0u);
}

TEST(CoverageExperiment, HarpABeepIncluded)
{
    CoverageConfig config = smallCoverageConfig();
    config.includeHarpABeep = true;
    config.wordsPerCode = 4;
    const CoverageResult result = runCoverageExperiment(config);
    ASSERT_EQ(result.profilers.size(), 5u);
    EXPECT_EQ(result.profilers[4].name, "HARP-A+BEEP");
    const std::size_t last = config.rounds - 1;
    // The hybrid misses no more indirect bits than plain HARP-A.
    EXPECT_LE(result.profilers[4].indirectMissedSum[last],
              result.profilers[3].indirectMissedSum[last]);
}

TEST(CoverageExperiment, ProbabilityOneIsInstantForHarp)
{
    CoverageConfig config = smallCoverageConfig();
    config.perBitProbability = 1.0;
    const CoverageResult result = runCoverageExperiment(config);
    // Pattern + inverse charge every cell within two rounds: full direct
    // coverage for HARP by round index 1.
    EXPECT_DOUBLE_EQ(result.directCoverage(2, 1), 1.0);
}

TEST(CaseStudy, ShapesAndHeadlineOrdering)
{
    CaseStudyConfig config;
    config.perBitProbability = 0.75;
    config.samplesPerCellCount = 6;
    config.maxConditionedCells = 4;
    config.rounds = 64;
    config.seed = 7;
    config.threads = 4;
    const CaseStudyResult result = runCaseStudyExperiment(config);

    ASSERT_EQ(result.profilerNames.size(), 4u);
    ASSERT_EQ(result.series.size(),
              result.profilerNames.size() * config.rbers.size());
    ASSERT_EQ(result.roundsToZeroAfter.size(), 4u);

    // HARP variants reach zero post-reactive BER, and no later than
    // Naive; BEEP typically never does.
    const std::size_t naive = result.roundsToZeroAfter[0];
    const std::size_t harp_u = result.roundsToZeroAfter[2];
    const std::size_t harp_a = result.roundsToZeroAfter[3];
    EXPECT_LE(harp_u, config.rounds);
    EXPECT_LE(harp_a, config.rounds);
    EXPECT_LE(harp_u, naive);

    // BER curves are non-increasing and scale with RBER.
    for (const CaseStudySeries &s : result.series) {
        for (std::size_t r = 1; r < s.berBefore.size(); ++r) {
            EXPECT_LE(s.berBefore[r], s.berBefore[r - 1] + 1e-18);
            EXPECT_LE(s.berAfter[r], s.berAfter[r - 1] + 1e-18);
        }
    }
    // Higher RBER -> strictly larger initial BER for the same profiler.
    const CaseStudySeries &hi = result.series[0]; // Naive @ 1e-4
    const CaseStudySeries &lo = result.series[2]; // Naive @ 1e-8
    EXPECT_GT(hi.berBefore[0], lo.berBefore[0]);
}

TEST(CaseStudy, BinomialPmf)
{
    EXPECT_NEAR(binomialPmf(0, 10, 0.1), std::pow(0.9, 10), 1e-12);
    EXPECT_NEAR(binomialPmf(1, 10, 0.1),
                10 * 0.1 * std::pow(0.9, 9), 1e-12);
    EXPECT_DOUBLE_EQ(binomialPmf(11, 10, 0.1), 0.0);
    // PMF sums to 1.
    double sum = 0.0;
    for (std::size_t n = 0; n <= 10; ++n)
        sum += binomialPmf(n, 10, 0.3);
    EXPECT_NEAR(sum, 1.0, 1e-12);
    // Tiny p stays finite and positive.
    EXPECT_GT(binomialPmf(2, 71, 1e-8), 0.0);
    EXPECT_LT(binomialPmf(2, 71, 1e-8), 1e-11);
}

TEST(Fig4, DistributionsShiftTowardZero)
{
    Fig4Config config;
    config.numCodes = 6;
    config.wordsPerCode = 10;
    config.minPreCorrectionErrors = 2;
    config.maxPreCorrectionErrors = 6;
    config.seed = 3;
    config.threads = 4;
    const Fig4Result result = runFig4Experiment(config);
    ASSERT_EQ(result.rows.size(), 5u);

    for (const Fig4Row &row : result.rows) {
        EXPECT_GT(row.postCorrection.count(), 0u);
        // Pre-correction reference is exactly p = 0.5 for every cell.
        EXPECT_DOUBLE_EQ(row.preCorrection.quantile(0.0), 0.5);
        EXPECT_DOUBLE_EQ(row.preCorrection.quantile(1.0), 0.5);
        // Post-correction probabilities live in (0, 1).
        EXPECT_GT(row.postCorrection.quantile(0.0), 0.0);
        EXPECT_LT(row.postCorrection.quantile(1.0), 1.0);
    }
    // The paper's observation: medians shift toward zero as the number
    // of pre-correction errors grows (compare n=3 vs n=6).
    EXPECT_GT(result.rows[1].postCorrection.median(),
              result.rows[4].postCorrection.median());
}

} // namespace
} // namespace harp::core
