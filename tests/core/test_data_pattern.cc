/**
 * @file
 * Unit tests for the active-profiling data patterns (HARP section 7.1.2).
 */

#include <gtest/gtest.h>

#include "core/data_pattern.hh"

namespace harp::core {
namespace {

TEST(DataPattern, Names)
{
    EXPECT_EQ(patternKindName(PatternKind::Random), "random");
    EXPECT_EQ(patternKindName(PatternKind::Charged), "charged");
    EXPECT_EQ(patternKindName(PatternKind::Checkered), "checkered");
    EXPECT_EQ(patternKindFromName("random"), PatternKind::Random);
    EXPECT_EQ(patternKindFromName("charged"), PatternKind::Charged);
    EXPECT_EQ(patternKindFromName("checkered"), PatternKind::Checkered);
    EXPECT_THROW(patternKindFromName("bogus"), std::invalid_argument);
}

TEST(DataPattern, ChargedIsAllOnesEveryRound)
{
    PatternGenerator gen(PatternKind::Charged, 64, 1);
    for (std::size_t r = 0; r < 6; ++r) {
        const gf2::BitVector p = gen.pattern(r);
        EXPECT_EQ(p.popcount(), 64u) << "round " << r;
    }
}

TEST(DataPattern, CheckeredAlternatesAndInverts)
{
    PatternGenerator gen(PatternKind::Checkered, 8, 1);
    const gf2::BitVector even = gen.pattern(0);
    EXPECT_EQ(even.toString(), "10101010");
    const gf2::BitVector odd = gen.pattern(1);
    EXPECT_EQ(odd.toString(), "01010101");
    // Pattern repeats with period 2.
    EXPECT_EQ(gen.pattern(2), even);
    EXPECT_EQ(gen.pattern(3), odd);
}

TEST(DataPattern, RandomInvertsEveryOtherRound)
{
    PatternGenerator gen(PatternKind::Random, 64, 7);
    gf2::BitVector ones(64);
    ones.fill(true);
    for (std::size_t r = 0; r < 8; r += 2) {
        const gf2::BitVector base = gen.pattern(r);
        gf2::BitVector inverted = gen.pattern(r + 1);
        inverted ^= ones;
        EXPECT_EQ(inverted, base) << "rounds " << r << "," << r + 1;
    }
}

TEST(DataPattern, RandomRefreshesAcrossPairs)
{
    PatternGenerator gen(PatternKind::Random, 64, 7);
    const gf2::BitVector first = gen.pattern(0);
    gen.pattern(1);
    const gf2::BitVector second = gen.pattern(2);
    EXPECT_NE(first, second); // 2^-64 collision chance
}

TEST(DataPattern, RandomDeterministicPerSeed)
{
    PatternGenerator a(PatternKind::Random, 64, 11);
    PatternGenerator b(PatternKind::Random, 64, 11);
    PatternGenerator c(PatternKind::Random, 64, 12);
    const gf2::BitVector pa = a.pattern(0);
    EXPECT_EQ(pa, b.pattern(0));
    EXPECT_NE(pa, c.pattern(0));
}

TEST(DataPattern, InversionGuaranteesEveryCellChargedWithinPair)
{
    // The pattern/inverse pair charges every true-cell at least once —
    // the property that lets HARP's active phase observe every at-risk
    // data cell.
    PatternGenerator gen(PatternKind::Random, 64, 3);
    for (std::size_t pair = 0; pair < 4; ++pair) {
        gf2::BitVector coverage = gen.pattern(2 * pair);
        coverage |= gen.pattern(2 * pair + 1);
        EXPECT_EQ(coverage.popcount(), 64u);
    }
}

} // namespace
} // namespace harp::core
