/**
 * @file
 * Focused tests of BEEP's pattern-crafting machinery and the
 * HARP-A+BEEP hybrid's phase switching.
 */

#include <gtest/gtest.h>

#include "common/rng.hh"
#include "core/beep_profiler.hh"
#include "core/harp_a_beep_profiler.hh"
#include "core/round_engine.hh"
#include "ecc/hamming_code.hh"

namespace harp::core {
namespace {

ecc::HammingCode
makeCode(std::uint64_t seed = 1)
{
    common::Xoshiro256 rng(seed);
    return ecc::HammingCode::randomSec(64, rng);
}

TEST(BeepDetails, NoCraftingBeforeFirstError)
{
    const ecc::HammingCode code = makeCode();
    BeepProfiler beep(code);
    common::Xoshiro256 rng(2);
    for (std::size_t r = 0; r < 5; ++r) {
        const gf2::BitVector suggested =
            gf2::BitVector::random(64, rng);
        EXPECT_EQ(beep.chooseDataword(r, suggested, rng), suggested);
    }
    EXPECT_TRUE(beep.suspectedCells().empty());
}

TEST(BeepDetails, CraftedPatternChargesParitySuspects)
{
    const ecc::HammingCode code = makeCode(3);
    BeepProfiler beep(code);
    // Suspect one data cell and one parity cell.
    beep.addSuspectedCell(12);
    beep.addSuspectedCell(66); // parity position (>= 64)
    common::Xoshiro256 rng(4);
    const gf2::BitVector suggested(64);
    const gf2::BitVector chosen = beep.chooseDataword(0, suggested, rng);
    EXPECT_TRUE(chosen.get(12));
    // The parity cell must be charged under the crafted dataword.
    const gf2::BitVector codeword = code.encode(chosen);
    EXPECT_TRUE(codeword.get(66));
}

TEST(BeepDetails, ProbeCursorCyclesThroughPositions)
{
    // Consecutive crafted patterns target different probe cells, so the
    // set of charged data cells varies across rounds.
    const ecc::HammingCode code = makeCode(5);
    BeepProfiler beep(code);
    beep.addSuspectedCell(3);
    common::Xoshiro256 rng(6);
    const gf2::BitVector suggested(64);
    std::set<std::vector<std::size_t>> distinct;
    for (std::size_t r = 0; r < 8; ++r)
        distinct.insert(
            beep.chooseDataword(r, suggested, rng).setBits());
    EXPECT_GE(distinct.size(), 6u);
}

TEST(BeepDetails, PrecomputeAddsPairTargets)
{
    const ecc::HammingCode code = makeCode(7);
    BeepProfiler beep(code);
    // Find a data pair whose syndrome maps to a third data position.
    std::size_t a = 0, b = 0, target = 0;
    bool found = false;
    for (std::size_t i = 0; i < 64 && !found; ++i) {
        for (std::size_t j = i + 1; j < 64 && !found; ++j) {
            const auto t = code.syndromeToPosition(
                code.dataColumn(i) ^ code.dataColumn(j));
            if (t && *t < 64) {
                a = i;
                b = j;
                target = *t;
                found = true;
            }
        }
    }
    ASSERT_TRUE(found);
    // Observation of {a, b} as post-correction errors must pre-add the
    // miscorrection target to the profile.
    gf2::BitVector written(64);
    gf2::BitVector post = written;
    post.flip(a);
    post.flip(b);
    const RoundObservation obs{0, written, post, written};
    beep.observe(obs);
    EXPECT_TRUE(beep.identified().get(target));
}

TEST(BeepDetails, ObservationOfNothingChangesNothing)
{
    const ecc::HammingCode code = makeCode(9);
    BeepProfiler beep(code);
    gf2::BitVector written(64);
    const RoundObservation obs{0, written, written, written};
    beep.observe(obs);
    EXPECT_TRUE(beep.identified().isZero());
    EXPECT_TRUE(beep.suspectedCells().empty());
}

TEST(HybridDetails, CraftingEngagesAfterStabilityWindow)
{
    const ecc::HammingCode code = makeCode(11);
    HarpABeepProfiler hybrid(code, /*stability_window=*/4);
    EXPECT_FALSE(hybrid.craftingActive());

    // Rounds with no direct errors: window counts up.
    gf2::BitVector written(64);
    for (int r = 0; r < 4; ++r) {
        const RoundObservation obs{static_cast<std::size_t>(r), written,
                                   written, written};
        hybrid.observe(obs);
    }
    EXPECT_TRUE(hybrid.craftingActive());

    // A fresh direct error resets the window.
    gf2::BitVector raw = written;
    raw.flip(20);
    const RoundObservation with_error{5, written, written, raw};
    hybrid.observe(with_error);
    EXPECT_FALSE(hybrid.craftingActive());
    EXPECT_TRUE(hybrid.identifiedDirect().get(20));
    EXPECT_EQ(hybrid.suspectedCells().count(20), 1u);

    // Re-observing the same (already known) direct error does not reset.
    for (int r = 0; r < 4; ++r) {
        const RoundObservation obs{static_cast<std::size_t>(6 + r),
                                   written, written, raw};
        hybrid.observe(obs);
    }
    EXPECT_TRUE(hybrid.craftingActive());
}

TEST(HybridDetails, FullRunKeepsDirectCoverageDespiteCrafting)
{
    // Even after switching to crafted patterns, the bypass path keeps
    // direct identification sound and the profile monotone.
    const ecc::HammingCode code = makeCode(13);
    common::Xoshiro256 rng(14);
    const fault::WordFaultModel fm =
        fault::WordFaultModel::makeUniformFixedCount(code.n(), 4, 0.75,
                                                     rng);
    HarpABeepProfiler hybrid(code, 4);
    RoundEngine engine(code, fm, PatternKind::Random, 15);
    std::vector<Profiler *> ps = {&hybrid};
    std::size_t prev = 0;
    for (int r = 0; r < 64; ++r) {
        engine.runRound(ps);
        EXPECT_GE(hybrid.identified().popcount(), prev);
        prev = hybrid.identified().popcount();
    }
    // All direct-at-risk data cells must be identified at p=0.75 in 64
    // rounds (the pre-crafting phase alone charges each cell ~16 times).
    gf2::BitVector direct_gt(code.k());
    for (const auto &f : fm.faults())
        if (f.position < code.k())
            direct_gt.set(f.position, true);
    gf2::BitVector covered = hybrid.identifiedDirect();
    covered &= direct_gt;
    EXPECT_EQ(covered, direct_gt);
}

} // namespace
} // namespace harp::core
