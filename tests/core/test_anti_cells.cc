/**
 * @file
 * Anti-cell coverage: the paper's evaluation assumes true-cells
 * (section 7.1.2), but real DRAM mixes true- and anti-cell regions. The
 * fault model, analyzer, and profilers must all honour the inverted
 * charge polarity.
 */

#include <gtest/gtest.h>

#include "common/rng.hh"
#include "core/at_risk_analyzer.hh"
#include "core/harp_profiler.hh"
#include "core/naive_profiler.hh"
#include "core/round_engine.hh"
#include "ecc/hamming_code.hh"

namespace harp::core {
namespace {

ecc::HammingCode
makeCode(std::uint64_t seed = 1)
{
    common::Xoshiro256 rng(seed);
    return ecc::HammingCode::randomSec(64, rng);
}

fault::WordFaultModel
antiModel(const ecc::HammingCode &code, std::size_t cells, double prob,
          std::uint64_t seed)
{
    common::Xoshiro256 rng(seed);
    const fault::WordFaultModel placement =
        fault::WordFaultModel::makeUniformFixedCount(code.n(), cells,
                                                     prob, rng);
    return fault::WordFaultModel(code.n(), placement.faults(),
                                 fault::CellTechnology::AntiCell);
}

TEST(AntiCells, ChargedPatternIsHarmlessToAntiCells)
{
    // All-ones data discharges anti-cells in the data region: at-risk
    // data cells cannot fail under the charged pattern.
    const ecc::HammingCode code = makeCode(2);
    const fault::WordFaultModel fm(
        code.n(), {{5, 1.0}, {30, 1.0}},
        fault::CellTechnology::AntiCell);
    RoundEngine engine(code, fm, PatternKind::Charged, 3);
    HarpUProfiler harp(code.k());
    std::vector<Profiler *> ps = {&harp};
    for (int r = 0; r < 16; ++r)
        engine.runRound(ps);
    EXPECT_TRUE(harp.identified().isZero());
}

TEST(AntiCells, InvertingPatternsStillCoverEverything)
{
    // Random + inversion charges every cell (of either polarity) once
    // per pattern pair, so HARP coverage is polarity-independent.
    for (std::uint64_t seed = 10; seed < 16; ++seed) {
        const ecc::HammingCode code = makeCode(seed);
        const fault::WordFaultModel fm =
            antiModel(code, 4, 1.0, seed + 100);
        const AtRiskAnalyzer analyzer(code, fm);
        RoundEngine engine(code, fm, PatternKind::Random, seed + 200);
        HarpUProfiler harp(code.k());
        std::vector<Profiler *> ps = {&harp};
        for (int r = 0; r < 2; ++r)
            engine.runRound(ps);
        gf2::BitVector covered = harp.identified();
        covered &= analyzer.directAtRisk();
        EXPECT_EQ(covered.popcount(),
                  analyzer.directAtRisk().popcount())
            << "seed " << seed;
    }
}

TEST(AntiCells, AnalyzerFeasibilityRespectsPolarity)
{
    // A probability-1 anti-cell outside the failing pattern must be
    // *charged-off*, i.e.\ store '1'; the analyzer's feasibility
    // constraints must use the inverted encoding.
    const ecc::HammingCode code = makeCode(4);
    const fault::WordFaultModel fm(
        code.n(), {{0, 1.0}, {1, 1.0}},
        fault::CellTechnology::AntiCell);
    const AtRiskAnalyzer analyzer(code, fm);
    // All three nonempty subsets remain feasible (data cells are freely
    // settable in either polarity).
    EXPECT_EQ(analyzer.outcomes().size(), 3u);
    EXPECT_EQ(analyzer.directAtRisk().popcount(), 2u);
}

TEST(AntiCells, PerBitProbabilityInvertsWithPattern)
{
    const ecc::HammingCode code = makeCode(5);
    const fault::WordFaultModel fm(
        code.n(), {{3, 0.5}, {7, 0.5}},
        fault::CellTechnology::AntiCell);
    const AtRiskAnalyzer analyzer(code, fm);

    // All-ones pattern: anti data cells discharged -> zero probability.
    gf2::BitVector ones(code.k());
    ones.fill(true);
    for (const double p : analyzer.perBitErrorProbability(ones))
        EXPECT_DOUBLE_EQ(p, 0.0);

    // All-zero pattern: anti data cells charged; the two at-risk cells
    // produce the n=2 signature (each visible when both fail: p = 0.25),
    // unless the pair syndrome hits parity/no column.
    const gf2::BitVector zeros(code.k());
    const std::vector<double> probs =
        analyzer.perBitErrorProbability(zeros);
    EXPECT_GT(probs[3] + probs[7], 0.0);
}

TEST(AntiCells, NaiveAndHarpOrderingUnchanged)
{
    std::size_t naive_total = 0, harp_total = 0, gt_total = 0;
    for (std::uint64_t seed = 20; seed < 28; ++seed) {
        const ecc::HammingCode code = makeCode(seed);
        const fault::WordFaultModel fm =
            antiModel(code, 3, 0.5, seed + 100);
        const AtRiskAnalyzer analyzer(code, fm);
        NaiveProfiler naive(code.k());
        HarpUProfiler harp(code.k());
        RoundEngine engine(code, fm, PatternKind::Random, seed + 200);
        std::vector<Profiler *> ps = {&naive, &harp};
        for (int r = 0; r < 32; ++r)
            engine.runRound(ps);
        gf2::BitVector n_cov = naive.identified();
        n_cov &= analyzer.directAtRisk();
        gf2::BitVector h_cov = harp.identified();
        h_cov &= analyzer.directAtRisk();
        naive_total += n_cov.popcount();
        harp_total += h_cov.popcount();
        gt_total += analyzer.directAtRisk().popcount();
    }
    EXPECT_EQ(harp_total, gt_total);
    EXPECT_LE(naive_total, harp_total);
}

} // namespace
} // namespace harp::core
