/**
 * @file
 * Unit and property tests for the ground-truth at-risk analyzer,
 * including a Monte-Carlo cross-check of the exact Fig. 4 probabilities
 * and the Table 2 amplification bound.
 */

#include <gtest/gtest.h>

#include <set>

#include "common/rng.hh"
#include "core/at_risk_analyzer.hh"
#include "gf2/linear_solver.hh"

namespace harp::core {
namespace {

ecc::HammingCode
makeCode(std::uint64_t seed = 1, std::size_t k = 64)
{
    common::Xoshiro256 rng(seed);
    return ecc::HammingCode::randomSec(k, rng);
}

TEST(AtRiskAnalyzer, NoFaultsNoRisk)
{
    const ecc::HammingCode code = makeCode();
    const fault::WordFaultModel fm(code.n(), {});
    const AtRiskAnalyzer analyzer(code, fm);
    EXPECT_TRUE(analyzer.outcomes().empty());
    EXPECT_TRUE(analyzer.directAtRisk().isZero());
    EXPECT_TRUE(analyzer.indirectAtRisk().isZero());
    EXPECT_TRUE(analyzer.postCorrectionAtRisk().isZero());
    const gf2::BitVector empty(code.k());
    EXPECT_EQ(analyzer.maxSimultaneousErrors(empty), 0u);
}

TEST(AtRiskAnalyzer, SingleDataFaultIsAlwaysCorrected)
{
    // One at-risk cell: SEC absorbs its only possible failing pattern, so
    // nothing is at risk of post-correction error — but the cell is still
    // at risk of *direct* (raw) error, which HARP identifies via bypass.
    const ecc::HammingCode code = makeCode();
    const fault::WordFaultModel fm(code.n(), {{10, 0.5}});
    const AtRiskAnalyzer analyzer(code, fm);
    ASSERT_EQ(analyzer.outcomes().size(), 1u);
    EXPECT_TRUE(analyzer.outcomes()[0].postErrors.empty());
    EXPECT_TRUE(analyzer.postCorrectionAtRisk().isZero());
    EXPECT_TRUE(analyzer.directAtRisk().get(10));
    EXPECT_EQ(analyzer.directAtRisk().popcount(), 1u);
}

TEST(AtRiskAnalyzer, TwoDataFaultsProduceThreeAtRiskBits)
{
    // If the pair syndrome maps to a third data column, the at-risk set is
    // {a, b, target} — Table 2's n=2 worst case of 2^2-1 = 3 bits.
    const ecc::HammingCode code = makeCode(3);
    std::optional<std::pair<std::size_t, std::size_t>> pair;
    std::size_t target_pos = 0;
    for (std::size_t i = 0; i < 64 && !pair; ++i) {
        for (std::size_t j = i + 1; j < 64 && !pair; ++j) {
            const auto target = code.syndromeToPosition(
                code.dataColumn(i) ^ code.dataColumn(j));
            if (target && *target < 64) {
                pair = {i, j};
                target_pos = *target;
            }
        }
    }
    ASSERT_TRUE(pair.has_value());
    const fault::WordFaultModel fm(
        code.n(), {{pair->first, 0.5}, {pair->second, 0.5}});
    const AtRiskAnalyzer analyzer(code, fm);

    EXPECT_EQ(analyzer.directAtRisk().popcount(), 2u);
    EXPECT_TRUE(analyzer.indirectAtRisk().get(target_pos));
    EXPECT_EQ(analyzer.indirectAtRisk().popcount(), 1u);
    EXPECT_EQ(analyzer.postCorrectionAtRisk().popcount(), 3u);
    // Worst case simultaneous: both direct fail + miscorrection = 3.
    const gf2::BitVector empty(code.k());
    EXPECT_EQ(analyzer.maxSimultaneousErrors(empty), 3u);
}

TEST(AtRiskAnalyzer, ParityFaultsCauseOnlyIndirectErrors)
{
    // Two parity-cell faults can only hurt data through a miscorrection.
    const ecc::HammingCode code = makeCode(5);
    std::optional<std::pair<std::size_t, std::size_t>> pair;
    std::size_t target_pos = 0;
    for (std::size_t i = 64; i < 71 && !pair; ++i) {
        for (std::size_t j = i + 1; j < 71 && !pair; ++j) {
            const auto target = code.syndromeToPosition(
                code.codewordColumn(i) ^ code.codewordColumn(j));
            if (target && *target < 64) {
                pair = {i, j};
                target_pos = *target;
            }
        }
    }
    ASSERT_TRUE(pair.has_value());
    const fault::WordFaultModel fm(
        code.n(), {{pair->first, 0.5}, {pair->second, 0.5}});
    const AtRiskAnalyzer analyzer(code, fm);
    EXPECT_TRUE(analyzer.directAtRisk().isZero());
    EXPECT_TRUE(analyzer.indirectAtRisk().get(target_pos));
    EXPECT_EQ(analyzer.postCorrectionAtRisk().popcount(), 1u);
    const gf2::BitVector empty(code.k());
    EXPECT_EQ(analyzer.maxSimultaneousErrors(empty), 1u);
}

TEST(AtRiskAnalyzer, OutcomesMatchDirectSimulation)
{
    // Property: for every feasible outcome, replaying the failing cells
    // against a real encode/corrupt/decode cycle yields exactly the
    // predicted post-correction errors. Uses probability-0.5 cells so
    // every subset is feasible with a suitable pattern.
    common::Xoshiro256 rng(7);
    for (int trial = 0; trial < 10; ++trial) {
        const ecc::HammingCode code = makeCode(100 + trial, 16);
        const fault::WordFaultModel fm =
            fault::WordFaultModel::makeUniformFixedCount(code.n(), 4, 0.5,
                                                         rng);
        const AtRiskAnalyzer analyzer(code, fm);
        for (const ErrorPatternOutcome &outcome : analyzer.outcomes()) {
            // Build a dataword that charges the failing cells (the
            // analyzer says one exists).
            gf2::ConstraintSystem cs(code.k());
            for (std::size_t i = 0; i < fm.numFaults(); ++i) {
                if (((outcome.failingMask >> i) & 1) == 0)
                    continue;
                const std::size_t pos = fm.faults()[i].position;
                if (pos < code.k()) {
                    cs.pinVariable(pos, true);
                } else {
                    cs.addConstraint(code.parityRow(pos - code.k()),
                                     true);
                }
            }
            const auto d = cs.solveAny();
            ASSERT_TRUE(d.has_value());
            gf2::BitVector received = code.encode(*d);
            for (std::size_t i = 0; i < fm.numFaults(); ++i)
                if ((outcome.failingMask >> i) & 1)
                    received.flip(fm.faults()[i].position);
            const ecc::DecodeResult decoded = code.decode(received);
            gf2::BitVector diff = decoded.dataword;
            diff ^= *d;
            std::vector<std::uint16_t> observed;
            diff.forEachSetBit([&](std::size_t b) {
                observed.push_back(static_cast<std::uint16_t>(b));
            });
            EXPECT_EQ(observed, outcome.postErrors);
            EXPECT_EQ(decoded.syndrome, outcome.syndrome);
        }
    }
}

TEST(AtRiskAnalyzer, Table2AmplificationBound)
{
    // Table 2: n at-risk cells yield at most 2^n - 1 bits at risk of
    // post-correction error; measured values respect the bound.
    common::Xoshiro256 rng(11);
    for (const std::size_t n : {1u, 2u, 3u, 4u}) {
        std::size_t max_seen = 0;
        for (int trial = 0; trial < 30; ++trial) {
            const ecc::HammingCode code = makeCode(500 + trial);
            const fault::WordFaultModel fm =
                fault::WordFaultModel::makeUniformFixedCount(code.n(), n,
                                                             0.5, rng);
            const AtRiskAnalyzer analyzer(code, fm);
            const std::size_t at_risk =
                analyzer.postCorrectionAtRisk().popcount();
            EXPECT_LE(at_risk, (std::size_t{1} << n) - 1);
            max_seen = std::max(max_seen, at_risk);
        }
        // The bound is approached in practice for small n.
        if (n >= 2) {
            EXPECT_GE(max_seen, n);
        }
    }
}

TEST(AtRiskAnalyzer, ProbabilityOneCellsConstrainFeasibility)
{
    // With p = 1.0 cells, a pattern excluding a charged p=1 cell is
    // impossible; feasibility must reflect the discharge requirement.
    // Construct: two data cells a, b with p=1. The pattern {a} alone is
    // feasible only by discharging b — always possible for data cells.
    const ecc::HammingCode code = makeCode(13);
    const fault::WordFaultModel fm(code.n(), {{0, 1.0}, {1, 1.0}});
    const AtRiskAnalyzer analyzer(code, fm);
    // All three nonempty subsets feasible: {a}, {b}, {a,b}.
    EXPECT_EQ(analyzer.outcomes().size(), 3u);
}

TEST(AtRiskAnalyzer, MaxSimultaneousShrinksWithProfile)
{
    common::Xoshiro256 rng(17);
    const ecc::HammingCode code = makeCode(19);
    const fault::WordFaultModel fm =
        fault::WordFaultModel::makeUniformFixedCount(code.n(), 4, 0.5,
                                                     rng);
    const AtRiskAnalyzer analyzer(code, fm);
    gf2::BitVector profile(code.k());
    const std::size_t before = analyzer.maxSimultaneousErrors(profile);
    profile = analyzer.postCorrectionAtRisk(); // repair everything
    EXPECT_EQ(analyzer.maxSimultaneousErrors(profile), 0u);
    EXPECT_GE(before, 1u);
}

TEST(AtRiskAnalyzer, UnsafeBitsZeroOnceDirectCovered)
{
    // HARP's core safety argument: with all direct-at-risk bits profiled,
    // at most one (indirect) post-correction error can occur at a time,
    // so no bit remains unsafe under a SEC secondary code.
    common::Xoshiro256 rng(23);
    for (int trial = 0; trial < 20; ++trial) {
        const ecc::HammingCode code = makeCode(700 + trial);
        const fault::WordFaultModel fm =
            fault::WordFaultModel::makeUniformFixedCount(code.n(), 5, 0.5,
                                                         rng);
        const AtRiskAnalyzer analyzer(code, fm);
        const gf2::BitVector &profile = analyzer.directAtRisk();
        EXPECT_LE(analyzer.maxSimultaneousErrors(profile), 1u);
        EXPECT_EQ(analyzer.unsafeBitsAfterReactive(profile), 0u);
    }
}

TEST(AtRiskAnalyzer, UnidentifiedAtRiskCounts)
{
    common::Xoshiro256 rng(29);
    const ecc::HammingCode code = makeCode(31);
    const fault::WordFaultModel fm =
        fault::WordFaultModel::makeUniformFixedCount(code.n(), 3, 0.5,
                                                     rng);
    const AtRiskAnalyzer analyzer(code, fm);
    const std::size_t total = analyzer.postCorrectionAtRisk().popcount();
    gf2::BitVector profile(code.k());
    EXPECT_EQ(analyzer.unidentifiedAtRisk(profile), total);
    profile = analyzer.postCorrectionAtRisk();
    EXPECT_EQ(analyzer.unidentifiedAtRisk(profile), 0u);
}

TEST(AtRiskAnalyzer, PerBitProbabilityMatchesMonteCarlo)
{
    // Cross-check the exact Fig. 4 computation against direct sampling.
    common::Xoshiro256 rng(37);
    const ecc::HammingCode code = makeCode(41);
    const fault::WordFaultModel fm =
        fault::WordFaultModel::makeUniformFixedCount(code.n(), 3, 0.5,
                                                     rng);
    const AtRiskAnalyzer analyzer(code, fm);

    gf2::BitVector charged(code.k());
    charged.fill(true);
    const std::vector<double> exact =
        analyzer.perBitErrorProbability(charged);

    const gf2::BitVector codeword = code.encode(charged);
    std::vector<std::size_t> fail_counts(code.k(), 0);
    const int trials = 40000;
    for (int t = 0; t < trials; ++t) {
        gf2::BitVector received = codeword;
        received ^= fm.injectErrors(codeword, rng);
        const ecc::DecodeResult decoded = code.decode(received);
        gf2::BitVector diff = decoded.dataword;
        diff ^= charged;
        diff.forEachSetBit([&](std::size_t b) { ++fail_counts[b]; });
    }
    for (std::size_t i = 0; i < code.k(); ++i) {
        const double sampled =
            static_cast<double>(fail_counts[i]) / trials;
        EXPECT_NEAR(sampled, exact[i], 0.02) << "bit " << i;
    }
}

TEST(AtRiskAnalyzer, PerBitProbabilityZeroWhenDischarged)
{
    // With an all-zero pattern no true-cell is charged: no errors at all.
    common::Xoshiro256 rng(43);
    const ecc::HammingCode code = makeCode(47);
    const fault::WordFaultModel fm =
        fault::WordFaultModel::makeUniformFixedCount(code.n(), 4, 0.5,
                                                     rng);
    const AtRiskAnalyzer analyzer(code, fm);
    // Pattern of all zeros discharges every data cell; parity bits of the
    // zero codeword are zero too.
    const gf2::BitVector zeros(code.k());
    for (const double p : analyzer.perBitErrorProbability(zeros))
        EXPECT_DOUBLE_EQ(p, 0.0);
}

TEST(AtRiskAnalyzer, TooManyCellsThrows)
{
    const ecc::HammingCode code = makeCode(53);
    std::vector<fault::CellFault> faults;
    for (std::size_t i = 0; i < 20; ++i)
        faults.push_back({i, 0.5});
    const fault::WordFaultModel fm(code.n(), faults);
    EXPECT_THROW(AtRiskAnalyzer(code, fm, 16), std::invalid_argument);
    EXPECT_NO_THROW(AtRiskAnalyzer(code, fm, 20));
}

} // namespace
} // namespace harp::core
