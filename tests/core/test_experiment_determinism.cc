/**
 * @file
 * Thread-count and seed determinism for the remaining experiment
 * drivers (Fig. 4 and the Fig. 10 case study): results must be exact
 * functions of the seed, independent of parallel scheduling — the
 * property that makes every bench output reproducible.
 */

#include <gtest/gtest.h>

#include <algorithm>
#include <cstdint>
#include <string>
#include <thread>
#include <vector>

#include "core/case_study_experiment.hh"
#include "core/fig4_experiment.hh"
#include "support/golden.hh"

namespace harp::core {
namespace {

/**
 * Golden hash of a complete Fig. 4 result: every sample of every row's
 * distributions, via sorted order so the hash is schedule-independent
 * but still bit-exact on the double values themselves.
 */
std::uint64_t
hashOf(const Fig4Result &result)
{
    // Every variable-length sequence goes through goldenOf, which mixes
    // the length first, so moving a sample between adjacent sequences
    // cannot produce a colliding byte stream.
    std::uint64_t hash = test::goldenMix(test::kGoldenInit,
                                         result.rows.size());
    for (const Fig4Row &row : result.rows) {
        hash = test::goldenMix(hash, row.numPreCorrectionErrors);
        hash = test::goldenMix(hash,
                               test::goldenOf(row.postCorrection
                                                  .sortedSamples()));
        hash = test::goldenMix(hash,
                               test::goldenOf(row.preCorrection
                                                  .sortedSamples()));
    }
    return hash;
}

/** Golden hash of a complete case-study result, every series value. */
std::uint64_t
hashOf(const CaseStudyResult &result)
{
    std::uint64_t hash = test::goldenMix(test::kGoldenInit,
                                         result.series.size());
    for (const CaseStudySeries &series : result.series) {
        hash = test::goldenMix(hash, series.profiler.size());
        hash = test::goldenMix(hash, series.profiler);
        hash = test::goldenMixDouble(hash, series.rber);
        hash = test::goldenMix(hash, test::goldenOf(series.berBefore));
        hash = test::goldenMix(hash, test::goldenOf(series.berAfter));
    }
    for (const std::string &name : result.profilerNames) {
        hash = test::goldenMix(hash, name.size());
        hash = test::goldenMix(hash, name);
    }
    for (const std::size_t rounds : result.roundsToZeroAfter)
        hash = test::goldenMix(hash, rounds);
    return hash;
}

/** Pool sizes every experiment must agree across: serial, small, the
 *  full machine, and an oversubscribed pool (8 exceeds 4 cores and, on
 *  wider machines, hw covers the full-width case). Deduplicated — on a
 *  4-core machine {1, 4, hw, 8} collapses to {1, 4, 8}. */
std::vector<std::size_t>
poolSizesUnderTest()
{
    const unsigned hw = std::thread::hardware_concurrency();
    std::vector<std::size_t> sizes{1, 4, hw == 0 ? 1 : hw, 8};
    std::sort(sizes.begin(), sizes.end());
    sizes.erase(std::unique(sizes.begin(), sizes.end()), sizes.end());
    return sizes;
}

/**
 * Bit-identical results for any ThreadPool size: the hash covers every
 * double of every row/series, so a single sample differing anywhere —
 * even in the last ULP — fails the comparison.
 */
class PoolSizeDeterminism : public ::testing::TestWithParam<std::size_t>
{
};

TEST_P(PoolSizeDeterminism, Fig4BitIdenticalToSerialBaseline)
{
    Fig4Config config;
    config.numCodes = 5;
    config.wordsPerCode = 6;
    config.minPreCorrectionErrors = 2;
    config.maxPreCorrectionErrors = 4;
    config.seed = 1234;

    // Serial baseline shared across all instantiations of this test.
    static const std::uint64_t baseline = [config]() mutable {
        config.threads = 1;
        return hashOf(runFig4Experiment(config));
    }();

    config.threads = GetParam();
    EXPECT_TRUE(test::goldenMatches(hashOf(runFig4Experiment(config)),
                                    baseline))
        << "Fig4 result diverges at pool size " << GetParam();
}

TEST_P(PoolSizeDeterminism, CaseStudyBitIdenticalToSerialBaseline)
{
    CaseStudyConfig config;
    config.perBitProbability = 0.5;
    config.samplesPerCellCount = 3;
    config.maxConditionedCells = 3;
    config.rounds = 24;
    config.seed = 99;

    static const std::uint64_t baseline = [config]() mutable {
        config.threads = 1;
        return hashOf(runCaseStudyExperiment(config));
    }();

    config.threads = GetParam();
    EXPECT_TRUE(test::goldenMatches(hashOf(runCaseStudyExperiment(config)),
                                    baseline))
        << "CaseStudy result diverges at pool size " << GetParam();
}

INSTANTIATE_TEST_SUITE_P(PoolSizes, PoolSizeDeterminism,
                         ::testing::ValuesIn(poolSizesUnderTest()));

TEST(ExperimentDeterminism, Fig4SeedSensitivity)
{
    Fig4Config config;
    config.numCodes = 4;
    config.wordsPerCode = 6;
    config.minPreCorrectionErrors = 3;
    config.maxPreCorrectionErrors = 3;
    config.threads = 2;

    config.seed = 1;
    const Fig4Result a = runFig4Experiment(config);
    config.seed = 2;
    const Fig4Result b = runFig4Experiment(config);
    // Different seeds draw different codes/faults: the sample sets
    // should differ (identical medians are astronomically unlikely to
    // co-occur with identical counts and means).
    const bool identical =
        a.rows[0].postCorrection.count() ==
            b.rows[0].postCorrection.count() &&
        a.rows[0].postCorrection.mean() ==
            b.rows[0].postCorrection.mean();
    EXPECT_FALSE(identical);
}

TEST(ExperimentDeterminism, CaseStudyRepeatableForFixedSeed)
{
    CaseStudyConfig config;
    config.perBitProbability = 0.75;
    config.samplesPerCellCount = 3;
    config.maxConditionedCells = 2;
    config.rounds = 16;
    config.seed = 11;
    config.threads = 4;
    const CaseStudyResult a = runCaseStudyExperiment(config);
    const CaseStudyResult b = runCaseStudyExperiment(config);
    ASSERT_EQ(a.series.size(), b.series.size());
    for (std::size_t s = 0; s < a.series.size(); ++s)
        EXPECT_EQ(a.series[s].berBefore, b.series[s].berBefore);
}

} // namespace
} // namespace harp::core
