/**
 * @file
 * Thread-count and seed determinism for the remaining experiment
 * drivers (Fig. 4 and the Fig. 10 case study): results must be exact
 * functions of the seed, independent of parallel scheduling — the
 * property that makes every bench output reproducible.
 */

#include <gtest/gtest.h>

#include "core/case_study_experiment.hh"
#include "core/fig4_experiment.hh"

namespace harp::core {
namespace {

TEST(ExperimentDeterminism, Fig4IndependentOfThreadCount)
{
    Fig4Config config;
    config.numCodes = 6;
    config.wordsPerCode = 8;
    config.minPreCorrectionErrors = 2;
    config.maxPreCorrectionErrors = 5;
    config.seed = 42;

    config.threads = 1;
    const Fig4Result serial = runFig4Experiment(config);
    config.threads = 8;
    const Fig4Result parallel = runFig4Experiment(config);

    ASSERT_EQ(serial.rows.size(), parallel.rows.size());
    for (std::size_t i = 0; i < serial.rows.size(); ++i) {
        EXPECT_EQ(serial.rows[i].postCorrection.count(),
                  parallel.rows[i].postCorrection.count());
        for (const double q : {0.0, 0.25, 0.5, 0.75, 1.0})
            EXPECT_DOUBLE_EQ(
                serial.rows[i].postCorrection.quantile(q),
                parallel.rows[i].postCorrection.quantile(q))
                << "row " << i << " q " << q;
    }
}

TEST(ExperimentDeterminism, Fig4SeedSensitivity)
{
    Fig4Config config;
    config.numCodes = 4;
    config.wordsPerCode = 6;
    config.minPreCorrectionErrors = 3;
    config.maxPreCorrectionErrors = 3;
    config.threads = 2;

    config.seed = 1;
    const Fig4Result a = runFig4Experiment(config);
    config.seed = 2;
    const Fig4Result b = runFig4Experiment(config);
    // Different seeds draw different codes/faults: the sample sets
    // should differ (identical medians are astronomically unlikely to
    // co-occur with identical counts and means).
    const bool identical =
        a.rows[0].postCorrection.count() ==
            b.rows[0].postCorrection.count() &&
        a.rows[0].postCorrection.mean() ==
            b.rows[0].postCorrection.mean();
    EXPECT_FALSE(identical);
}

TEST(ExperimentDeterminism, CaseStudyIndependentOfThreadCount)
{
    CaseStudyConfig config;
    config.perBitProbability = 0.5;
    config.samplesPerCellCount = 4;
    config.maxConditionedCells = 3;
    config.rounds = 32;
    config.seed = 7;

    config.threads = 1;
    const CaseStudyResult serial = runCaseStudyExperiment(config);
    config.threads = 8;
    const CaseStudyResult parallel = runCaseStudyExperiment(config);

    ASSERT_EQ(serial.series.size(), parallel.series.size());
    for (std::size_t s = 0; s < serial.series.size(); ++s) {
        for (std::size_t r = 0; r < config.rounds; ++r) {
            EXPECT_DOUBLE_EQ(serial.series[s].berBefore[r],
                             parallel.series[s].berBefore[r])
                << "series " << s << " round " << r;
            EXPECT_DOUBLE_EQ(serial.series[s].berAfter[r],
                             parallel.series[s].berAfter[r]);
        }
    }
    EXPECT_EQ(serial.roundsToZeroAfter, parallel.roundsToZeroAfter);
}

TEST(ExperimentDeterminism, CaseStudyRepeatableForFixedSeed)
{
    CaseStudyConfig config;
    config.perBitProbability = 0.75;
    config.samplesPerCellCount = 3;
    config.maxConditionedCells = 2;
    config.rounds = 16;
    config.seed = 11;
    config.threads = 4;
    const CaseStudyResult a = runCaseStudyExperiment(config);
    const CaseStudyResult b = runCaseStudyExperiment(config);
    ASSERT_EQ(a.series.size(), b.series.size());
    for (std::size_t s = 0; s < a.series.size(); ++s)
        EXPECT_EQ(a.series[s].berBefore, b.series[s].berBefore);
}

} // namespace
} // namespace harp::core
