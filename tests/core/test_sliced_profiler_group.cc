/**
 * @file
 * Unit tests for the lane-native observation subsystem
 * (core/sliced_profiler_group.hh): group formation rules, lazy
 * flush-on-read semantics, equivalence with scalar observe() calls for
 * every lane-native profiler kind, and attach/detach lifetime safety.
 */

#include <gtest/gtest.h>

#include <memory>
#include <vector>

#include "core/beep_profiler.hh"
#include "core/harp_a_beep_profiler.hh"
#include "core/harp_profiler.hh"
#include "core/naive_profiler.hh"
#include "core/sliced_profiler_group.hh"
#include "ecc/hamming_code.hh"
#include "gf2/bit_slice.hh"

namespace harp::core {
namespace {

constexpr std::size_t kBits = 16;

/** Gather per-lane words into (written, post, received) slices. */
struct LaneRound
{
    explicit LaneRound(std::size_t n)
        : written(kBits), post(kBits), received(n)
    {
    }

    void load(const std::vector<gf2::BitVector> &w,
              const std::vector<gf2::BitVector> &p,
              const std::vector<gf2::BitVector> &r)
    {
        written.gather(w);
        post.gather(p);
        received.gather(r);
    }

    RoundLaneObservation obs(std::size_t round) const
    {
        return {round, written, post, received};
    }

    gf2::BitSlice64 written;
    gf2::BitSlice64 post;
    gf2::BitSlice64 received;
};

TEST(SlicedProfilerGroup, FormationRules)
{
    common::Xoshiro256 rng(1);
    const ecc::HammingCode code = ecc::HammingCode::randomSec(kBits, rng);

    NaiveProfiler naive_a(kBits), naive_b(kBits);
    HarpUProfiler harp_u(kBits);
    HarpAProfiler harp_a(code);
    BeepProfiler beep(code);
    HarpABeepProfiler hybrid(code);
    NaiveProfiler short_k(kBits / 2);

    // Same-kind slots form; kind is carried through.
    auto naive_group = SlicedProfilerGroup::tryMake(
        {&naive_a, &naive_b}, kBits);
    ASSERT_NE(naive_group, nullptr);
    EXPECT_EQ(naive_group->kind(), LaneObserveKind::PostCorrection);
    naive_group.reset();

    auto aware_group = SlicedProfilerGroup::tryMake({&harp_a}, kBits);
    ASSERT_NE(aware_group, nullptr);
    EXPECT_EQ(aware_group->kind(), LaneObserveKind::BypassAware);
    aware_group.reset();

    // Crafting profilers never form groups.
    EXPECT_EQ(SlicedProfilerGroup::tryMake({&beep}, kBits), nullptr);
    EXPECT_EQ(SlicedProfilerGroup::tryMake({&hybrid}, kBits), nullptr);
    // Mixed kinds across lanes do not form.
    EXPECT_EQ(SlicedProfilerGroup::tryMake({&naive_a, &harp_u}, kBits),
              nullptr);
    EXPECT_EQ(SlicedProfilerGroup::tryMake({&harp_u, &harp_a}, kBits),
              nullptr);
    // Dataword-length mismatches do not form.
    EXPECT_EQ(SlicedProfilerGroup::tryMake({&naive_a, &short_k}, kBits),
              nullptr);
    // Empty slots do not form.
    EXPECT_EQ(SlicedProfilerGroup::tryMake({}, kBits), nullptr);
}

TEST(SlicedProfilerGroup, FlushOnReadMatchesScalarObserve)
{
    // Two lanes of every lane-native kind driven through the group,
    // with twin profilers driven through scalar observe() as the
    // reference; reading identified() mid-run must already flush.
    common::Xoshiro256 rng(2);
    const ecc::HammingCode code_a =
        ecc::HammingCode::randomSec(kBits, rng);
    const ecc::HammingCode code_b =
        ecc::HammingCode::randomSec(kBits, rng);
    const std::size_t n = code_a.n();

    NaiveProfiler naive_lane0(kBits), naive_lane1(kBits);
    NaiveProfiler naive_ref0(kBits), naive_ref1(kBits);
    HarpUProfiler harpu_lane0(kBits), harpu_lane1(kBits);
    HarpUProfiler harpu_ref0(kBits), harpu_ref1(kBits);
    HarpAProfiler harpa_lane0(code_a), harpa_lane1(code_b);
    HarpAProfiler harpa_ref0(code_a), harpa_ref1(code_b);

    auto naive_group = SlicedProfilerGroup::tryMake(
        {&naive_lane0, &naive_lane1}, kBits);
    auto harpu_group = SlicedProfilerGroup::tryMake(
        {&harpu_lane0, &harpu_lane1}, kBits);
    auto harpa_group = SlicedProfilerGroup::tryMake(
        {&harpa_lane0, &harpa_lane1}, kBits);
    ASSERT_NE(naive_group, nullptr);
    ASSERT_NE(harpu_group, nullptr);
    ASSERT_NE(harpa_group, nullptr);

    LaneRound lanes(n);
    for (std::size_t round = 0; round < 24; ++round) {
        std::vector<gf2::BitVector> written, post, received;
        for (std::size_t w = 0; w < 2; ++w) {
            written.push_back(gf2::BitVector::random(kBits, rng));
            // Post and raw each differ from written in a few random
            // positions (incl. none), exercising growth and repeats.
            gf2::BitVector p = written.back();
            gf2::BitVector r(n);
            r.assignPrefix(written.back());
            for (std::size_t e = rng.nextBelow(3); e > 0; --e)
                p.flip(rng.nextBelow(kBits));
            for (std::size_t e = rng.nextBelow(3); e > 0; --e)
                r.flip(rng.nextBelow(kBits));
            post.push_back(std::move(p));
            received.push_back(std::move(r));
        }
        lanes.load(written, post, received);
        naive_group->observeLanes(lanes.obs(round));
        harpu_group->observeLanes(lanes.obs(round));
        harpa_group->observeLanes(lanes.obs(round));

        std::vector<gf2::BitVector> raw;
        for (std::size_t w = 0; w < 2; ++w)
            raw.push_back(received[w].slice(0, kBits));
        for (std::size_t w = 0; w < 2; ++w) {
            const RoundObservation obs{round, written[w], post[w],
                                       raw[w]};
            (w == 0 ? naive_ref0 : naive_ref1).observe(obs);
            (w == 0 ? harpu_ref0 : harpu_ref1).observe(obs);
            (w == 0 ? harpa_ref0 : harpa_ref1).observe(obs);
        }

        // identified() flushes pending lane state transparently.
        EXPECT_EQ(naive_lane0.identified(), naive_ref0.identified());
        EXPECT_EQ(naive_lane1.identified(), naive_ref1.identified());
        EXPECT_EQ(harpu_lane0.identified(), harpu_ref0.identified());
        EXPECT_EQ(harpu_lane1.identified(), harpu_ref1.identified());
        EXPECT_EQ(harpa_lane0.identified(), harpa_ref0.identified());
        EXPECT_EQ(harpa_lane1.identified(), harpa_ref1.identified());
        // Direct profiles flush through the same path.
        EXPECT_EQ(harpu_lane0.identifiedDirect(),
                  harpu_ref0.identifiedDirect());
        EXPECT_EQ(harpa_lane1.identifiedDirect(),
                  harpa_ref1.identifiedDirect());
        EXPECT_FALSE(naive_group->dirty());
    }
}

TEST(SlicedProfilerGroup, LazyFlushOnlyOnRead)
{
    common::Xoshiro256 rng(3);
    NaiveProfiler lane(kBits);
    auto group = SlicedProfilerGroup::tryMake({&lane}, kBits);
    ASSERT_NE(group, nullptr);
    EXPECT_FALSE(group->dirty());

    LaneRound lanes(kBits + 5);
    gf2::BitVector written = gf2::BitVector::random(kBits, rng);
    gf2::BitVector post = written;
    post.flip(7);
    gf2::BitVector received(kBits + 5);
    lanes.load({written}, {post}, {received});
    group->observeLanes(lanes.obs(0));
    EXPECT_TRUE(group->dirty());

    // Reading the profile flushes; the flushed state sticks.
    EXPECT_TRUE(lane.identified().get(7));
    EXPECT_FALSE(group->dirty());
    EXPECT_EQ(lane.identified().popcount(), 1u);
}

TEST(SlicedProfilerGroup, GroupDestructionFlushesAndDetaches)
{
    common::Xoshiro256 rng(4);
    NaiveProfiler lane(kBits);
    {
        auto group = SlicedProfilerGroup::tryMake({&lane}, kBits);
        ASSERT_NE(group, nullptr);
        LaneRound lanes(kBits);
        gf2::BitVector written = gf2::BitVector::random(kBits, rng);
        gf2::BitVector post = written;
        post.flip(3);
        lanes.load({written}, {post}, {written});
        group->observeLanes(lanes.obs(0));
        // No read before destruction: the dtor must flush.
    }
    EXPECT_TRUE(lane.identified().get(3));
}

TEST(SlicedProfilerGroup, ProfilerDestructionIsSafe)
{
    common::Xoshiro256 rng(5);
    auto doomed = std::make_unique<NaiveProfiler>(kBits);
    NaiveProfiler survivor(kBits);
    auto group = SlicedProfilerGroup::tryMake(
        {doomed.get(), &survivor}, kBits);
    ASSERT_NE(group, nullptr);

    LaneRound lanes(kBits);
    gf2::BitVector w0 = gf2::BitVector::random(kBits, rng);
    gf2::BitVector w1 = gf2::BitVector::random(kBits, rng);
    gf2::BitVector p0 = w0, p1 = w1;
    p0.flip(1);
    p1.flip(2);
    lanes.load({w0, w1}, {p0, p1}, {w0, w1});
    group->observeLanes(lanes.obs(0));

    // Destroying a wrapped profiler mid-run unregisters it; further
    // observation and flushing must leave the survivor correct.
    doomed.reset();
    p1.flip(9);
    lanes.load({w0, w1}, {p0, p1}, {w0, w1});
    group->observeLanes(lanes.obs(1));
    EXPECT_TRUE(survivor.identified().get(2));
    EXPECT_TRUE(survivor.identified().get(9));
    group.reset();
    EXPECT_EQ(survivor.identified().popcount(), 2u);
}

TEST(SlicedProfilerGroup, ReattachHandsOffCleanly)
{
    // A second group over the same profiler flushes the first group's
    // pending state; destroying the stale first group later must not
    // clobber the new attachment.
    common::Xoshiro256 rng(6);
    NaiveProfiler lane(kBits);
    auto first = SlicedProfilerGroup::tryMake({&lane}, kBits);
    ASSERT_NE(first, nullptr);

    LaneRound lanes(kBits);
    gf2::BitVector written = gf2::BitVector::random(kBits, rng);
    gf2::BitVector post = written;
    post.flip(4);
    lanes.load({written}, {post}, {written});
    first->observeLanes(lanes.obs(0));

    auto second = SlicedProfilerGroup::tryMake({&lane}, kBits);
    ASSERT_NE(second, nullptr);
    // The hand-off flushed round 0.
    EXPECT_TRUE(lane.identified().get(4));
    first.reset();

    post.flip(11);
    lanes.load({written}, {post}, {written});
    second->observeLanes(lanes.obs(1));
    EXPECT_TRUE(lane.identified().get(11));
    EXPECT_EQ(lane.identified().popcount(), 2u);
}

} // namespace
} // namespace harp::core
