/**
 * @file
 * Unit tests for the round engine: determinism, common random numbers,
 * and the fairness guarantee across profilers.
 */

#include <gtest/gtest.h>

#include "common/rng.hh"
#include "core/harp_profiler.hh"
#include "core/naive_profiler.hh"
#include "core/round_engine.hh"

namespace harp::core {
namespace {

ecc::HammingCode
makeCode(std::uint64_t seed = 1)
{
    common::Xoshiro256 rng(seed);
    return ecc::HammingCode::randomSec(64, rng);
}

TEST(RoundEngine, RoundCounterAdvances)
{
    const ecc::HammingCode code = makeCode();
    common::Xoshiro256 rng(2);
    const fault::WordFaultModel fm =
        fault::WordFaultModel::makeUniformFixedCount(code.n(), 2, 0.5,
                                                     rng);
    RoundEngine engine(code, fm, PatternKind::Random, 7);
    NaiveProfiler naive(code.k());
    std::vector<Profiler *> ps = {&naive};
    EXPECT_EQ(engine.roundsRun(), 0u);
    engine.runRound(ps);
    engine.runRound(ps);
    EXPECT_EQ(engine.roundsRun(), 2u);
}

TEST(RoundEngine, DeterministicForFixedSeed)
{
    const ecc::HammingCode code = makeCode();
    common::Xoshiro256 rng(3);
    const fault::WordFaultModel fm =
        fault::WordFaultModel::makeUniformFixedCount(code.n(), 3, 0.5,
                                                     rng);

    auto run = [&](std::uint64_t seed) {
        RoundEngine engine(code, fm, PatternKind::Random, seed);
        HarpUProfiler harp(code.k());
        std::vector<Profiler *> ps = {&harp};
        for (int r = 0; r < 32; ++r)
            engine.runRound(ps);
        return harp.identified();
    };
    EXPECT_EQ(run(11), run(11));
}

TEST(RoundEngine, DifferentSeedsDifferentHistories)
{
    const ecc::HammingCode code = makeCode();
    common::Xoshiro256 rng(4);
    const fault::WordFaultModel fm =
        fault::WordFaultModel::makeUniformFixedCount(code.n(), 3, 0.5,
                                                     rng);
    // Early identification histories differ across seeds with high
    // probability; compare the 4-round profile over several seeds.
    int distinct = 0;
    std::optional<gf2::BitVector> prev;
    for (std::uint64_t seed = 0; seed < 8; ++seed) {
        RoundEngine engine(code, fm, PatternKind::Random, seed);
        HarpUProfiler harp(code.k());
        std::vector<Profiler *> ps = {&harp};
        for (int r = 0; r < 4; ++r)
            engine.runRound(ps);
        if (prev && !(harp.identified() == *prev))
            ++distinct;
        prev = harp.identified();
    }
    EXPECT_GT(distinct, 0);
}

TEST(RoundEngine, IdenticalProfilersGetIdenticalObservations)
{
    // Two HARP-U instances run side by side must build identical
    // profiles: common random numbers + same suggested patterns.
    const ecc::HammingCode code = makeCode(5);
    common::Xoshiro256 rng(5);
    const fault::WordFaultModel fm =
        fault::WordFaultModel::makeUniformFixedCount(code.n(), 4, 0.5,
                                                     rng);
    RoundEngine engine(code, fm, PatternKind::Random, 13);
    HarpUProfiler a(code.k()), b(code.k());
    NaiveProfiler naive(code.k());
    std::vector<Profiler *> ps = {&a, &naive, &b};
    for (int r = 0; r < 32; ++r) {
        engine.runRound(ps);
        EXPECT_EQ(a.identified(), b.identified()) << "round " << r;
    }
}

TEST(RoundEngine, CrnMakesNaiveObservationsSubsetOfHarp)
{
    // Under common random numbers with identical patterns, every raw
    // error Naive could have seen post-correction stems from the same
    // failures HARP sees raw: Naive's identified set (excluding
    // miscorrection positions) is contained in HARP-U's.
    const ecc::HammingCode code = makeCode(6);
    common::Xoshiro256 rng(6);
    const fault::WordFaultModel fm =
        fault::WordFaultModel::makeUniformFixedCount(code.n(), 3, 0.5,
                                                     rng);
    RoundEngine engine(code, fm, PatternKind::Random, 17);
    NaiveProfiler naive(code.k());
    HarpUProfiler harp(code.k());
    std::vector<Profiler *> ps = {&naive, &harp};
    gf2::BitVector direct_gt(code.k());
    for (const auto &f : fm.faults())
        if (f.position < code.k())
            direct_gt.set(f.position, true);
    for (int r = 0; r < 64; ++r)
        engine.runRound(ps);
    gf2::BitVector naive_direct = naive.identified();
    naive_direct &= direct_gt;
    gf2::BitVector overlap = naive_direct;
    overlap &= harp.identified();
    EXPECT_EQ(overlap, naive_direct);
}

TEST(RoundEngine, ChargedPatternOnlyExcitesChargedCells)
{
    // With the all-ones pattern, parity cells that encode to '0' can
    // never fail; a HARP profile after many rounds contains only data
    // positions (trivially, since profiles are data-side) and exactly
    // the at-risk data cells.
    const ecc::HammingCode code = makeCode(7);
    const fault::WordFaultModel fm(code.n(),
                                   {{2, 1.0}, {40, 1.0}});
    RoundEngine engine(code, fm, PatternKind::Charged, 19);
    HarpUProfiler harp(code.k());
    std::vector<Profiler *> ps = {&harp};
    engine.runRound(ps);
    EXPECT_EQ(harp.identified().setBits(),
              (std::vector<std::size_t>{2, 40}));
}

} // namespace
} // namespace harp::core
