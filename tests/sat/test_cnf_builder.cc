/**
 * @file
 * Unit and property tests for the CNF constraint encodings, including a
 * cross-check of XOR constraints against the GF(2) linear solver (the two
 * independent engines the repository uses for feasibility questions).
 */

#include <gtest/gtest.h>

#include <vector>

#include "common/rng.hh"
#include "gf2/linear_solver.hh"
#include "sat/cnf_builder.hh"

namespace harp::sat {
namespace {

TEST(CnfBuilder, XorTwoVariables)
{
    CnfBuilder b;
    const auto vars = b.newVars(2);
    b.addXor({Lit::make(vars[0], true), Lit::make(vars[1], true)}, true);
    ASSERT_EQ(b.solver().solve(), SolveResult::Sat);
    EXPECT_NE(b.solver().modelValue(vars[0]),
              b.solver().modelValue(vars[1]));
}

TEST(CnfBuilder, XorParityZero)
{
    CnfBuilder b;
    const auto vars = b.newVars(3);
    std::vector<Lit> lits;
    for (const Var v : vars)
        lits.push_back(Lit::make(v, true));
    b.addXor(lits, false);
    ASSERT_EQ(b.solver().solve(), SolveResult::Sat);
    int ones = 0;
    for (const Var v : vars)
        ones += b.solver().modelValue(v) ? 1 : 0;
    EXPECT_EQ(ones % 2, 0);
}

TEST(CnfBuilder, LongXorUsesChunking)
{
    // 24 literals exceeds the direct-expansion chunk; correctness must be
    // preserved through the auxiliary-variable chain.
    CnfBuilder b;
    const auto vars = b.newVars(24);
    std::vector<Lit> lits;
    for (const Var v : vars)
        lits.push_back(Lit::make(v, true));
    b.addXor(lits, true);
    ASSERT_EQ(b.solver().solve(), SolveResult::Sat);
    int ones = 0;
    for (const Var v : vars)
        ones += b.solver().modelValue(v) ? 1 : 0;
    EXPECT_EQ(ones % 2, 1);
}

TEST(CnfBuilder, EmptyXor)
{
    CnfBuilder sat_ok;
    EXPECT_TRUE(sat_ok.addXor({}, false));
    CnfBuilder unsat;
    unsat.newVar();
    EXPECT_FALSE(unsat.addXor({}, true));
    EXPECT_EQ(unsat.solver().solve(), SolveResult::Unsat);
}

TEST(CnfBuilder, XorWithNegatedLiterals)
{
    // ¬x ⊕ y = 1 means x == y.
    CnfBuilder b;
    const auto vars = b.newVars(2);
    b.addXor({Lit::make(vars[0], false), Lit::make(vars[1], true)}, true);
    b.addClause(Clause{Lit::make(vars[0], true)});
    ASSERT_EQ(b.solver().solve(), SolveResult::Sat);
    EXPECT_TRUE(b.solver().modelValue(vars[1]));
}

TEST(CnfBuilder, AtMostOne)
{
    CnfBuilder b;
    const auto vars = b.newVars(4);
    std::vector<Lit> lits;
    for (const Var v : vars)
        lits.push_back(Lit::make(v, true));
    b.addAtMostOne(lits);
    // Force two true -> UNSAT.
    b.addClause(Clause{lits[0]});
    b.addClause(Clause{lits[2]});
    EXPECT_EQ(b.solver().solve(), SolveResult::Unsat);
}

TEST(CnfBuilder, ExactlyOne)
{
    CnfBuilder b;
    const auto vars = b.newVars(5);
    std::vector<Lit> lits;
    for (const Var v : vars)
        lits.push_back(Lit::make(v, true));
    b.addExactlyOne(lits);
    ASSERT_EQ(b.solver().solve(), SolveResult::Sat);
    int ones = 0;
    for (const Var v : vars)
        ones += b.solver().modelValue(v) ? 1 : 0;
    EXPECT_EQ(ones, 1);
}

TEST(CnfBuilder, Implication)
{
    CnfBuilder b;
    const auto vars = b.newVars(2);
    b.addImplies(Lit::make(vars[0], true), Lit::make(vars[1], true));
    b.addClause(Clause{Lit::make(vars[0], true)});
    ASSERT_EQ(b.solver().solve(), SolveResult::Sat);
    EXPECT_TRUE(b.solver().modelValue(vars[1]));
}

TEST(CnfBuilder, DefineAndSemantics)
{
    for (const bool va : {false, true}) {
        for (const bool vb : {false, true}) {
            CnfBuilder b;
            const auto vars = b.newVars(2);
            const Var y =
                b.defineAnd(Lit::make(vars[0], true),
                            Lit::make(vars[1], true));
            b.addClause(Clause{Lit::make(vars[0], va)});
            b.addClause(Clause{Lit::make(vars[1], vb)});
            ASSERT_EQ(b.solver().solve(), SolveResult::Sat);
            EXPECT_EQ(b.solver().modelValue(y), va && vb);
        }
    }
}

TEST(CnfBuilder, DefineOrSemantics)
{
    for (const bool va : {false, true}) {
        for (const bool vb : {false, true}) {
            CnfBuilder b;
            const auto vars = b.newVars(2);
            const Var y = b.defineOr({Lit::make(vars[0], true),
                                      Lit::make(vars[1], true)});
            b.addClause(Clause{Lit::make(vars[0], va)});
            b.addClause(Clause{Lit::make(vars[1], vb)});
            ASSERT_EQ(b.solver().solve(), SolveResult::Sat);
            EXPECT_EQ(b.solver().modelValue(y), va || vb);
        }
    }
}

/**
 * Property: a random GF(2) linear system is SAT-feasible iff the Gaussian
 * elimination solver finds it consistent. This is the exact cross-check
 * HARP uses to validate its enumeration-based ground truth (DESIGN.md,
 * substitution 1).
 */
TEST(CnfBuilder, XorSystemAgreesWithGf2Solver)
{
    common::Xoshiro256 rng(41);
    int feasible = 0, infeasible = 0;
    for (int trial = 0; trial < 40; ++trial) {
        const std::size_t vars_n = 10;
        const std::size_t rows_n = 12;
        const gf2::BitMatrix a =
            gf2::BitMatrix::random(rows_n, vars_n, rng);
        const gf2::BitVector rhs = gf2::BitVector::random(rows_n, rng);

        const bool gf2_feasible = gf2::solve(a, rhs).has_value();

        CnfBuilder b;
        const auto vars = b.newVars(vars_n);
        bool added_ok = true;
        for (std::size_t r = 0; r < rows_n; ++r) {
            std::vector<Lit> lits;
            a.row(r).forEachSetBit([&](std::size_t c) {
                lits.push_back(Lit::make(vars[c], true));
            });
            added_ok = b.addXor(lits, rhs.get(r)) && added_ok;
        }
        const bool sat_feasible =
            added_ok && b.solver().solve() == SolveResult::Sat;
        EXPECT_EQ(sat_feasible, gf2_feasible) << "trial " << trial;
        (gf2_feasible ? feasible : infeasible) += 1;
    }
    // The random ensemble should exercise both outcomes.
    EXPECT_GT(feasible, 0);
    EXPECT_GT(infeasible, 0);
}

} // namespace
} // namespace harp::sat
