/**
 * @file
 * Stress tests for the CDCL solver's deeper machinery: learnt-clause
 * database reduction, restarts, long implication chains, repeated
 * incremental solves, and larger structured instances.
 */

#include <gtest/gtest.h>

#include <vector>

#include "common/rng.hh"
#include "sat/cnf_builder.hh"
#include "sat/solver.hh"

namespace harp::sat {
namespace {

Lit
pos(Var v)
{
    return Lit::make(v, true);
}

Lit
neg(Var v)
{
    return Lit::make(v, false);
}

/** Build the pigeonhole principle PHP(p, h) instance. */
void
buildPigeonhole(Solver &s, int pigeons, int holes)
{
    std::vector<std::vector<Var>> at(pigeons, std::vector<Var>(holes));
    for (int p = 0; p < pigeons; ++p)
        for (int h = 0; h < holes; ++h)
            at[p][h] = s.newVar();
    for (int p = 0; p < pigeons; ++p) {
        Clause any;
        for (int h = 0; h < holes; ++h)
            any.push_back(pos(at[p][h]));
        s.addClause(any);
    }
    for (int h = 0; h < holes; ++h)
        for (int p1 = 0; p1 < pigeons; ++p1)
            for (int p2 = p1 + 1; p2 < pigeons; ++p2)
                s.addClause(neg(at[p1][h]), neg(at[p2][h]));
}

TEST(SolverStress, Pigeonhole8x7ExercisesReductionAndRestarts)
{
    // PHP(8,7) needs thousands of conflicts: learnt-DB reduction and
    // several restarts fire along the way.
    Solver s;
    buildPigeonhole(s, 8, 7);
    EXPECT_EQ(s.solve(), SolveResult::Unsat);
    EXPECT_GT(s.conflicts(), 1000u);
}

TEST(SolverStress, RepeatedSolvesAreConsistent)
{
    // Solving the same satisfiable formula repeatedly (with learnt
    // clauses accumulating) must keep answering Sat.
    common::Xoshiro256 rng(3);
    Solver s;
    const int num_vars = 40;
    for (int i = 0; i < num_vars; ++i)
        s.newVar();
    for (int c = 0; c < 100; ++c) {
        Clause clause;
        for (int l = 0; l < 3; ++l)
            clause.push_back(Lit::make(
                static_cast<Var>(rng.nextBelow(num_vars)),
                rng.nextBernoulli(0.5)));
        s.addClause(clause);
    }
    const SolveResult first = s.solve();
    for (int repeat = 0; repeat < 5; ++repeat)
        EXPECT_EQ(s.solve(), first);
}

TEST(SolverStress, AssumptionSequencesDoNotCorruptState)
{
    // Alternate contradictory assumption sets; the base formula must
    // stay satisfiable throughout.
    Solver s;
    const Var a = s.newVar();
    const Var b = s.newVar();
    const Var c = s.newVar();
    s.addClause(pos(a), pos(b), pos(c));
    for (int i = 0; i < 10; ++i) {
        EXPECT_EQ(s.solve({pos(a), neg(b)}), SolveResult::Sat);
        EXPECT_EQ(s.solve({neg(a), neg(b), neg(c)}),
                  SolveResult::Unsat);
        EXPECT_EQ(s.solve({neg(a), neg(b)}), SolveResult::Sat);
        EXPECT_TRUE(s.modelValue(c));
        EXPECT_EQ(s.solve(), SolveResult::Sat);
    }
}

TEST(SolverStress, LongImplicationChainWithBacktracking)
{
    // A chain x0 -> x1 -> ... -> x199 plus a unit forcing x0, and a
    // clause requiring ~x199 under an assumption: deep propagation and
    // clean backtracking.
    Solver s;
    const int n = 200;
    std::vector<Var> vars;
    for (int i = 0; i < n; ++i)
        vars.push_back(s.newVar());
    for (int i = 0; i + 1 < n; ++i)
        s.addClause(neg(vars[i]), pos(vars[i + 1]));
    s.addClause(pos(vars[0]));
    ASSERT_EQ(s.solve(), SolveResult::Sat);
    for (int i = 0; i < n; ++i)
        EXPECT_TRUE(s.modelValue(vars[i]));
    EXPECT_EQ(s.solve({neg(vars[n - 1])}), SolveResult::Unsat);
    EXPECT_EQ(s.solve(), SolveResult::Sat);
}

TEST(SolverStress, PlantedXorSystemThroughChunking)
{
    // A consistent (planted-solution) GF(2) system encoded through the
    // XOR chunking path. Kept deliberately small and sparse: dense
    // random XOR-SAT is exponentially hard for resolution-based CDCL
    // (no Gaussian reasoning) — the GF(2) elimination solver is the
    // right tool there, which is exactly why HARP's analyses use it
    // (DESIGN.md, substitution 1).
    common::Xoshiro256 rng(7);
    CnfBuilder b;
    const std::size_t num_vars = 48;
    const auto vars = b.newVars(num_vars);
    std::vector<bool> assignment(num_vars);
    for (auto &&bit : assignment)
        bit = rng.nextBernoulli(0.5);
    for (int eq = 0; eq < 24; ++eq) {
        std::vector<Lit> lits;
        bool rhs = false;
        for (int t = 0; t < 7; ++t) {
            const auto v = rng.nextBelow(num_vars);
            lits.push_back(Lit::make(vars[v], true));
            // A variable appearing twice in an XOR cancels; track the
            // true parity of the sampled multiset.
            rhs ^= assignment[v];
        }
        ASSERT_TRUE(b.addXor(lits, rhs));
    }
    ASSERT_EQ(b.solver().solve(), SolveResult::Sat);
    // The model (possibly != the planted assignment) must satisfy the
    // formula; gtest re-verification happens through the solver's own
    // model-checking in Solver.ModelSatisfiesAllClauses-style tests.
}

TEST(SolverStress, GraphColoringSatAndUnsat)
{
    // 3-coloring of a 5-cycle is SAT; 3-coloring of K4 is SAT; K5 is
    // UNSAT with 4 colors? Use: K4 with 3 colors = SAT, K5 with 4 = SAT,
    // K5 with 3 = UNSAT. Exercise exactly-one encodings.
    auto color = [&](int nodes, const std::vector<std::pair<int, int>>
                                    &edges,
                     int colors) {
        CnfBuilder b;
        std::vector<std::vector<Var>> node_color(nodes);
        for (int v = 0; v < nodes; ++v) {
            node_color[v] = b.newVars(colors);
            std::vector<Lit> lits;
            for (const Var var : node_color[v])
                lits.push_back(Lit::make(var, true));
            b.addExactlyOne(lits);
        }
        for (const auto &[u, v] : edges)
            for (int c = 0; c < colors; ++c)
                b.addClause(Clause{
                    Lit::make(node_color[u][c], false),
                    Lit::make(node_color[v][c], false)});
        return b.solver().solve();
    };

    std::vector<std::pair<int, int>> k5;
    for (int i = 0; i < 5; ++i)
        for (int j = i + 1; j < 5; ++j)
            k5.emplace_back(i, j);
    std::vector<std::pair<int, int>> c5 = {
        {0, 1}, {1, 2}, {2, 3}, {3, 4}, {4, 0}};

    EXPECT_EQ(color(5, c5, 3), SolveResult::Sat);
    EXPECT_EQ(color(5, k5, 4), SolveResult::Unsat);
    EXPECT_EQ(color(5, k5, 5), SolveResult::Sat);
}

} // namespace
} // namespace harp::sat
