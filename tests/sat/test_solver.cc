/**
 * @file
 * Unit and property tests for the CDCL SAT solver, including brute-force
 * cross-checks on random small formulas and classic UNSAT families.
 */

#include <gtest/gtest.h>

#include <vector>

#include "common/rng.hh"
#include "sat/solver.hh"

namespace harp::sat {
namespace {

Lit
pos(Var v)
{
    return Lit::make(v, true);
}

Lit
neg(Var v)
{
    return Lit::make(v, false);
}

TEST(Lit, PackingRoundTrip)
{
    const Lit a = Lit::make(5, true);
    EXPECT_EQ(a.var(), 5);
    EXPECT_TRUE(a.positive());
    const Lit na = ~a;
    EXPECT_EQ(na.var(), 5);
    EXPECT_FALSE(na.positive());
    EXPECT_EQ(~na, a);
    EXPECT_NE(a, na);
}

TEST(Solver, TrivialSat)
{
    Solver s;
    const Var x = s.newVar();
    s.addClause(pos(x));
    EXPECT_EQ(s.solve(), SolveResult::Sat);
    EXPECT_TRUE(s.modelValue(x));
}

TEST(Solver, TrivialUnsat)
{
    Solver s;
    const Var x = s.newVar();
    s.addClause(pos(x));
    EXPECT_FALSE(s.addClause(neg(x)));
    EXPECT_EQ(s.solve(), SolveResult::Unsat);
}

TEST(Solver, EmptyFormulaIsSat)
{
    Solver s;
    s.newVar();
    EXPECT_EQ(s.solve(), SolveResult::Sat);
}

TEST(Solver, EmptyClauseIsUnsat)
{
    Solver s;
    s.newVar();
    EXPECT_FALSE(s.addClause(Clause{}));
    EXPECT_EQ(s.solve(), SolveResult::Unsat);
}

TEST(Solver, TautologyIsDropped)
{
    Solver s;
    const Var x = s.newVar();
    EXPECT_TRUE(s.addClause(Clause{pos(x), neg(x)}));
    EXPECT_EQ(s.numClauses(), 0u);
    EXPECT_EQ(s.solve(), SolveResult::Sat);
}

TEST(Solver, DuplicateLiteralsCollapse)
{
    Solver s;
    const Var x = s.newVar();
    const Var y = s.newVar();
    EXPECT_TRUE(s.addClause(Clause{pos(x), pos(x), pos(y)}));
    EXPECT_EQ(s.solve(), SolveResult::Sat);
}

TEST(Solver, UnitPropagationChain)
{
    // x0 ∧ (¬x0 ∨ x1) ∧ (¬x1 ∨ x2) ∧ ... forces all true.
    Solver s;
    std::vector<Var> vars;
    for (int i = 0; i < 20; ++i)
        vars.push_back(s.newVar());
    s.addClause(pos(vars[0]));
    for (int i = 0; i + 1 < 20; ++i)
        s.addClause(neg(vars[i]), pos(vars[i + 1]));
    ASSERT_EQ(s.solve(), SolveResult::Sat);
    for (const Var v : vars)
        EXPECT_TRUE(s.modelValue(v));
}

TEST(Solver, ImplicationCycleWithConflict)
{
    // (x ∨ y) ∧ (x ∨ ¬y) ∧ (¬x ∨ y) ∧ (¬x ∨ ¬y) is UNSAT.
    Solver s;
    const Var x = s.newVar();
    const Var y = s.newVar();
    s.addClause(pos(x), pos(y));
    s.addClause(pos(x), neg(y));
    s.addClause(neg(x), pos(y));
    s.addClause(neg(x), neg(y));
    EXPECT_EQ(s.solve(), SolveResult::Unsat);
}

TEST(Solver, PigeonholeUnsat)
{
    // 4 pigeons into 3 holes: classic UNSAT requiring real search.
    const int pigeons = 4, holes = 3;
    Solver s;
    std::vector<std::vector<Var>> at(pigeons, std::vector<Var>(holes));
    for (int p = 0; p < pigeons; ++p)
        for (int h = 0; h < holes; ++h)
            at[p][h] = s.newVar();
    for (int p = 0; p < pigeons; ++p) {
        Clause any;
        for (int h = 0; h < holes; ++h)
            any.push_back(pos(at[p][h]));
        s.addClause(any);
    }
    for (int h = 0; h < holes; ++h)
        for (int p1 = 0; p1 < pigeons; ++p1)
            for (int p2 = p1 + 1; p2 < pigeons; ++p2)
                s.addClause(neg(at[p1][h]), neg(at[p2][h]));
    EXPECT_EQ(s.solve(), SolveResult::Unsat);
}

TEST(Solver, PigeonholeSatWhenEnoughHoles)
{
    const int pigeons = 4, holes = 4;
    Solver s;
    std::vector<std::vector<Var>> at(pigeons, std::vector<Var>(holes));
    for (int p = 0; p < pigeons; ++p)
        for (int h = 0; h < holes; ++h)
            at[p][h] = s.newVar();
    for (int p = 0; p < pigeons; ++p) {
        Clause any;
        for (int h = 0; h < holes; ++h)
            any.push_back(pos(at[p][h]));
        s.addClause(any);
    }
    for (int h = 0; h < holes; ++h)
        for (int p1 = 0; p1 < pigeons; ++p1)
            for (int p2 = p1 + 1; p2 < pigeons; ++p2)
                s.addClause(neg(at[p1][h]), neg(at[p2][h]));
    EXPECT_EQ(s.solve(), SolveResult::Sat);
}

TEST(Solver, AssumptionsRestrictModels)
{
    Solver s;
    const Var x = s.newVar();
    const Var y = s.newVar();
    s.addClause(pos(x), pos(y));
    EXPECT_EQ(s.solve({neg(x)}), SolveResult::Sat);
    EXPECT_TRUE(s.modelValue(y));
    EXPECT_EQ(s.solve({neg(x), neg(y)}), SolveResult::Unsat);
    // The formula itself is unchanged: still SAT without assumptions.
    EXPECT_EQ(s.solve(), SolveResult::Sat);
}

TEST(Solver, ModelSatisfiesAllClauses)
{
    // Random 3-SAT at a satisfiable density, model-checked clause by
    // clause.
    common::Xoshiro256 rng(99);
    for (int trial = 0; trial < 20; ++trial) {
        Solver s;
        const int num_vars = 15;
        std::vector<Var> vars;
        for (int i = 0; i < num_vars; ++i)
            vars.push_back(s.newVar());
        std::vector<Clause> clauses;
        const int num_clauses = 40; // density ~2.7: nearly always SAT
        for (int c = 0; c < num_clauses; ++c) {
            Clause clause;
            for (int l = 0; l < 3; ++l) {
                const Var v = vars[rng.nextBelow(num_vars)];
                clause.push_back(Lit::make(v, rng.nextBernoulli(0.5)));
            }
            clauses.push_back(clause);
            s.addClause(clause);
        }
        if (s.solve() != SolveResult::Sat)
            continue;
        for (const Clause &clause : clauses) {
            bool satisfied = false;
            for (const Lit l : clause)
                satisfied |= (s.modelValue(l.var()) == l.positive());
            EXPECT_TRUE(satisfied);
        }
    }
}

TEST(Solver, AgreesWithBruteForceOnSmallFormulas)
{
    common::Xoshiro256 rng(7);
    for (int trial = 0; trial < 60; ++trial) {
        const int num_vars = 8;
        const int num_clauses = 24 + static_cast<int>(rng.nextBelow(16));
        std::vector<Clause> clauses;
        for (int c = 0; c < num_clauses; ++c) {
            Clause clause;
            const int len = 1 + static_cast<int>(rng.nextBelow(3));
            for (int l = 0; l < len; ++l)
                clause.push_back(Lit::make(
                    static_cast<Var>(rng.nextBelow(num_vars)),
                    rng.nextBernoulli(0.5)));
            clauses.push_back(clause);
        }
        // Brute force over all 256 assignments.
        bool brute_sat = false;
        for (unsigned assign = 0; assign < 256 && !brute_sat; ++assign) {
            bool all = true;
            for (const Clause &clause : clauses) {
                bool any = false;
                for (const Lit l : clause) {
                    const bool val = (assign >> l.var()) & 1;
                    any |= (val == l.positive());
                }
                if (!any) {
                    all = false;
                    break;
                }
            }
            brute_sat = all;
        }
        Solver s;
        for (int i = 0; i < num_vars; ++i)
            s.newVar();
        for (const Clause &clause : clauses)
            if (!s.addClause(clause))
                break;
        const SolveResult result = s.solve();
        EXPECT_EQ(result == SolveResult::Sat, brute_sat)
            << "trial " << trial;
    }
}

TEST(Solver, ConflictBudgetReturnsUnknown)
{
    // A hard pigeonhole instance with a one-conflict budget should give
    // up rather than answer.
    const int pigeons = 7, holes = 6;
    Solver s;
    std::vector<std::vector<Var>> at(pigeons, std::vector<Var>(holes));
    for (int p = 0; p < pigeons; ++p)
        for (int h = 0; h < holes; ++h)
            at[p][h] = s.newVar();
    for (int p = 0; p < pigeons; ++p) {
        Clause any;
        for (int h = 0; h < holes; ++h)
            any.push_back(pos(at[p][h]));
        s.addClause(any);
    }
    for (int h = 0; h < holes; ++h)
        for (int p1 = 0; p1 < pigeons; ++p1)
            for (int p2 = p1 + 1; p2 < pigeons; ++p2)
                s.addClause(neg(at[p1][h]), neg(at[p2][h]));
    EXPECT_EQ(s.solve(1), SolveResult::Unknown);
    // And with an unlimited budget it proves UNSAT.
    EXPECT_EQ(s.solve(), SolveResult::Unsat);
}

TEST(Solver, StatsAdvance)
{
    Solver s;
    const Var x = s.newVar();
    const Var y = s.newVar();
    s.addClause(pos(x), pos(y));
    s.addClause(neg(x), pos(y));
    ASSERT_EQ(s.solve(), SolveResult::Sat);
    EXPECT_GE(s.decisions() + s.propagations(), 1u);
}

} // namespace
} // namespace harp::sat
