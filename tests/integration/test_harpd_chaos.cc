/**
 * @file
 * Out-of-process chaos tests against the real `harpd` binary driven by
 * the --fault-plan flag: a deterministic ENOSPC schedule degrades a
 * campaign mid-flight, the daemon is SIGKILLed *while degraded*, and a
 * clean restart must resume from the durable checkpoint and publish
 * results byte-identical to an uninterrupted batch run — the
 * acceptance scenario for "degrade, never corrupt". Also covers a
 * publish-rename fault (all jobs durable, only the publish missing)
 * and a corrupted staging directory left behind by the degraded run.
 */

#include <gtest/gtest.h>

#include <chrono>
#include <csignal>
#include <cstdlib>
#include <filesystem>
#include <fstream>
#include <sstream>
#include <string>
#include <thread>

#include <fcntl.h>
#include <sys/wait.h>
#include <unistd.h>

#include "harpd/checkpoint.hh"
#include "harpd/client.hh"
#include "runner/campaign.hh"
#include "runner/registry.hh"

namespace harp::harpd {
namespace {

namespace fs = std::filesystem;
using runner::JsonValue;

constexpr std::uint64_t kSeed = 17;
constexpr std::size_t kRepeat = 32; // quickstart grid is 1 point
const std::map<std::string, std::string> kOverrides = {
    {"rounds", "2048"}}; // paces one job to a few ms

std::string
readFile(const fs::path &path)
{
    std::ifstream in(path, std::ios::binary);
    EXPECT_TRUE(in.good()) << path;
    std::ostringstream out;
    out << in.rdbuf();
    return out.str();
}

class HarpdChaosTest : public ::testing::Test
{
  protected:
    void SetUp() override
    {
#ifdef HARPD_BIN_PATH
        binary_ = HARPD_BIN_PATH;
#endif
        if (const char *env = std::getenv("HARPD_BIN"))
            binary_ = env;
        if (binary_.empty() || !fs::exists(binary_))
            GTEST_SKIP() << "harpd binary not found (" << binary_
                         << ")";
        static int counter = 0;
        root_ = fs::temp_directory_path() /
                ("harpd_chaos_" + std::to_string(::getpid()) + "_" +
                 std::to_string(counter++));
        fs::remove_all(root_);
        fs::create_directories(root_);
        socket_ = (root_ / "d.sock").string();
        data_ = (root_ / "data").string();
    }

    void TearDown() override
    {
        if (daemon_ > 0) {
            ::kill(daemon_, SIGKILL);
            ::waitpid(daemon_, nullptr, 0);
        }
        if (!root_.empty())
            fs::remove_all(root_);
    }

    /** Start harpd, optionally with a --fault-plan schedule. */
    void startDaemon(const std::string &fault_plan = "")
    {
        daemon_ = ::fork();
        ASSERT_GE(daemon_, 0);
        if (daemon_ == 0) {
            const int null = ::open("/dev/null", O_RDWR);
            ::dup2(null, 0);
            ::dup2(null, 1);
            ::dup2(null, 2);
            if (fault_plan.empty())
                ::execl(binary_.c_str(), "harpd", "--socket",
                        socket_.c_str(), "--data", data_.c_str(),
                        "--threads", "2", nullptr);
            else
                ::execl(binary_.c_str(), "harpd", "--socket",
                        socket_.c_str(), "--data", data_.c_str(),
                        "--threads", "2", "--fault-plan",
                        fault_plan.c_str(), nullptr);
            ::_exit(127);
        }
        for (int i = 0; i < 2000; ++i) {
            try {
                Client probe(socket_);
                JsonValue ping = JsonValue::object();
                ping.set("verb", JsonValue("ping"));
                if (probe.request(ping).find("type")->asString() ==
                    "pong")
                    return;
            } catch (const std::exception &) {
            }
            std::this_thread::sleep_for(std::chrono::milliseconds(5));
        }
        FAIL() << "daemon never came up";
    }

    void killDaemon()
    {
        ASSERT_GT(daemon_, 0);
        ::kill(daemon_, SIGKILL);
        ::waitpid(daemon_, nullptr, 0);
        daemon_ = -1;
    }

    void shutdownDaemon()
    {
        {
            Client client(socket_);
            JsonValue request = JsonValue::object();
            request.set("verb", JsonValue("shutdown"));
            client.request(request);
        }
        ::waitpid(daemon_, nullptr, 0);
        daemon_ = -1;
    }

    JsonValue awaitState(const std::string &campaign,
                         const std::string &state)
    {
        for (int i = 0; i < 6000; ++i) {
            try {
                Client client(socket_);
                JsonValue request = JsonValue::object();
                request.set("verb", JsonValue("status"));
                request.set("campaign", JsonValue(campaign));
                const JsonValue reply = client.request(request);
                if (reply.find("type")->asString() == "status" &&
                    reply.find("state")->asString() == state)
                    return reply;
            } catch (const std::exception &) {
            }
            std::this_thread::sleep_for(std::chrono::milliseconds(5));
        }
        ADD_FAILURE() << campaign << " never reached " << state;
        return JsonValue::object();
    }

    fs::path batchGroundTruth()
    {
        const fs::path out = root_ / "batch";
        if (!fs::exists(out)) {
            runner::CampaignOptions options;
            options.seed = kSeed;
            options.threads = 2;
            options.repeat = kRepeat;
            options.noTimings = true;
            options.outDir = out.string();
            options.overrides = kOverrides;
            std::ostringstream log;
            runner::runCampaign(
                runner::builtinRegistry().select({"quickstart"}),
                options, log);
        }
        return out;
    }

    /** Submit "c" and consume its stream until it degrades. */
    void submitUntilDegraded()
    {
        Client client(socket_);
        JsonValue request = JsonValue::object();
        request.set("verb", JsonValue("submit"));
        request.set("campaign", JsonValue("c"));
        JsonValue experiments = JsonValue::array();
        experiments.push(JsonValue("quickstart"));
        request.set("experiments", experiments);
        request.set("seed", JsonValue(std::to_string(kSeed)));
        request.set("repeat", JsonValue(kRepeat));
        JsonValue overrides = JsonValue::object();
        for (const auto &[key, value] : kOverrides)
            overrides.set(key, JsonValue(value));
        request.set("overrides", overrides);
        ASSERT_TRUE(client.send(request));

        bool degraded = false;
        for (;;) {
            const std::optional<JsonValue> event = client.read();
            if (!event.has_value())
                break;
            const std::string kind = event->find("type")->asString();
            ASSERT_NE(kind, "done")
                << "campaign finished before the injected fault";
            ASSERT_NE(kind, "error") << event->dump();
            if (kind == "degraded") {
                degraded = true;
                EXPECT_EQ(event->find("errno_name")->asString(),
                          "ENOSPC");
                EXPECT_TRUE(event->find("retriable")->asBool());
                break; // terminal: nothing follows on this stream
            }
        }
        ASSERT_TRUE(degraded)
            << "stream ended without a degraded event";
    }

    void expectPublishedMatchesBatch()
    {
        const fs::path batch = batchGroundTruth();
        const fs::path published = fs::path(data_) / "results" / "c";
        EXPECT_EQ(readFile(published / "quickstart.jsonl"),
                  readFile(batch / "quickstart.jsonl"));
        EXPECT_EQ(readFile(published / "summary.json"),
                  readFile(batch / "summary.json"));
    }

    std::string binary_;
    fs::path root_;
    std::string socket_;
    std::string data_;
    pid_t daemon_ = -1;
};

TEST_F(HarpdChaosTest, SigkillDuringEnospcDegradeResumesByteIdentical)
{
    batchGroundTruth();
    // Sticky ENOSPC from the 13th durable write: a handful of jobs
    // land, then the "disk" fills and the campaign degrades.
    startDaemon("write#12+=ENOSPC");
    submitUntilDegraded();
    const JsonValue status = awaitState("c", "degraded");
    EXPECT_EQ(status.find("errno_name")->asString(), "ENOSPC");
    EXPECT_TRUE(status.find("retriable")->asBool());

    const fs::path ckpt = fs::path(data_) / "checkpoints" / "c.ckpt";
    ASSERT_TRUE(fs::exists(ckpt));
    {
        // The durable record led the stream: the checkpoint holds a
        // verifiable prefix of the campaign.
        const std::optional<LoadedCheckpoint> loaded =
            loadCheckpoint(ckpt.string());
        ASSERT_TRUE(loaded.has_value());
        EXPECT_GT(loaded->records.size(), 0u);
        EXPECT_LT(loaded->records.size(), kRepeat);
    }
    EXPECT_FALSE(fs::exists(fs::path(data_) / "results" / "c"))
        << "a degraded campaign publishes nothing";

    // The operator's worst night: the wedged daemon is SIGKILLed
    // while degraded, then restarted after the fault cleared.
    killDaemon();
    startDaemon(); // no fault plan: space is back
    awaitState("c", "done");
    EXPECT_FALSE(fs::exists(ckpt));
    EXPECT_FALSE(fs::exists(ckpt.string() + ".bad"));
    expectPublishedMatchesBatch();
    shutdownDaemon();
}

TEST_F(HarpdChaosTest, PublishRenameFaultThenRestartRepublishes)
{
    batchGroundTruth();
    // Every job completes; only the staging->results rename fails.
    startDaemon("rename#0=ENOSPC");
    submitUntilDegraded();
    awaitState("c", "degraded");
    {
        const std::optional<LoadedCheckpoint> loaded = loadCheckpoint(
            (fs::path(data_) / "checkpoints" / "c.ckpt").string());
        ASSERT_TRUE(loaded.has_value());
        EXPECT_EQ(loaded->records.size(), kRepeat)
            << "all jobs were durable before the publish fault";
    }
    killDaemon();

    // The degraded run left a staging dir; corrupt it to prove the
    // restart sweep discards partial state rather than publishing it.
    const fs::path staging =
        fs::path(data_) / "results" / ".tmp-c";
    if (fs::exists(staging)) {
        std::ofstream garbage(staging / "quickstart.jsonl",
                              std::ios::binary | std::ios::trunc);
        garbage << "corrupted partial line without newline";
    }

    startDaemon();
    awaitState("c", "done");
    EXPECT_FALSE(fs::exists(staging))
        << "stale staging dirs are swept on start";
    expectPublishedMatchesBatch();
    shutdownDaemon();
}

} // namespace
} // namespace harp::harpd
