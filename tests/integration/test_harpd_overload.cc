/**
 * @file
 * Overload robustness against the real `harpd` binary: SIGTERM
 * (delivered to the new sigaction handlers) drains a fully loaded
 * multi-tenant daemon, a restart resumes every interrupted campaign to
 * byte-identical output, and SIGHUP writes a durable status.json
 * snapshot — checkpoint-all-now — without interrupting service.
 */

#include <gtest/gtest.h>

#include <chrono>
#include <csignal>
#include <cstdlib>
#include <filesystem>
#include <fstream>
#include <sstream>
#include <string>
#include <thread>
#include <vector>

#include <fcntl.h>
#include <sys/wait.h>
#include <unistd.h>

#include "harpd/client.hh"
#include "runner/campaign.hh"
#include "runner/json.hh"
#include "runner/registry.hh"

namespace harp::harpd {
namespace {

namespace fs = std::filesystem;
using runner::JsonType;
using runner::JsonValue;

constexpr std::uint64_t kSeed = 23;
constexpr std::size_t kRepeat = 32; // quickstart grid is 1 point
const std::map<std::string, std::string> kOverrides = {
    {"rounds", "8192"}}; // paces one job to ~tens of ms: a wide
                         // still-running window around the SIGTERM

std::string
readFile(const fs::path &path)
{
    std::ifstream in(path, std::ios::binary);
    EXPECT_TRUE(in.good()) << path;
    std::ostringstream out;
    out << in.rdbuf();
    return out.str();
}

class HarpdOverloadTest : public ::testing::Test
{
  protected:
    void SetUp() override
    {
#ifdef HARPD_BIN_PATH
        binary_ = HARPD_BIN_PATH;
#endif
        if (const char *env = std::getenv("HARPD_BIN"))
            binary_ = env;
        if (binary_.empty() || !fs::exists(binary_))
            GTEST_SKIP() << "harpd binary not found (" << binary_
                         << ")";
        static int counter = 0;
        root_ = fs::temp_directory_path() /
                ("harpd_ovl_" + std::to_string(::getpid()) + "_" +
                 std::to_string(counter++));
        fs::remove_all(root_);
        fs::create_directories(root_);
        socket_ = (root_ / "d.sock").string();
        data_ = (root_ / "data").string();
    }

    void TearDown() override
    {
        if (daemon_ > 0) {
            ::kill(daemon_, SIGKILL);
            ::waitpid(daemon_, nullptr, 0);
        }
        if (!root_.empty())
            fs::remove_all(root_);
    }

    void startDaemon()
    {
        daemon_ = ::fork();
        ASSERT_GE(daemon_, 0);
        if (daemon_ == 0) {
            const int null = ::open("/dev/null", O_RDWR);
            ::dup2(null, 0);
            ::dup2(null, 1);
            ::dup2(null, 2);
            ::execl(binary_.c_str(), "harpd", "--socket",
                    socket_.c_str(), "--data", data_.c_str(),
                    "--threads", "4", "--tenant-weight", "heavy=3",
                    nullptr);
            ::_exit(127);
        }
        for (int i = 0; i < 2000; ++i) {
            try {
                Client probe(socket_);
                JsonValue ping = JsonValue::object();
                ping.set("verb", JsonValue("ping"));
                if (probe.request(ping).find("type")->asString() ==
                    "pong")
                    return;
            } catch (const std::exception &) {
            }
            std::this_thread::sleep_for(std::chrono::milliseconds(5));
        }
        FAIL() << "daemon never came up";
    }

    JsonValue status(const std::string &campaign)
    {
        Client client(socket_);
        JsonValue request = JsonValue::object();
        request.set("verb", JsonValue("status"));
        request.set("campaign", JsonValue(campaign));
        return client.request(request);
    }

    JsonValue awaitDone(const std::string &campaign)
    {
        for (int i = 0; i < 4000; ++i) {
            try {
                const JsonValue reply = status(campaign);
                if (reply.find("type")->asString() == "status") {
                    const std::string state =
                        reply.find("state")->asString();
                    EXPECT_NE(state, "failed")
                        << reply.find("error")->asString();
                    if (state == "done" || state == "failed")
                        return reply;
                }
            } catch (const std::exception &) {
            }
            std::this_thread::sleep_for(std::chrono::milliseconds(5));
        }
        ADD_FAILURE() << campaign << " never finished";
        return JsonValue::object();
    }

    void submitDetached(const std::string &campaign,
                        const std::string &tenant)
    {
        Client client(socket_);
        JsonValue request = JsonValue::object();
        request.set("verb", JsonValue("submit"));
        request.set("campaign", JsonValue(campaign));
        JsonValue experiments = JsonValue::array();
        experiments.push(JsonValue("quickstart"));
        request.set("experiments", experiments);
        request.set("seed", JsonValue(std::to_string(kSeed)));
        request.set("repeat", JsonValue(kRepeat));
        request.set("tenant", JsonValue(tenant));
        JsonValue overrides = JsonValue::object();
        for (const auto &[key, value] : kOverrides)
            overrides.set(key, JsonValue(value));
        request.set("overrides", overrides);
        ASSERT_TRUE(client.send(request));
        const std::optional<JsonValue> accepted = client.read();
        ASSERT_TRUE(accepted.has_value());
        ASSERT_EQ(accepted->find("type")->asString(), "accepted")
            << accepted->dump();
        // Dropping the connection detaches the stream; the campaign
        // runs on inside the daemon.
    }

    /** Uninterrupted ground truth from the in-process batch driver. */
    fs::path batchGroundTruth()
    {
        const fs::path out = root_ / "batch";
        if (!fs::exists(out)) {
            runner::CampaignOptions options;
            options.seed = kSeed;
            options.threads = 4;
            options.repeat = kRepeat;
            options.noTimings = true;
            options.outDir = out.string();
            options.overrides = kOverrides;
            std::ostringstream log;
            runner::runCampaign(
                runner::builtinRegistry().select({"quickstart"}),
                options, log);
        }
        return out;
    }

    std::string binary_;
    fs::path root_;
    std::string socket_;
    std::string data_;
    pid_t daemon_ = -1;
};

TEST_F(HarpdOverloadTest, SigtermDrainUnderLoadThenResumeByteExact)
{
    const fs::path batch = batchGroundTruth();
    startDaemon();

    // Full overload: two tenants (3:1 weights) contending for the
    // whole pool, both mid-flight when the TERM lands.
    submitDetached("drain_a", "heavy");
    submitDetached("drain_b", "light");
    for (int i = 0; i < 2000; ++i) {
        const JsonValue reply = status("drain_a");
        if (reply.find("type")->asString() == "status" &&
            reply.find("completed_jobs")->asInt() >= 2)
            break;
        std::this_thread::sleep_for(std::chrono::milliseconds(5));
    }

    // SIGTERM = graceful drain through the sigaction handler:
    // in-flight waves finish, checkpoints stay, the process exits 0.
    ASSERT_EQ(::kill(daemon_, SIGTERM), 0);
    int wait_status = 0;
    ASSERT_EQ(::waitpid(daemon_, &wait_status, 0), daemon_);
    ASSERT_TRUE(WIFEXITED(wait_status))
        << "drain must exit, not die on a signal";
    EXPECT_EQ(WEXITSTATUS(wait_status), 0);
    daemon_ = -1;
    for (const char *name : {"drain_a", "drain_b"})
        EXPECT_TRUE(fs::exists(fs::path(data_) / "checkpoints" /
                               (std::string(name) + ".ckpt")))
            << name;

    // Restart: both campaigns resume detached and finish with bytes
    // identical to an uninterrupted batch run — the drain lost
    // nothing and the restart recomputed nothing already durable.
    startDaemon();
    awaitDone("drain_a");
    awaitDone("drain_b");
    for (const char *name : {"drain_a", "drain_b"}) {
        const fs::path published = fs::path(data_) / "results" / name;
        EXPECT_EQ(readFile(published / "quickstart.jsonl"),
                  readFile(batch / "quickstart.jsonl"))
            << name;
        EXPECT_EQ(readFile(published / "summary.json"),
                  readFile(batch / "summary.json"))
            << name;
    }
}

TEST_F(HarpdOverloadTest, SighupSnapshotsStatusWithoutDisruption)
{
    startDaemon();
    submitDetached("snap", "heavy");

    // SIGHUP: checkpoint-all-now. The snapshot lands durably at
    // data/status.json while the campaign keeps running.
    ASSERT_EQ(::kill(daemon_, SIGHUP), 0);
    const fs::path snapshot = fs::path(data_) / "status.json";
    JsonValue doc;
    bool parsed = false;
    for (int i = 0; i < 1000 && !parsed; ++i) {
        if (fs::exists(snapshot)) {
            try {
                doc = JsonValue::parse(readFile(snapshot));
                parsed = true;
            } catch (const std::exception &) {
                // rename not visible yet; retry
            }
        }
        if (!parsed)
            std::this_thread::sleep_for(std::chrono::milliseconds(5));
    }
    ASSERT_TRUE(parsed) << "status.json never appeared";
    ASSERT_NE(doc.find("campaigns"), nullptr);
    ASSERT_NE(doc.find("pool_backlog"), nullptr);
    ASSERT_NE(doc.find("tenants"), nullptr);
    const JsonValue *campaigns = doc.find("campaigns");
    bool found = false;
    for (std::size_t i = 0; i < campaigns->size(); ++i) {
        const JsonValue *name = campaigns->at(i).find("id");
        found = found || (name != nullptr && name->asString() == "snap");
    }
    EXPECT_TRUE(found) << readFile(snapshot);

    // Not a drain and not a stop: the daemon still serves and the
    // campaign still finishes.
    {
        Client probe(socket_);
        JsonValue ping = JsonValue::object();
        ping.set("verb", JsonValue("ping"));
        EXPECT_EQ(probe.request(ping).find("type")->asString(), "pong");
    }
    awaitDone("snap");

    // A second HUP after completion refreshes the snapshot with the
    // terminal state — operators can poll it instead of the socket.
    ASSERT_EQ(::kill(daemon_, SIGHUP), 0);
    bool done_visible = false;
    for (int i = 0; i < 1000 && !done_visible; ++i) {
        try {
            const JsonValue fresh = JsonValue::parse(readFile(snapshot));
            const JsonValue *list = fresh.find("campaigns");
            for (std::size_t j = 0; list != nullptr && j < list->size();
                 ++j) {
                const JsonValue *name = list->at(j).find("id");
                const JsonValue *state = list->at(j).find("state");
                done_visible =
                    done_visible ||
                    (name != nullptr && state != nullptr &&
                     name->asString() == "snap" &&
                     state->asString() == "done");
            }
        } catch (const std::exception &) {
        }
        if (!done_visible)
            std::this_thread::sleep_for(std::chrono::milliseconds(5));
    }
    EXPECT_TRUE(done_visible);

    // Graceful shutdown still works after HUP traffic.
    {
        Client client(socket_);
        JsonValue request = JsonValue::object();
        request.set("verb", JsonValue("shutdown"));
        client.request(request);
    }
    ::waitpid(daemon_, nullptr, 0);
    daemon_ = -1;
}

} // namespace
} // namespace harp::harpd
