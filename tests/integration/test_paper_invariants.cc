/**
 * @file
 * Parameterized property suite encoding the paper's analytical claims as
 * machine-checked invariants, swept across code lengths, at-risk cell
 * counts, and per-bit probabilities:
 *
 *  - Equation 3: a post-correction error at bit i occurs iff (raw error
 *    at i) XOR (the decoder flipped i);
 *  - Table 2: at most 2^n - 1 bits are at risk of post-correction error;
 *  - section 3.2: every post-correction at-risk bit is direct-at-risk or
 *    indirect-at-risk;
 *  - section 6: with all direct-at-risk bits profiled, at most one
 *    (= the on-die correction capability) unprofiled error can occur at
 *    a time, and nothing remains unsafe for a SEC secondary ECC;
 *  - profiler soundness: no profiler identifies a bit the ground truth
 *    rules out (up to HARP-A/BEEP predictions, which must land in the
 *    ground-truth at-risk sets when their inputs are sound).
 */

#include <gtest/gtest.h>

#include <tuple>

#include "common/rng.hh"
#include "core/at_risk_analyzer.hh"
#include "core/harp_profiler.hh"
#include "core/naive_profiler.hh"
#include "core/round_engine.hh"
#include "ecc/hamming_code.hh"

namespace harp {
namespace {

/** (dataword length, at-risk cells, per-bit probability). */
using ParamTuple = std::tuple<std::size_t, std::size_t, double>;

class PaperInvariants : public ::testing::TestWithParam<ParamTuple>
{
  protected:
    std::size_t k() const { return std::get<0>(GetParam()); }
    std::size_t cells() const { return std::get<1>(GetParam()); }
    double prob() const { return std::get<2>(GetParam()); }

    std::uint64_t
    caseSeed() const
    {
        return common::deriveSeed(
            0xBADC0FFEE, {k(), cells(),
                          static_cast<std::uint64_t>(prob() * 100)});
    }
};

TEST_P(PaperInvariants, Equation3PostErrorDecomposition)
{
    common::Xoshiro256 rng(caseSeed());
    const ecc::HammingCode code = ecc::HammingCode::randomSec(k(), rng);
    const fault::WordFaultModel fm =
        fault::WordFaultModel::makeUniformFixedCount(code.n(), cells(),
                                                     prob(), rng);
    for (int trial = 0; trial < 200; ++trial) {
        const gf2::BitVector d = gf2::BitVector::random(k(), rng);
        const gf2::BitVector stored = code.encode(d);
        const gf2::BitVector raw_errors = fm.injectErrors(stored, rng);
        gf2::BitVector received = stored;
        received ^= raw_errors;
        const ecc::DecodeResult decoded = code.decode(received);

        for (std::size_t i = 0; i < k(); ++i) {
            const bool post_error = decoded.dataword.get(i) != d.get(i);
            const bool raw = raw_errors.get(i);
            const bool flipped = decoded.correctedPosition &&
                                 *decoded.correctedPosition == i;
            // E_i = R_i xor (decoder flipped i)  (Equation 3).
            EXPECT_EQ(post_error, raw != flipped)
                << "bit " << i << " trial " << trial;
        }
    }
}

TEST_P(PaperInvariants, Table2AmplificationBound)
{
    common::Xoshiro256 rng(caseSeed() + 1);
    const ecc::HammingCode code = ecc::HammingCode::randomSec(k(), rng);
    const fault::WordFaultModel fm =
        fault::WordFaultModel::makeUniformFixedCount(code.n(), cells(),
                                                     prob(), rng);
    const core::AtRiskAnalyzer analyzer(code, fm);
    EXPECT_LE(analyzer.postCorrectionAtRisk().popcount(),
              (std::size_t{1} << cells()) - 1);
}

TEST_P(PaperInvariants, PostCorrectionRiskIsDirectOrIndirect)
{
    common::Xoshiro256 rng(caseSeed() + 2);
    const ecc::HammingCode code = ecc::HammingCode::randomSec(k(), rng);
    const fault::WordFaultModel fm =
        fault::WordFaultModel::makeUniformFixedCount(code.n(), cells(),
                                                     prob(), rng);
    const core::AtRiskAnalyzer analyzer(code, fm);
    gf2::BitVector either = analyzer.directAtRisk();
    either |= analyzer.indirectAtRisk();
    gf2::BitVector post = analyzer.postCorrectionAtRisk();
    gf2::BitVector overlap = post;
    overlap &= either;
    EXPECT_EQ(overlap, post);
}

TEST_P(PaperInvariants, DirectCoverageBoundsIndirectMultiplicity)
{
    // The paper's central safety theorem (sections 5.1/6.4).
    common::Xoshiro256 rng(caseSeed() + 3);
    const ecc::HammingCode code = ecc::HammingCode::randomSec(k(), rng);
    const fault::WordFaultModel fm =
        fault::WordFaultModel::makeUniformFixedCount(code.n(), cells(),
                                                     prob(), rng);
    const core::AtRiskAnalyzer analyzer(code, fm);
    EXPECT_LE(analyzer.maxSimultaneousErrors(analyzer.directAtRisk()),
              1u);
    EXPECT_EQ(analyzer.unsafeBitsAfterReactive(analyzer.directAtRisk()),
              0u);
}

TEST_P(PaperInvariants, ProfilerSoundnessAfterProfiling)
{
    common::Xoshiro256 rng(caseSeed() + 4);
    const ecc::HammingCode code = ecc::HammingCode::randomSec(k(), rng);
    const fault::WordFaultModel fm =
        fault::WordFaultModel::makeUniformFixedCount(code.n(), cells(),
                                                     prob(), rng);
    const core::AtRiskAnalyzer analyzer(code, fm);

    core::NaiveProfiler naive(code.k());
    core::HarpUProfiler harp_u(code.k());
    core::HarpAProfiler harp_a(code);
    core::RoundEngine engine(code, fm, core::PatternKind::Random,
                             caseSeed() + 5);
    std::vector<core::Profiler *> ps = {&naive, &harp_u, &harp_a};
    for (int r = 0; r < 48; ++r)
        engine.runRound(ps);

    // Naive only reports observed post-correction errors.
    {
        gf2::BitVector sound = naive.identified();
        sound &= analyzer.postCorrectionAtRisk();
        EXPECT_EQ(sound, naive.identified());
    }
    // HARP-U only reports direct errors.
    {
        gf2::BitVector sound = harp_u.identified();
        sound &= analyzer.directAtRisk();
        EXPECT_EQ(sound, harp_u.identified());
    }
    // HARP-A reports direct errors plus sound indirect predictions.
    {
        gf2::BitVector either = analyzer.directAtRisk();
        either |= analyzer.indirectAtRisk();
        gf2::BitVector sound = harp_a.identified();
        sound &= either;
        EXPECT_EQ(sound, harp_a.identified());
    }
    // Monotone dominance: HARP-A contains HARP-U.
    {
        gf2::BitVector overlap = harp_u.identified();
        overlap &= harp_a.identified();
        EXPECT_EQ(overlap, harp_u.identified());
    }
}

TEST_P(PaperInvariants, HarpCoverageMonotoneAndComplete)
{
    common::Xoshiro256 rng(caseSeed() + 6);
    const ecc::HammingCode code = ecc::HammingCode::randomSec(k(), rng);
    const fault::WordFaultModel fm =
        fault::WordFaultModel::makeUniformFixedCount(code.n(), cells(),
                                                     prob(), rng);
    const core::AtRiskAnalyzer analyzer(code, fm);
    core::HarpUProfiler harp(code.k());
    core::RoundEngine engine(code, fm, core::PatternKind::Random,
                             caseSeed() + 7);
    std::vector<core::Profiler *> ps = {&harp};
    std::size_t prev = 0;
    for (int r = 0; r < 96; ++r) {
        engine.runRound(ps);
        const std::size_t now = harp.identified().popcount();
        EXPECT_GE(now, prev);
        prev = now;
    }
    if (prob() >= 0.5) {
        // 96 rounds at p >= 0.5 with inverting patterns: the chance any
        // direct cell is missed is <= 2^-48 per cell.
        gf2::BitVector covered = harp.identified();
        covered &= analyzer.directAtRisk();
        EXPECT_EQ(covered.popcount(),
                  analyzer.directAtRisk().popcount());
    }
}

INSTANTIATE_TEST_SUITE_P(
    Sweep, PaperInvariants,
    ::testing::Combine(::testing::Values<std::size_t>(16, 32, 64),
                       ::testing::Values<std::size_t>(2, 3, 5),
                       ::testing::Values(0.25, 0.5, 1.0)),
    [](const ::testing::TestParamInfo<ParamTuple> &info) {
        return "k" + std::to_string(std::get<0>(info.param)) + "_n" +
               std::to_string(std::get<1>(info.param)) + "_p" +
               std::to_string(static_cast<int>(
                   std::get<2>(info.param) * 100));
    });

} // namespace
} // namespace harp
