/**
 * @file
 * End-to-end integration tests: a full HARP-enabled system (memory chip
 * with on-die ECC + memory controller with repair, secondary ECC, and
 * profilers) running the complete active-then-reactive flow of HARP
 * section 6 against injected retention errors.
 */

#include <gtest/gtest.h>

#include "common/rng.hh"
#include "core/at_risk_analyzer.hh"
#include "core/data_pattern.hh"
#include "core/harp_profiler.hh"
#include "core/naive_profiler.hh"
#include "ecc/extended_hamming_code.hh"
#include "memsys/memory_controller.hh"

namespace harp {
namespace {

/** A complete single-chip HARP system under test. */
struct System
{
    ecc::HammingCode onDie;
    mem::MemoryChip chip;
    mem::MemoryController controller;

    explicit System(std::uint64_t seed, std::size_t words)
        : onDie([&] {
              common::Xoshiro256 rng(seed);
              return ecc::HammingCode::randomSec(64, rng);
          }()),
          chip(onDie, words),
          controller(chip, [&] {
              common::Xoshiro256 rng(seed + 1);
              return ecc::ExtendedHammingCode::randomSecDed(64, rng);
          }())
    {
    }
};

/**
 * HARP active phase over the real chip API: program pattern, let
 * retention strike, read through the bypass path, record direct errors
 * in the controller's error profile.
 */
void
runActivePhase(System &sys, std::size_t word, std::size_t rounds,
               std::uint64_t seed)
{
    core::PatternGenerator patterns(core::PatternKind::Random, 64,
                                    common::deriveSeed(seed, {1}));
    common::Xoshiro256 retention(common::deriveSeed(seed, {2}));
    for (std::size_t r = 0; r < rounds; ++r) {
        const gf2::BitVector pattern = patterns.pattern(r);
        sys.controller.write(word, pattern);
        sys.chip.retentionTick(word, retention);
        gf2::BitVector raw = sys.controller.readRaw(word);
        raw ^= pattern;
        raw.forEachSetBit([&](std::size_t bit) {
            sys.controller.profile().markAtRisk(word, bit);
        });
    }
}

TEST(EndToEnd, ActivePhaseFindsAllDirectAtRiskBits)
{
    System sys(42, 1);
    common::Xoshiro256 fault_rng(7);
    const fault::WordFaultModel faults =
        fault::WordFaultModel::makeUniformFixedCount(71, 4, 0.5,
                                                     fault_rng);
    sys.chip.setFaultModel(0, faults);
    const core::AtRiskAnalyzer analyzer(sys.onDie, faults);

    runActivePhase(sys, 0, 64, 1);

    for (const std::size_t pos : analyzer.directAtRisk().setBits())
        EXPECT_TRUE(sys.controller.profile().isAtRisk(0, pos))
            << "missed direct-at-risk bit " << pos;
}

TEST(EndToEnd, ReactivePhaseNeverSeesUncorrectableAfterFullActive)
{
    // HARP's safety guarantee (section 6.4): once every direct at-risk
    // bit is profiled and repaired, at most one (indirect) error reaches
    // the secondary ECC at a time, so reactive operation never hits an
    // uncorrectable event.
    for (std::uint64_t seed = 100; seed < 110; ++seed) {
        System sys(seed, 1);
        common::Xoshiro256 fault_rng(seed + 50);
        const fault::WordFaultModel faults =
            fault::WordFaultModel::makeUniformFixedCount(71, 5, 0.5,
                                                         fault_rng);
        sys.chip.setFaultModel(0, faults);
        const core::AtRiskAnalyzer analyzer(sys.onDie, faults);

        // Pre-load the profile with the full direct ground truth (what a
        // complete active phase yields).
        for (const std::size_t pos : analyzer.directAtRisk().setBits())
            sys.controller.profile().markAtRisk(0, pos);

        // Reactive phase: normal system operation with periodic writes
        // and retention strikes.
        common::Xoshiro256 data_rng(seed + 60);
        common::Xoshiro256 retention(seed + 70);
        for (int access = 0; access < 200; ++access) {
            const gf2::BitVector data = gf2::BitVector::random(64,
                                                               data_rng);
            sys.controller.write(0, data);
            sys.chip.retentionTick(0, retention);
            const mem::ControllerReadResult r = sys.controller.read(0);
            EXPECT_FALSE(r.corrupt) << "seed " << seed << " access "
                                    << access;
            EXPECT_EQ(r.dataword, data)
                << "seed " << seed << " access " << access;
        }
        EXPECT_EQ(sys.controller.stats().uncorrectableEvents, 0u);
    }
}

TEST(EndToEnd, ReactiveIdentificationsAreIndirectAtRiskBits)
{
    // Bits the reactive profiler identifies (beyond the active profile)
    // must be ground-truth indirect-at-risk bits.
    int total_reactive = 0;
    for (std::uint64_t seed = 200; seed < 215; ++seed) {
        System sys(seed, 1);
        common::Xoshiro256 fault_rng(seed + 50);
        const fault::WordFaultModel faults =
            fault::WordFaultModel::makeUniformFixedCount(71, 5, 0.75,
                                                         fault_rng);
        sys.chip.setFaultModel(0, faults);
        const core::AtRiskAnalyzer analyzer(sys.onDie, faults);
        for (const std::size_t pos : analyzer.directAtRisk().setBits())
            sys.controller.profile().markAtRisk(0, pos);

        common::Xoshiro256 data_rng(seed + 60);
        common::Xoshiro256 retention(seed + 70);
        for (int access = 0; access < 300; ++access) {
            const gf2::BitVector data = gf2::BitVector::random(64,
                                                               data_rng);
            sys.controller.write(0, data);
            sys.chip.retentionTick(0, retention);
            const mem::ControllerReadResult r = sys.controller.read(0);
            if (r.newlyProfiledBit) {
                ++total_reactive;
                EXPECT_TRUE(
                    analyzer.indirectAtRisk().get(*r.newlyProfiledBit))
                    << "seed " << seed;
            }
        }
    }
    // The ensemble must actually exercise reactive identification.
    EXPECT_GT(total_reactive, 0);
}

TEST(EndToEnd, NaiveDrivenRepairLeavesResidualRisk)
{
    // Contrast experiment: drive the repair profile with Naive profiling
    // (normal read path) for a word whose at-risk cells include parity
    // bits; multi-bit residual risk can remain where HARP's would not.
    std::size_t naive_uncorrectable = 0;
    std::size_t harp_uncorrectable = 0;
    for (std::uint64_t seed = 300; seed < 320; ++seed) {
        for (const bool use_harp : {false, true}) {
            System sys(seed, 1);
            common::Xoshiro256 fault_rng(seed + 50);
            const fault::WordFaultModel faults =
                fault::WordFaultModel::makeUniformFixedCount(
                    71, 4, 0.75, fault_rng);
            sys.chip.setFaultModel(0, faults);

            // Short active phase (8 rounds) with the chosen profiler.
            core::PatternGenerator patterns(
                core::PatternKind::Random, 64,
                common::deriveSeed(seed, {3}));
            common::Xoshiro256 retention(common::deriveSeed(seed, {4}));
            for (std::size_t r = 0; r < 8; ++r) {
                const gf2::BitVector pattern = patterns.pattern(r);
                sys.controller.write(0, pattern);
                sys.chip.retentionTick(0, retention);
                gf2::BitVector observed =
                    use_harp ? sys.controller.readRaw(0)
                             : sys.controller.read(0).dataword;
                observed ^= pattern;
                observed.forEachSetBit([&](std::size_t bit) {
                    sys.controller.profile().markAtRisk(0, bit);
                });
            }

            // Reactive operation.
            common::Xoshiro256 data_rng(seed + 60);
            common::Xoshiro256 retention2(seed + 70);
            for (int access = 0; access < 100; ++access) {
                const gf2::BitVector data =
                    gf2::BitVector::random(64, data_rng);
                sys.controller.write(0, data);
                sys.chip.retentionTick(0, retention2);
                sys.controller.read(0);
            }
            (use_harp ? harp_uncorrectable : naive_uncorrectable) +=
                sys.controller.stats().uncorrectableEvents;
        }
    }
    // HARP-profiled systems suffer no more uncorrectable events; over
    // this ensemble Naive leaves strictly more residual risk.
    EXPECT_LE(harp_uncorrectable, naive_uncorrectable);
    EXPECT_GT(naive_uncorrectable, 0u);
}

TEST(EndToEnd, MultiWordChipProfilesIndependently)
{
    System sys(400, 4);
    common::Xoshiro256 fault_rng(401);
    std::vector<core::AtRiskAnalyzer> analyzers;
    std::vector<fault::WordFaultModel> models;
    for (std::size_t w = 0; w < 4; ++w) {
        models.push_back(fault::WordFaultModel::makeUniformFixedCount(
            71, 3, 0.5, fault_rng));
        sys.chip.setFaultModel(w, models.back());
    }
    for (std::size_t w = 0; w < 4; ++w)
        analyzers.emplace_back(sys.onDie, models[w]);

    for (std::size_t w = 0; w < 4; ++w)
        runActivePhase(sys, w, 64, 500 + w);

    for (std::size_t w = 0; w < 4; ++w) {
        for (const std::size_t pos :
             analyzers[w].directAtRisk().setBits()) {
            EXPECT_TRUE(sys.controller.profile().isAtRisk(w, pos))
                << "word " << w << " bit " << pos;
        }
        // No cross-word contamination: profiled bits of word w must be
        // possible at-risk bits of word w specifically.
        sys.controller.profile().wordBitmap(w).forEachSetBit(
            [&](std::size_t bit) {
                EXPECT_TRUE(analyzers[w].directAtRisk().get(bit))
                    << "word " << w << " bit " << bit;
            });
    }
}

} // namespace
} // namespace harp
