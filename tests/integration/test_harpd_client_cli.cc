/**
 * @file
 * Black-box tests for the `harpd_client` CLI binary (path injected by
 * CTest): exit-code contract (0 done, 1 error, 2 usage, 3 cancelled,
 * 4 degraded), malformed-reply handling against a stub daemon, the
 * --timeout-ms/--retries resilience flags bounding a silent daemon,
 * and the degraded exit path against a real fault-injected harpd.
 */

#include <gtest/gtest.h>

#include <atomic>
#include <chrono>
#include <csignal>
#include <cstdlib>
#include <cstring>
#include <filesystem>
#include <fstream>
#include <sstream>
#include <string>
#include <thread>

#include <fcntl.h>
#include <sys/socket.h>
#include <sys/un.h>
#include <sys/wait.h>
#include <unistd.h>

#include "harpd/client.hh"
#include "runner/json.hh"

namespace harp::harpd {
namespace {

namespace fs = std::filesystem;
using runner::JsonValue;

std::string
readFile(const fs::path &path)
{
    std::ifstream in(path, std::ios::binary);
    EXPECT_TRUE(in.good()) << path;
    std::ostringstream out;
    out << in.rdbuf();
    return out.str();
}

/** Run a command line; its exit code (or -1 on signal/exec failure). */
int
runCommand(const std::string &command)
{
    const int status = std::system(command.c_str());
    if (status < 0 || !WIFEXITED(status))
        return -1;
    return WEXITSTATUS(status);
}

/** One-connection scripted daemon (same shape as test_client_retry's,
 *  but reused by a separate process — the CLI under test). */
class StubDaemon
{
  public:
    explicit StubDaemon(const std::string &reply)
        : reply_(reply),
          path_((fs::temp_directory_path() /
                 ("cli_stub_" + std::to_string(::getpid()) + "_" +
                  std::to_string(counter_.fetch_add(1)) + ".sock"))
                    .string())
    {
        listenFd_ = ::socket(AF_UNIX, SOCK_STREAM | SOCK_CLOEXEC, 0);
        EXPECT_GE(listenFd_, 0);
        sockaddr_un addr{};
        addr.sun_family = AF_UNIX;
        std::strncpy(addr.sun_path, path_.c_str(),
                     sizeof(addr.sun_path) - 1);
        ::unlink(path_.c_str());
        EXPECT_EQ(::bind(listenFd_,
                         reinterpret_cast<sockaddr *>(&addr),
                         sizeof(addr)),
                  0);
        EXPECT_EQ(::listen(listenFd_, 8), 0);
        acceptor_ = std::thread([this] { run(); });
    }

    ~StubDaemon()
    {
        stop_.store(true);
        ::shutdown(listenFd_, SHUT_RDWR);
        ::close(listenFd_);
        if (acceptor_.joinable())
            acceptor_.join();
        ::unlink(path_.c_str());
    }

    const std::string &path() const { return path_; }

  private:
    void run()
    {
        while (!stop_.load()) {
            const int fd = ::accept(listenFd_, nullptr, nullptr);
            if (fd < 0)
                return;
            char buffer[4096];
            (void)!::recv(fd, buffer, sizeof(buffer), 0);
            if (!reply_.empty())
                (void)!::send(fd, reply_.data(), reply_.size(),
                              MSG_NOSIGNAL);
            while (!stop_.load()) {
                const ssize_t n =
                    ::recv(fd, buffer, sizeof(buffer), 0);
                if (n <= 0)
                    break;
            }
            ::close(fd);
        }
    }

    static std::atomic<int> counter_;
    std::string reply_;
    std::string path_;
    int listenFd_ = -1;
    std::atomic<bool> stop_{false};
    std::thread acceptor_;
};

std::atomic<int> StubDaemon::counter_{0};

class HarpdClientCliTest : public ::testing::Test
{
  protected:
    void SetUp() override
    {
#ifdef HARPD_CLIENT_BIN_PATH
        client_ = HARPD_CLIENT_BIN_PATH;
#endif
#ifdef HARPD_BIN_PATH
        daemonBin_ = HARPD_BIN_PATH;
#endif
        if (client_.empty() || !fs::exists(client_))
            GTEST_SKIP() << "harpd_client binary not found ("
                         << client_ << ")";
        static int counter = 0;
        root_ = fs::temp_directory_path() /
                ("harpd_cli_" + std::to_string(::getpid()) + "_" +
                 std::to_string(counter++));
        fs::remove_all(root_);
        fs::create_directories(root_);
    }

    void TearDown() override
    {
        if (daemon_ > 0) {
            ::kill(daemon_, SIGKILL);
            ::waitpid(daemon_, nullptr, 0);
        }
        fs::remove_all(root_);
    }

    /** Start the real harpd (requires HARPD_BIN_PATH). */
    void startDaemon(const std::string &fault_plan = "")
    {
        ASSERT_FALSE(daemonBin_.empty());
        ASSERT_TRUE(fs::exists(daemonBin_)) << daemonBin_;
        socket_ = (root_ / "d.sock").string();
        data_ = (root_ / "data").string();
        daemon_ = ::fork();
        ASSERT_GE(daemon_, 0);
        if (daemon_ == 0) {
            const int null = ::open("/dev/null", O_RDWR);
            ::dup2(null, 0);
            ::dup2(null, 1);
            ::dup2(null, 2);
            if (fault_plan.empty())
                ::execl(daemonBin_.c_str(), "harpd", "--socket",
                        socket_.c_str(), "--data", data_.c_str(),
                        "--threads", "2", nullptr);
            else
                ::execl(daemonBin_.c_str(), "harpd", "--socket",
                        socket_.c_str(), "--data", data_.c_str(),
                        "--threads", "2", "--fault-plan",
                        fault_plan.c_str(), nullptr);
            ::_exit(127);
        }
        for (int i = 0; i < 2000; ++i) {
            try {
                Client probe(socket_);
                JsonValue ping = JsonValue::object();
                ping.set("verb", JsonValue("ping"));
                if (probe.request(ping).find("type")->asString() ==
                    "pong")
                    return;
            } catch (const std::exception &) {
            }
            std::this_thread::sleep_for(std::chrono::milliseconds(5));
        }
        FAIL() << "daemon never came up";
    }

    /** The CLI under test, output captured to files under root_. */
    int cli(const std::string &args)
    {
        return runCommand(client_ + " " + args + " > " +
                          (root_ / "out.txt").string() + " 2> " +
                          (root_ / "err.txt").string());
    }

    std::string stdoutText() { return readFile(root_ / "out.txt"); }
    std::string stderrText() { return readFile(root_ / "err.txt"); }

    std::string client_;
    std::string daemonBin_;
    fs::path root_;
    std::string socket_;
    std::string data_;
    pid_t daemon_ = -1;
};

TEST_F(HarpdClientCliTest, UsageErrorsExitTwo)
{
    EXPECT_EQ(cli(""), 2) << "no arguments";
    EXPECT_EQ(cli("ping"), 2) << "no --socket";
    EXPECT_EQ(cli("--socket /tmp/x.sock"), 2) << "no verb";
    EXPECT_EQ(cli("--socket /tmp/x.sock frobnicate"), 2)
        << "unknown verb";
    EXPECT_EQ(cli("--socket /tmp/x.sock --bogus-flag ping"), 2)
        << "unknown flag";
    EXPECT_EQ(cli("--socket /tmp/x.sock status"), 2)
        << "status without campaign";
    EXPECT_EQ(cli("--socket /tmp/x.sock submit lone"), 2)
        << "submit without experiments";
    EXPECT_EQ(cli("--socket /tmp/x.sock subscribe"), 2)
        << "subscribe without campaign";
    EXPECT_EQ(cli("--help"), 0) << "--help is not an error";
}

TEST_F(HarpdClientCliTest, MissingDaemonExitsOneQuickly)
{
    const auto start = std::chrono::steady_clock::now();
    EXPECT_EQ(cli("--socket " + (root_ / "absent.sock").string() +
                  " ping"),
              1);
    const auto elapsed =
        std::chrono::duration_cast<std::chrono::milliseconds>(
            std::chrono::steady_clock::now() - start);
    EXPECT_LT(elapsed.count(), 5000) << "no retry loop by default";
    EXPECT_NE(stderrText().find("harpd_client:"), std::string::npos);
}

TEST_F(HarpdClientCliTest, MalformedReplyExitsOneWithDiagnostic)
{
    StubDaemon stub("this is not json\n");
    EXPECT_EQ(cli("--socket " + stub.path() + " ping"), 1);
    EXPECT_NE(stderrText().find("invalid JSON"), std::string::npos)
        << stderrText();
}

TEST_F(HarpdClientCliTest, SilentDaemonIsBoundedByTimeoutAndRetries)
{
    StubDaemon stub(""); // accepts, never replies
    const auto start = std::chrono::steady_clock::now();
    EXPECT_EQ(cli("--socket " + stub.path() +
                  " --timeout-ms 200 --retries 2 --backoff-ms 10 "
                  "ping"),
              1);
    const auto elapsed =
        std::chrono::duration_cast<std::chrono::milliseconds>(
            std::chrono::steady_clock::now() - start);
    // 3 attempts x 200ms deadline + two small backoffs: bounded, not
    // hung. (The generous ceiling keeps sanitizer runs honest.)
    EXPECT_GE(elapsed.count(), 400);
    EXPECT_LT(elapsed.count(), 10000);
    EXPECT_NE(stderrText().find("retrying"), std::string::npos)
        << stderrText();
}

TEST_F(HarpdClientCliTest, ErrorReplyExitsOne)
{
    StubDaemon stub("{\"type\":\"error\",\"code\":\"unknown_verb\","
                    "\"message\":\"nope\"}\n");
    EXPECT_EQ(cli("--socket " + stub.path() + " ping"), 1);
    EXPECT_NE(stderrText().find("unknown_verb"), std::string::npos);
}

TEST_F(HarpdClientCliTest, HappyPathAgainstARealDaemon)
{
    if (daemonBin_.empty() || !fs::exists(daemonBin_))
        GTEST_SKIP() << "harpd binary not available";
    startDaemon();

    EXPECT_EQ(cli("--socket " + socket_ + " ping"), 0);
    EXPECT_NE(stdoutText().find("pong"), std::string::npos);
    EXPECT_EQ(cli("--socket " + socket_ + " list"), 0);

    // Unknown campaign: structured error, exit 1.
    EXPECT_EQ(cli("--socket " + socket_ + " status ghost"), 1);
    EXPECT_NE(stderrText().find("unknown_campaign"),
              std::string::npos);

    // A small real submit, mirrored to --out.
    const std::string out = (root_ / "mirror").string();
    EXPECT_EQ(cli("--socket " + socket_ +
                  " --out " + out +
                  " --seed 5 --repeat 2 --set rounds 1024 "
                  "submit job1 quickstart"),
              0);
    EXPECT_TRUE(fs::exists(fs::path(out) / "quickstart.jsonl"));
    EXPECT_TRUE(fs::exists(fs::path(out) / "summary.json"));
    // The mirror matches what the daemon published.
    const fs::path published = fs::path(data_) / "results" / "job1";
    EXPECT_EQ(readFile(fs::path(out) / "quickstart.jsonl"),
              readFile(published / "quickstart.jsonl"));
    EXPECT_EQ(readFile(fs::path(out) / "summary.json"),
              readFile(published / "summary.json"));

    // Post-hoc subscribe replays the same stream into a fresh mirror.
    const std::string replay = (root_ / "replay").string();
    EXPECT_EQ(cli("--socket " + socket_ + " --out " + replay +
                  " subscribe job1"),
              0);
    EXPECT_EQ(readFile(fs::path(replay) / "quickstart.jsonl"),
              readFile(published / "quickstart.jsonl"));
    EXPECT_EQ(readFile(fs::path(replay) / "summary.json"),
              readFile(published / "summary.json"));

    // Duplicate submit downgrades to a subscribe of the finished
    // campaign (idempotent resubmit) — same bytes again, exit 0.
    const std::string again = (root_ / "again").string();
    EXPECT_EQ(cli("--socket " + socket_ + " --out " + again +
                  " --seed 5 --repeat 2 --set rounds 1024 "
                  "--retries 1 submit job1 quickstart"),
              0);
    EXPECT_EQ(readFile(fs::path(again) / "quickstart.jsonl"),
              readFile(published / "quickstart.jsonl"));

    EXPECT_EQ(cli("--socket " + socket_ + " shutdown"), 0);
    ::waitpid(daemon_, nullptr, 0);
    daemon_ = -1;
}

TEST_F(HarpdClientCliTest, DegradedCampaignExitsFourThenResumes)
{
    if (daemonBin_.empty() || !fs::exists(daemonBin_))
        GTEST_SKIP() << "harpd binary not available";
    // Sticky ENOSPC a few durable writes in: the submit degrades.
    startDaemon("write#6+=ENOSPC");

    EXPECT_EQ(cli("--socket " + socket_ +
                  " --seed 5 --repeat 8 --set rounds 1024 "
                  "submit dcamp quickstart"),
              4)
        << stderrText();
    EXPECT_NE(stderrText().find("degraded"), std::string::npos);

    // Resuming while the fault persists degrades again (exit 1 from
    // the error-free resume verb is 0 — the *resume* is accepted —
    // so check status instead). Restart without the fault: the
    // checkpoint finishes the campaign.
    ::kill(daemon_, SIGKILL);
    ::waitpid(daemon_, nullptr, 0);
    daemon_ = -1;
    startDaemon();
    for (int i = 0; i < 2000; ++i) {
        if (cli("--socket " + socket_ + " status dcamp") == 0 &&
            stdoutText().find("\"done\"") != std::string::npos)
            break;
        std::this_thread::sleep_for(std::chrono::milliseconds(10));
    }
    EXPECT_NE(stdoutText().find("\"done\""), std::string::npos)
        << stdoutText();
    EXPECT_EQ(cli("--socket " + socket_ + " shutdown"), 0);
    ::waitpid(daemon_, nullptr, 0);
    daemon_ = -1;
}

} // namespace
} // namespace harp::harpd
