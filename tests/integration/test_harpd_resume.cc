/**
 * @file
 * Kill/resume property tests against the real `harpd` binary (path in
 * $HARPD_BIN, injected by CTest): SIGKILL the daemon after N streamed
 * results, restart it on the same data dir, and require the resumed
 * campaign's published JSONL + summary.json to be byte-identical to an
 * uninterrupted batch `harp_run --no-timings` — including the variant
 * where the checkpoint's tail record was corrupted by the crash and
 * must be truncate-recovered (never abort, never .bad) with only the
 * lost job recomputed.
 */

#include <gtest/gtest.h>

#include <chrono>
#include <csignal>
#include <cstdlib>
#include <filesystem>
#include <fstream>
#include <sstream>
#include <string>
#include <thread>

#include <fcntl.h>
#include <sys/wait.h>
#include <unistd.h>

#include "harpd/checkpoint.hh"
#include "harpd/client.hh"
#include "runner/campaign.hh"
#include "runner/registry.hh"

namespace harp::harpd {
namespace {

namespace fs = std::filesystem;
using runner::JsonValue;

constexpr std::uint64_t kSeed = 11;
constexpr std::size_t kRepeat = 48; // quickstart grid is 1 point
const std::map<std::string, std::string> kOverrides = {
    {"rounds", "2048"}}; // paces one job to a few ms: a kill window

std::string
readFile(const fs::path &path)
{
    std::ifstream in(path, std::ios::binary);
    EXPECT_TRUE(in.good()) << path;
    std::ostringstream out;
    out << in.rdbuf();
    return out.str();
}

class HarpdResumeTest : public ::testing::Test
{
  protected:
    void SetUp() override
    {
#ifdef HARPD_BIN_PATH
        binary_ = HARPD_BIN_PATH; // injected by CMake (TARGET_FILE)
#endif
        if (const char *env = std::getenv("HARPD_BIN"))
            binary_ = env;
        if (binary_.empty() || !fs::exists(binary_))
            GTEST_SKIP() << "harpd binary not found (" << binary_
                         << ")";
        root_ = fs::temp_directory_path() /
                ("harpd_resume_" + std::to_string(::getpid()));
        fs::remove_all(root_);
        fs::create_directories(root_);
        socket_ = (root_ / "d.sock").string();
        data_ = (root_ / "data").string();
    }

    void TearDown() override
    {
        if (daemon_ > 0) {
            ::kill(daemon_, SIGKILL);
            ::waitpid(daemon_, nullptr, 0);
        }
        if (!root_.empty())
            fs::remove_all(root_);
    }

    void startDaemon()
    {
        daemon_ = ::fork();
        ASSERT_GE(daemon_, 0);
        if (daemon_ == 0) {
            const int null = ::open("/dev/null", O_RDWR);
            ::dup2(null, 0);
            ::dup2(null, 1);
            ::dup2(null, 2);
            ::execl(binary_.c_str(), "harpd", "--socket",
                    socket_.c_str(), "--data", data_.c_str(),
                    "--threads", "4", nullptr);
            ::_exit(127);
        }
        // Wait until the socket accepts (bound in start(), so resumed
        // campaigns are already registered once we can talk).
        for (int i = 0; i < 2000; ++i) {
            try {
                Client probe(socket_);
                JsonValue ping = JsonValue::object();
                ping.set("verb", JsonValue("ping"));
                if (probe.request(ping).find("type")->asString() ==
                    "pong")
                    return;
            } catch (const std::exception &) {
            }
            std::this_thread::sleep_for(std::chrono::milliseconds(5));
        }
        FAIL() << "daemon never came up";
    }

    void killDaemon()
    {
        ASSERT_GT(daemon_, 0);
        ::kill(daemon_, SIGKILL);
        ::waitpid(daemon_, nullptr, 0);
        daemon_ = -1;
    }

    void shutdownDaemon()
    {
        {
            Client client(socket_);
            JsonValue request = JsonValue::object();
            request.set("verb", JsonValue("shutdown"));
            client.request(request);
        }
        ::waitpid(daemon_, nullptr, 0);
        daemon_ = -1;
    }

    JsonValue awaitDone(const std::string &campaign)
    {
        for (int i = 0; i < 4000; ++i) {
            try {
                Client client(socket_);
                JsonValue request = JsonValue::object();
                request.set("verb", JsonValue("status"));
                request.set("campaign", JsonValue(campaign));
                const JsonValue reply = client.request(request);
                if (reply.find("type")->asString() == "status") {
                    const std::string state =
                        reply.find("state")->asString();
                    EXPECT_NE(state, "failed")
                        << reply.find("error")->asString();
                    if (state == "done" || state == "failed")
                        return reply;
                }
            } catch (const std::exception &) {
            }
            std::this_thread::sleep_for(std::chrono::milliseconds(5));
        }
        ADD_FAILURE() << campaign << " never finished";
        return JsonValue::object();
    }

    /** Uninterrupted ground truth from the in-process batch driver. */
    fs::path batchGroundTruth()
    {
        const fs::path out = root_ / "batch";
        if (!fs::exists(out)) {
            runner::CampaignOptions options;
            options.seed = kSeed;
            options.threads = 4;
            options.repeat = kRepeat;
            options.noTimings = true;
            options.outDir = out.string();
            options.overrides = kOverrides;
            std::ostringstream log;
            runner::runCampaign(
                runner::builtinRegistry().select({"quickstart"}),
                options, log);
        }
        return out;
    }

    /** Submit "c", SIGKILL the daemon after @p kill_after streamed
     *  results, optionally mangle the checkpoint tail, restart, and
     *  verify the resumed output byte-matches the ground truth. */
    void runKillResumeScenario(std::size_t kill_after,
                               bool corrupt_tail)
    {
        const fs::path batch = batchGroundTruth();
        startDaemon();
        {
            Client client(socket_);
            JsonValue request = JsonValue::object();
            request.set("verb", JsonValue("submit"));
            request.set("campaign", JsonValue("c"));
            JsonValue experiments = JsonValue::array();
            experiments.push(JsonValue("quickstart"));
            request.set("experiments", experiments);
            request.set("seed", JsonValue(std::to_string(kSeed)));
            request.set("repeat", JsonValue(kRepeat));
            JsonValue overrides = JsonValue::object();
            for (const auto &[key, value] : kOverrides)
                overrides.set(key, JsonValue(value));
            request.set("overrides", overrides);
            ASSERT_TRUE(client.send(request));

            std::size_t results = 0;
            while (results < kill_after) {
                const std::optional<JsonValue> event = client.read();
                ASSERT_TRUE(event.has_value())
                    << "stream ended after " << results << " results";
                const std::string kind =
                    event->find("type")->asString();
                ASSERT_NE(kind, "done")
                    << "campaign finished before the kill point; "
                       "raise rounds/repeat";
                ASSERT_NE(kind, "error") << event->dump();
                if (kind == "result")
                    ++results;
            }
        }
        killDaemon();

        // The durable record leads the stream: every result the client
        // saw must already be in the checkpoint.
        const fs::path ckpt =
            fs::path(data_) / "checkpoints" / "c.ckpt";
        ASSERT_TRUE(fs::exists(ckpt));
        {
            const std::optional<LoadedCheckpoint> loaded =
                loadCheckpoint(ckpt.string());
            ASSERT_TRUE(loaded.has_value());
            EXPECT_GE(loaded->records.size(), kill_after);
            EXPECT_LT(loaded->records.size(), kRepeat)
                << "campaign finished before the kill; no resume "
                   "would be exercised";
        }

        if (corrupt_tail) {
            // Crash-corrupt the *last full record*: flip a payload
            // byte so its checksum fails, then add a torn half-record.
            std::string text = readFile(ckpt);
            const std::size_t last_start =
                text.rfind('\n', text.size() - 2) + 1;
            text[last_start + 24] ^= 0x20;
            text += "0123456789abcdef {\"type\":\"job\",\"exp";
            std::ofstream out(ckpt,
                              std::ios::binary | std::ios::trunc);
            out << text;
        }

        startDaemon(); // resumes "c" detached from any client
        awaitDone("c");

        // No checkpoint was abandoned as .bad — tail corruption is
        // recoverable by construction.
        EXPECT_FALSE(fs::exists(ckpt.string() + ".bad"));
        EXPECT_FALSE(fs::exists(ckpt)); // consumed on completion

        const fs::path published =
            fs::path(data_) / "results" / "c";
        EXPECT_EQ(readFile(published / "quickstart.jsonl"),
                  readFile(batch / "quickstart.jsonl"));
        EXPECT_EQ(readFile(published / "summary.json"),
                  readFile(batch / "summary.json"));
        shutdownDaemon();
    }

    std::string binary_;
    fs::path root_;
    std::string socket_;
    std::string data_;
    pid_t daemon_ = -1;
};

TEST_F(HarpdResumeTest, KillEarlyThenResumeIsByteIdentical)
{
    runKillResumeScenario(/*kill_after=*/2, /*corrupt_tail=*/false);
}

TEST_F(HarpdResumeTest, KillLateThenResumeIsByteIdentical)
{
    runKillResumeScenario(/*kill_after=*/13, /*corrupt_tail=*/false);
}

TEST_F(HarpdResumeTest, CorruptedCheckpointTailIsRecoveredNotFatal)
{
    runKillResumeScenario(/*kill_after=*/5, /*corrupt_tail=*/true);
}

} // namespace
} // namespace harp::harpd
