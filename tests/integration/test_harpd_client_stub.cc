/**
 * @file
 * Forward-compatibility contract of the `harpd_client` binary against
 * a scripted stub daemon: event kinds this build does not know are
 * skipped silently (a newer daemon never breaks a deployed client),
 * `progress`/`queued` render only under --verbose, `deadline_exceeded`
 * — as a stream event or a terminal subscribe status — exits 5, and
 * submit forwards --priority/--deadline-ms onto the wire.
 */

#include <gtest/gtest.h>

#include <atomic>
#include <cstdlib>
#include <cstring>
#include <filesystem>
#include <fstream>
#include <mutex>
#include <sstream>
#include <string>
#include <thread>

#include <sys/socket.h>
#include <sys/un.h>
#include <sys/wait.h>
#include <unistd.h>

namespace harp::harpd {
namespace {

namespace fs = std::filesystem;

std::string
readFile(const fs::path &path)
{
    std::ifstream in(path, std::ios::binary);
    EXPECT_TRUE(in.good()) << path;
    std::ostringstream out;
    out << in.rdbuf();
    return out.str();
}

int
runCommand(const std::string &command)
{
    const int status = std::system(command.c_str());
    if (status < 0 || !WIFEXITED(status))
        return -1;
    return WEXITSTATUS(status);
}

/** One-connection scripted daemon: replies with a fixed event script
 *  and records the first request line for wire-format assertions. */
class StubDaemon
{
  public:
    explicit StubDaemon(const std::string &reply)
        : reply_(reply),
          path_((fs::temp_directory_path() /
                 ("ovl_stub_" + std::to_string(::getpid()) + "_" +
                  std::to_string(counter_.fetch_add(1)) + ".sock"))
                    .string())
    {
        listenFd_ = ::socket(AF_UNIX, SOCK_STREAM | SOCK_CLOEXEC, 0);
        EXPECT_GE(listenFd_, 0);
        sockaddr_un addr{};
        addr.sun_family = AF_UNIX;
        std::strncpy(addr.sun_path, path_.c_str(),
                     sizeof(addr.sun_path) - 1);
        ::unlink(path_.c_str());
        EXPECT_EQ(::bind(listenFd_,
                         reinterpret_cast<sockaddr *>(&addr),
                         sizeof(addr)),
                  0);
        EXPECT_EQ(::listen(listenFd_, 8), 0);
        acceptor_ = std::thread([this] { run(); });
    }

    ~StubDaemon()
    {
        stop_.store(true);
        ::shutdown(listenFd_, SHUT_RDWR);
        ::close(listenFd_);
        if (acceptor_.joinable())
            acceptor_.join();
        ::unlink(path_.c_str());
    }

    const std::string &path() const { return path_; }

    std::string firstRequest() const
    {
        std::lock_guard<std::mutex> lock(mutex_);
        return firstRequest_;
    }

  private:
    void run()
    {
        while (!stop_.load()) {
            const int fd = ::accept(listenFd_, nullptr, nullptr);
            if (fd < 0)
                return;
            char buffer[8192];
            const ssize_t got = ::recv(fd, buffer, sizeof(buffer), 0);
            if (got > 0) {
                std::lock_guard<std::mutex> lock(mutex_);
                if (firstRequest_.empty())
                    firstRequest_.assign(buffer,
                                         static_cast<std::size_t>(got));
            }
            if (!reply_.empty())
                (void)!::send(fd, reply_.data(), reply_.size(),
                              MSG_NOSIGNAL);
            while (!stop_.load()) {
                const ssize_t n =
                    ::recv(fd, buffer, sizeof(buffer), 0);
                if (n <= 0)
                    break;
            }
            ::close(fd);
        }
    }

    static std::atomic<int> counter_;
    std::string reply_;
    std::string path_;
    int listenFd_ = -1;
    std::atomic<bool> stop_{false};
    std::thread acceptor_;
    mutable std::mutex mutex_;
    std::string firstRequest_;
};

std::atomic<int> StubDaemon::counter_{0};

class HarpdClientStubTest : public ::testing::Test
{
  protected:
    void SetUp() override
    {
#ifdef HARPD_CLIENT_BIN_PATH
        client_ = HARPD_CLIENT_BIN_PATH;
#endif
        if (client_.empty() || !fs::exists(client_))
            GTEST_SKIP() << "harpd_client binary not found ("
                         << client_ << ")";
        static int counter = 0;
        root_ = fs::temp_directory_path() /
                ("harpd_stub_" + std::to_string(::getpid()) + "_" +
                 std::to_string(counter++));
        fs::remove_all(root_);
        fs::create_directories(root_);
    }

    void TearDown() override { fs::remove_all(root_); }

    int cli(const std::string &args)
    {
        return runCommand(client_ + " " + args + " > " +
                          (root_ / "out.txt").string() + " 2> " +
                          (root_ / "err.txt").string());
    }

    std::string stdoutText() { return readFile(root_ / "out.txt"); }
    std::string stderrText() { return readFile(root_ / "err.txt"); }

    std::string client_;
    fs::path root_;
};

/** A stream a *future* daemon might send: heartbeats, an unknown
 *  event kind, then completion. */
const char *kFutureStream =
    "{\"type\":\"accepted\",\"seq\":0,\"campaign\":\"c\","
    "\"total_jobs\":1,\"restored_jobs\":0}\n"
    "{\"type\":\"progress\",\"seq\":1,\"campaign\":\"c\",\"wave\":1,"
    "\"jobs_done\":1,\"jobs_total\":1,\"jobs_per_sec\":42.0}\n"
    "{\"type\":\"hologram_ready\",\"seq\":2,\"shard\":7}\n"
    "{\"type\":\"result\",\"seq\":3,\"experiment\":\"quickstart\","
    "\"job\":0,\"line\":\"{\\\"x\\\":1}\"}\n"
    "{\"type\":\"done\",\"seq\":4,\"campaign\":\"c\"}\n";

TEST_F(HarpdClientStubTest, UnknownEventKindsAreSkippedSilently)
{
    StubDaemon stub(kFutureStream);
    EXPECT_EQ(cli("--socket " + stub.path() + " submit c quickstart"),
              0);
    // The result still flowed through to stdout...
    EXPECT_NE(stdoutText().find("{\"x\":1}"), std::string::npos);
    // ...and neither the unknown kind nor the heartbeats made noise.
    EXPECT_EQ(stderrText().find("hologram_ready"), std::string::npos)
        << stderrText();
    EXPECT_EQ(stderrText().find("progress"), std::string::npos);
}

TEST_F(HarpdClientStubTest, VerboseRendersAdvisoryAndUnknownEvents)
{
    StubDaemon stub(std::string(
        "{\"type\":\"queued\",\"campaign\":\"c\",\"position\":1,"
        "\"retry_after_ms\":200}\n") + kFutureStream);
    EXPECT_EQ(cli("--socket " + stub.path() +
                  " --verbose submit c quickstart"),
              0);
    EXPECT_NE(stderrText().find("queued"), std::string::npos)
        << stderrText();
    EXPECT_NE(stderrText().find("progress"), std::string::npos);
    EXPECT_NE(stderrText().find("hologram_ready"), std::string::npos)
        << "--verbose should note skipped unknown events";
}

TEST_F(HarpdClientStubTest, DeadlineExceededEventExitsFive)
{
    StubDaemon stub(
        "{\"type\":\"accepted\",\"seq\":0,\"campaign\":\"c\","
        "\"total_jobs\":4,\"restored_jobs\":0}\n"
        "{\"type\":\"result\",\"seq\":1,\"experiment\":\"quickstart\","
        "\"job\":0,\"line\":\"{\\\"x\\\":1}\"}\n"
        "{\"type\":\"deadline_exceeded\",\"campaign\":\"c\","
        "\"completed_jobs\":1,\"total_jobs\":4,\"resumable\":true}\n");
    EXPECT_EQ(cli("--socket " + stub.path() +
                  " submit c quickstart --deadline-ms 1000"),
              5);
    EXPECT_NE(stderrText().find("deadline_exceeded"),
              std::string::npos);
}

TEST_F(HarpdClientStubTest, TerminalDeadlineStatusOnSubscribeExitsFive)
{
    StubDaemon stub(
        "{\"type\":\"subscribed\",\"campaign\":\"c\",\"from\":0}\n"
        "{\"type\":\"status\",\"campaign\":\"c\","
        "\"state\":\"deadline_exceeded\",\"completed_jobs\":2,"
        "\"total_jobs\":4}\n");
    EXPECT_EQ(cli("--socket " + stub.path() + " subscribe c"), 5);
}

TEST_F(HarpdClientStubTest, SubmitForwardsPriorityAndDeadlineOnWire)
{
    StubDaemon stub(
        "{\"type\":\"error\",\"code\":\"shutting_down\","
        "\"message\":\"scripted\"}\n");
    EXPECT_EQ(cli("--socket " + stub.path() +
                  " submit c quickstart --priority background "
                  "--deadline-ms 1500 --tenant sweeper"),
              1);
    const std::string wire = stub.firstRequest();
    EXPECT_NE(wire.find("\"priority\":\"background\""),
              std::string::npos)
        << wire;
    EXPECT_NE(wire.find("\"deadline_ms\":1500"), std::string::npos);
    EXPECT_NE(wire.find("\"tenant\":\"sweeper\""), std::string::npos);
}

TEST_F(HarpdClientStubTest, BadDeadlineFlagIsUsageError)
{
    EXPECT_EQ(cli("--socket /tmp/x.sock submit c quickstart "
                  "--deadline-ms 0"),
              2);
    EXPECT_EQ(cli("--socket /tmp/x.sock submit c quickstart "
                  "--deadline-ms -5"),
              2);
}

} // namespace
} // namespace harp::harpd
