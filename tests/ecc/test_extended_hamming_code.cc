/**
 * @file
 * Unit and parameterized tests for the SECDED secondary ECC: corrects all
 * single errors, detects (never miscorrects) all double errors — the
 * property HARP's reactive profiling safety argument rests on.
 */

#include <gtest/gtest.h>

#include <set>

#include "common/rng.hh"
#include "ecc/extended_hamming_code.hh"

namespace harp::ecc {
namespace {

TEST(ExtendedHamming, Dimensions)
{
    common::Xoshiro256 rng(1);
    const ExtendedHammingCode code =
        ExtendedHammingCode::randomSecDed(64, rng);
    EXPECT_EQ(code.k(), 64u);
    EXPECT_EQ(code.checkBits(), 8u); // 7 Hamming + 1 overall parity
    EXPECT_EQ(code.n(), 72u);        // the classic (72, 64) SECDED shape
}

TEST(ExtendedHamming, EncodeHasEvenOverallParity)
{
    common::Xoshiro256 rng(2);
    const ExtendedHammingCode code =
        ExtendedHammingCode::randomSecDed(32, rng);
    for (int trial = 0; trial < 20; ++trial) {
        const gf2::BitVector d = gf2::BitVector::random(32, rng);
        const gf2::BitVector c = code.encode(d);
        EXPECT_EQ(c.popcount() % 2, 0u);
    }
}

TEST(ExtendedHamming, CleanDecode)
{
    common::Xoshiro256 rng(3);
    const ExtendedHammingCode code =
        ExtendedHammingCode::randomSecDed(64, rng);
    const gf2::BitVector d = gf2::BitVector::random(64, rng);
    const SecondaryDecodeResult r = code.decode(code.encode(d));
    EXPECT_EQ(r.status, SecondaryDecodeStatus::NoError);
    EXPECT_EQ(r.dataword, d);
    EXPECT_FALSE(r.correctedPosition.has_value());
}

class SecDedSweep : public ::testing::TestWithParam<std::size_t>
{
};

TEST_P(SecDedSweep, EverySingleErrorCorrected)
{
    const std::size_t k = GetParam();
    common::Xoshiro256 rng(100 + k);
    const ExtendedHammingCode code =
        ExtendedHammingCode::randomSecDed(k, rng);
    const gf2::BitVector d = gf2::BitVector::random(k, rng);
    const gf2::BitVector clean = code.encode(d);
    for (std::size_t pos = 0; pos < code.n(); ++pos) {
        gf2::BitVector c = clean;
        c.flip(pos);
        const SecondaryDecodeResult r = code.decode(c);
        EXPECT_EQ(r.status, SecondaryDecodeStatus::CorrectedSingle)
            << "error at " << pos;
        EXPECT_EQ(r.dataword, d);
        ASSERT_TRUE(r.correctedPosition.has_value());
        EXPECT_EQ(*r.correctedPosition, pos);
    }
}

TEST_P(SecDedSweep, EveryDoubleErrorDetectedNotMiscorrected)
{
    const std::size_t k = GetParam();
    common::Xoshiro256 rng(200 + k);
    const ExtendedHammingCode code =
        ExtendedHammingCode::randomSecDed(k, rng);
    const gf2::BitVector d = gf2::BitVector::random(k, rng);
    const gf2::BitVector clean = code.encode(d);
    // Exhaustive for small k; sampled pairs for larger k.
    const bool exhaustive = code.n() <= 24;
    const int samples = exhaustive ? 0 : 300;
    auto check_pair = [&](std::size_t i, std::size_t j) {
        gf2::BitVector c = clean;
        c.flip(i);
        c.flip(j);
        const SecondaryDecodeResult r = code.decode(c);
        EXPECT_EQ(r.status,
                  SecondaryDecodeStatus::DetectedUncorrectable)
            << "errors at " << i << "," << j;
    };
    if (exhaustive) {
        for (std::size_t i = 0; i < code.n(); ++i)
            for (std::size_t j = i + 1; j < code.n(); ++j)
                check_pair(i, j);
    } else {
        for (int s = 0; s < samples; ++s) {
            const std::size_t i = rng.nextBelow(code.n());
            std::size_t j = rng.nextBelow(code.n());
            while (j == i)
                j = rng.nextBelow(code.n());
            check_pair(i, j);
        }
    }
}

INSTANTIATE_TEST_SUITE_P(DatawordLengths, SecDedSweep,
                         ::testing::Values(8, 16, 64, 128));

TEST(ExtendedHamming, OverallParityBitErrorCorrected)
{
    common::Xoshiro256 rng(4);
    const ExtendedHammingCode code =
        ExtendedHammingCode::randomSecDed(16, rng);
    const gf2::BitVector d = gf2::BitVector::random(16, rng);
    gf2::BitVector c = code.encode(d);
    c.flip(code.n() - 1); // the overall parity bit itself
    const SecondaryDecodeResult r = code.decode(c);
    EXPECT_EQ(r.status, SecondaryDecodeStatus::CorrectedSingle);
    ASSERT_TRUE(r.correctedPosition.has_value());
    EXPECT_EQ(*r.correctedPosition, code.n() - 1);
    EXPECT_EQ(r.dataword, d);
}

TEST(ExtendedHamming, TripleErrorsNeverReportNoError)
{
    // SECDED guarantees end at 2 errors, but a triple error must never be
    // reported as a clean word (it has odd parity).
    common::Xoshiro256 rng(5);
    const ExtendedHammingCode code =
        ExtendedHammingCode::randomSecDed(32, rng);
    const gf2::BitVector d = gf2::BitVector::random(32, rng);
    const gf2::BitVector clean = code.encode(d);
    for (int trial = 0; trial < 100; ++trial) {
        gf2::BitVector c = clean;
        std::set<std::size_t> positions;
        while (positions.size() < 3)
            positions.insert(rng.nextBelow(code.n()));
        for (const std::size_t pos : positions)
            c.flip(pos);
        const SecondaryDecodeResult r = code.decode(c);
        EXPECT_NE(r.status, SecondaryDecodeStatus::NoError);
    }
}

} // namespace
} // namespace harp::ecc
