/**
 * @file
 * Unit, property, and parameterized tests for the double-error-correcting
 * BCH code (the stronger-on-die-ECC extension). The decisive properties:
 * every 1- and 2-bit error pattern is corrected exactly; >= 3-bit
 * patterns either flag uncorrectable or miscorrect by at most t = 2
 * flips — which is what bounds HARP's concurrent indirect errors at 2.
 */

#include <gtest/gtest.h>

#include <set>

#include "common/rng.hh"
#include "ecc/bch_code.hh"

namespace harp::ecc {
namespace {

TEST(BchDecCode, Geometry64)
{
    const BchDecCode code(64);
    EXPECT_EQ(code.k(), 64u);
    EXPECT_EQ(code.field().m(), 7u);
    EXPECT_EQ(code.p(), 14u); // deg m1 + deg m3 = 7 + 7
    EXPECT_EQ(code.n(), 78u); // shortened BCH(127,113) -> (78,64)
}

TEST(BchDecCode, GeneratorDividesCodewords)
{
    // Every encoded word, viewed as a polynomial, must be divisible by
    // g(x): check via syndrome-free decode over random datawords.
    const BchDecCode code(32);
    common::Xoshiro256 rng(1);
    for (int trial = 0; trial < 50; ++trial) {
        const gf2::BitVector d = gf2::BitVector::random(32, rng);
        const BchDecodeResult r = code.decode(code.encode(d));
        EXPECT_EQ(r.dataword, d);
        EXPECT_TRUE(r.correctedPositions.empty());
        EXPECT_FALSE(r.detectedUncorrectable);
    }
}

TEST(BchDecCode, SystematicEncoding)
{
    const BchDecCode code(64);
    common::Xoshiro256 rng(2);
    for (int trial = 0; trial < 20; ++trial) {
        const gf2::BitVector d = gf2::BitVector::random(64, rng);
        EXPECT_EQ(code.encode(d).slice(0, 64), d);
    }
}

TEST(BchDecCode, ParityRowsMatchEncoder)
{
    const BchDecCode code(48);
    common::Xoshiro256 rng(3);
    const gf2::BitVector d = gf2::BitVector::random(48, rng);
    const gf2::BitVector c = code.encode(d);
    for (std::size_t j = 0; j < code.p(); ++j)
        EXPECT_EQ(c.get(code.k() + j), code.parityRow(j).dot(d));
}

TEST(BchDecCode, LinearityOfEncoding)
{
    const BchDecCode code(64);
    common::Xoshiro256 rng(4);
    const gf2::BitVector a = gf2::BitVector::random(64, rng);
    const gf2::BitVector b = gf2::BitVector::random(64, rng);
    gf2::BitVector sum = a;
    sum ^= b;
    gf2::BitVector expected = code.encode(a);
    expected ^= code.encode(b);
    EXPECT_EQ(code.encode(sum), expected);
}

class BchSweep : public ::testing::TestWithParam<std::size_t>
{
};

TEST_P(BchSweep, EverySingleErrorCorrected)
{
    const BchDecCode code(GetParam());
    common::Xoshiro256 rng(100 + GetParam());
    const gf2::BitVector d = gf2::BitVector::random(code.k(), rng);
    const gf2::BitVector clean = code.encode(d);
    for (std::size_t pos = 0; pos < code.n(); ++pos) {
        gf2::BitVector c = clean;
        c.flip(pos);
        const BchDecodeResult r = code.decode(c);
        EXPECT_EQ(r.dataword, d) << "error at " << pos;
        ASSERT_EQ(r.correctedPositions.size(), 1u);
        EXPECT_EQ(r.correctedPositions[0], pos);
    }
}

TEST_P(BchSweep, EveryDoubleErrorCorrected)
{
    const BchDecCode code(GetParam());
    common::Xoshiro256 rng(200 + GetParam());
    const gf2::BitVector d = gf2::BitVector::random(code.k(), rng);
    const gf2::BitVector clean = code.encode(d);
    // Exhaustive over all pairs for small codes, sampled for larger.
    const bool exhaustive = code.n() <= 40;
    auto check = [&](std::size_t i, std::size_t j) {
        gf2::BitVector c = clean;
        c.flip(i);
        c.flip(j);
        const BchDecodeResult r = code.decode(c);
        EXPECT_EQ(r.dataword, d) << "errors at " << i << "," << j;
        ASSERT_EQ(r.correctedPositions.size(), 2u);
        EXPECT_EQ(r.correctedPositions[0], std::min(i, j));
        EXPECT_EQ(r.correctedPositions[1], std::max(i, j));
    };
    if (exhaustive) {
        for (std::size_t i = 0; i < code.n(); ++i)
            for (std::size_t j = i + 1; j < code.n(); ++j)
                check(i, j);
    } else {
        for (int s = 0; s < 400; ++s) {
            const std::size_t i = rng.nextBelow(code.n());
            std::size_t j = rng.nextBelow(code.n());
            while (j == i)
                j = rng.nextBelow(code.n());
            check(i, j);
        }
    }
}

TEST_P(BchSweep, TripleErrorsNeverFlipMoreThanTwo)
{
    // The generalized HARP bound: a t=2 decoder can add at most 2
    // erroneous flips (indirect errors), no matter the input pattern.
    const BchDecCode code(GetParam());
    common::Xoshiro256 rng(300 + GetParam());
    const gf2::BitVector d = gf2::BitVector::random(code.k(), rng);
    const gf2::BitVector clean = code.encode(d);
    int miscorrections = 0, detected = 0;
    for (int trial = 0; trial < 300; ++trial) {
        gf2::BitVector c = clean;
        std::set<std::size_t> errors;
        while (errors.size() < 3)
            errors.insert(rng.nextBelow(code.n()));
        for (const std::size_t pos : errors)
            c.flip(pos);
        const BchDecodeResult r = code.decode(c);
        EXPECT_LE(r.correctedPositions.size(), 2u);
        if (r.detectedUncorrectable) {
            ++detected;
            EXPECT_TRUE(r.correctedPositions.empty());
        } else if (!r.correctedPositions.empty()) {
            ++miscorrections;
        }
    }
    // Both behaviours occur for triple errors in a shortened DEC code.
    EXPECT_GT(detected, 0);
    EXPECT_GT(miscorrections, 0);
}

INSTANTIATE_TEST_SUITE_P(DatawordLengths, BchSweep,
                         ::testing::Values(16, 32, 64, 128));

TEST(BchDecCode, DecodeErrorPatternMatchesFullDecode)
{
    const BchDecCode code(64);
    common::Xoshiro256 rng(5);
    for (int trial = 0; trial < 100; ++trial) {
        const gf2::BitVector d = gf2::BitVector::random(64, rng);
        std::set<std::size_t> errors;
        const std::size_t count = 1 + rng.nextBelow(4);
        while (errors.size() < count)
            errors.insert(rng.nextBelow(code.n()));
        gf2::BitVector c = code.encode(d);
        for (const std::size_t pos : errors)
            c.flip(pos);
        const BchDecodeResult full = code.decode(c);
        gf2::BitVector diff = full.dataword;
        diff ^= d;
        EXPECT_EQ(diff.setBits(),
                  code.decodeErrorPattern(std::vector<std::size_t>(
                      errors.begin(), errors.end())))
            << "trial " << trial;
    }
}

TEST(BchDecCode, StrictlyStrongerThanHamming)
{
    // Sanity comparison: on the same double-error patterns the SEC
    // Hamming code miscorrects or leaves errors; the DEC BCH corrects.
    const BchDecCode bch(64);
    common::Xoshiro256 rng(6);
    const gf2::BitVector d = gf2::BitVector::random(64, rng);
    const gf2::BitVector clean = bch.encode(d);
    for (int trial = 0; trial < 50; ++trial) {
        const std::size_t i = rng.nextBelow(bch.n());
        std::size_t j = rng.nextBelow(bch.n());
        while (j == i)
            j = rng.nextBelow(bch.n());
        gf2::BitVector c = clean;
        c.flip(i);
        c.flip(j);
        EXPECT_EQ(bch.decode(c).dataword, d);
    }
}

} // namespace
} // namespace harp::ecc
