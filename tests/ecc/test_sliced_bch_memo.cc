/**
 * @file
 * Concurrency and sharing tests for the sliced-BCH syndrome memo.
 *
 * The memo is the one piece of shared mutable state on the sliced BCH
 * datapath; SlicedBchCodeW instances are *not* safe to share across
 * pool workers (mutable scratch), but copies are — they share the memo
 * through ecc/sliced_bch_memo.hh and own private scratch. The
 * ConcurrentCopiesHammerSharedMemo test drives exactly that pattern
 * from the thread pool with overlapping syndromes, so a TSan build
 * (cmake -DHARP_SANITIZE=thread, run by scripts/verify.sh --full)
 * witnesses the insertOrGet/find locking race-free; a regression to
 * unsynchronized memo access fails there deterministically.
 */

#include <gtest/gtest.h>

#include <memory>
#include <vector>

#include "common/rng.hh"
#include "common/thread_pool.hh"
#include "ecc/bch_general.hh"
#include "ecc/sliced_bch.hh"
#include "ecc/sliced_bch_memo.hh"
#include "gf2/bit_slice.hh"

namespace harp::ecc {
namespace {

TEST(SlicedBchMemo, CopiesShareTheMemo)
{
    common::Xoshiro256 rng(11);
    const BchCode code(64, 2);
    const SlicedBchCode original(code, 8, /*prewarm=*/false);
    const SlicedBchCode copy(original);
    EXPECT_EQ(copy.memo(), original.memo());

    // Decodes through the copy populate the original's statistics.
    std::vector<gf2::BitVector> received;
    for (std::size_t w = 0; w < 8; ++w) {
        gf2::BitVector c =
            code.encode(gf2::BitVector::random(code.k(), rng));
        c.flip(rng.nextBelow(code.n()));
        received.push_back(std::move(c));
    }
    gf2::BitSlice64 received_slice(code.n());
    gf2::BitSlice64 data_out(code.k());
    received_slice.gather(received);
    copy.decodeData(received_slice, data_out);
    EXPECT_GT(original.memoMisses(), 0u);
    EXPECT_EQ(original.memoEntries(), copy.memoEntries());
}

TEST(SlicedBchMemo, SharedMemoSkipsRedundantPrewarm)
{
    const BchCode code(64, 2);
    const SlicedBchCode first(code, 4);
    ASSERT_TRUE(first.memoPrewarmed());
    const std::size_t entries = first.memoEntries();
    ASSERT_GT(entries, 0u);

    // A second datapath over the already-warm memo must not re-insert
    // (markPrewarmed gates the duplicate work) and sees every entry.
    const SlicedBchCode second(code, 16, /*prewarm=*/true, first.memo());
    EXPECT_EQ(second.memo(), first.memo());
    EXPECT_TRUE(second.memoPrewarmed());
    EXPECT_EQ(second.memoEntries(), entries);
}

TEST(SlicedBchMemo, ConcurrentCopiesHammerSharedMemo)
{
    // The TSan regression: many pool workers decode through per-worker
    // *copies* of one cold-memo datapath. Tasks intentionally repeat
    // error patterns so distinct workers race find/insertOrGet on the
    // same keys; memoization is exact, so racing winners are
    // interchangeable and every lane must still decode bit-identically
    // to the scalar decoder.
    const BchCode code(64, 2);
    const std::size_t lanes = 32;
    const std::size_t tasks = 24;
    const std::size_t threads = 8;
    const SlicedBchCode base(code, lanes, /*prewarm=*/false);

    // Pre-generate every task's block (and its scalar reference)
    // single-threaded; the parallel section touches only the datapath.
    std::vector<std::vector<gf2::BitVector>> blocks(tasks);
    std::vector<std::vector<gf2::BitVector>> expected(tasks);
    common::Xoshiro256 rng(17);
    for (std::size_t task = 0; task < tasks; ++task) {
        // Three distinct seeds cycled across tasks: every pattern is
        // decoded by several workers concurrently.
        common::Xoshiro256 task_rng(100 + task % 3);
        for (std::size_t w = 0; w < lanes; ++w) {
            gf2::BitVector c = code.encode(
                gf2::BitVector::random(code.k(), task_rng));
            const std::size_t weight = task_rng.nextBelow(4); // 0..3
            for (std::size_t e = 0; e < weight; ++e)
                c.flip(task_rng.nextBelow(code.n()));
            expected[task].push_back(code.decode(c).dataword);
            blocks[task].push_back(std::move(c));
        }
    }

    std::vector<char> ok(tasks, 0);
    common::parallelFor(tasks, [&](std::size_t task) {
        const SlicedBchCode datapath(base); // shares memo, owns scratch
        gf2::BitSlice64 received_slice(code.n());
        gf2::BitSlice64 data_out(code.k());
        received_slice.gather(blocks[task]);
        datapath.decodeData(received_slice, data_out);
        bool all = true;
        for (std::size_t w = 0; w < lanes; ++w)
            all = all &&
                  data_out.extractWord(w) == expected[task][w];
        ok[task] = all ? 1 : 0;
    }, threads);

    for (std::size_t task = 0; task < tasks; ++task)
        EXPECT_TRUE(ok[task]) << "task " << task;

    // Raced insertions of the same key collapse to one entry, and the
    // relaxed hit/miss tallies still account for every lookup.
    EXPECT_GT(base.memoEntries(), 0u);
    EXPECT_GE(base.memoHits() + base.memoMisses(), base.memoEntries());

    // Re-decoding any block now is pure hits: the winning entries are
    // complete, not torn.
    const std::uint64_t misses_before = base.memoMisses();
    gf2::BitSlice64 received_slice(code.n());
    gf2::BitSlice64 data_out(code.k());
    received_slice.gather(blocks[0]);
    base.decodeData(received_slice, data_out);
    EXPECT_EQ(base.memoMisses(), misses_before);
    for (std::size_t w = 0; w < lanes; ++w)
        EXPECT_EQ(data_out.extractWord(w), expected[0][w]);
}

TEST(SlicedBchMemo, Wide256CopiesShareMemoToo)
{
    common::Xoshiro256 rng(23);
    const BchCode code(64, 2);
    const std::size_t lanes = 200; // ragged at W=4
    const SlicedBchCode256 base(code, lanes, /*prewarm=*/false);
    const std::size_t tasks = 8;

    std::vector<std::vector<gf2::BitVector>> blocks(tasks);
    std::vector<std::vector<gf2::BitVector>> expected(tasks);
    for (std::size_t task = 0; task < tasks; ++task) {
        common::Xoshiro256 task_rng(300 + task % 2);
        for (std::size_t w = 0; w < lanes; ++w) {
            gf2::BitVector c = code.encode(
                gf2::BitVector::random(code.k(), task_rng));
            const std::size_t weight = task_rng.nextBelow(4);
            for (std::size_t e = 0; e < weight; ++e)
                c.flip(task_rng.nextBelow(code.n()));
            expected[task].push_back(code.decode(c).dataword);
            blocks[task].push_back(std::move(c));
        }
    }

    std::vector<char> ok(tasks, 0);
    common::parallelFor(tasks, [&](std::size_t task) {
        const SlicedBchCode256 datapath(base);
        gf2::BitSlice256 received_slice(code.n());
        gf2::BitSlice256 data_out(code.k());
        received_slice.gather(blocks[task]);
        datapath.decodeData(received_slice, data_out);
        bool all = true;
        for (std::size_t w = 0; w < lanes; ++w)
            all = all &&
                  data_out.extractWord(w) == expected[task][w];
        ok[task] = all ? 1 : 0;
    }, 4);
    for (std::size_t task = 0; task < tasks; ++task)
        EXPECT_TRUE(ok[task]) << "task " << task;
    EXPECT_GT(base.memoEntries(), 0u);
}

} // namespace
} // namespace harp::ecc
