/**
 * @file
 * Unit, property, and parameterized tests for the systematic SEC Hamming
 * code implementation (on-die ECC model).
 */

#include <gtest/gtest.h>

#include <bit>
#include <set>
#include <vector>

#include "common/rng.hh"
#include "ecc/hamming_code.hh"
#include "gf2/bit_matrix.hh"

namespace harp::ecc {
namespace {

/** The k=4 example code from the paper's Equation 1. */
HammingCode
paperExampleCode()
{
    // H rows: 1110100 / 1101010 / 1011001 -> data columns (LSB = row 0):
    // col0 = 111b, col1 = 011b, col2 = 101b, col3 = 110b.
    return HammingCode(4, {0b111, 0b011, 0b101, 0b110});
}

TEST(HammingCode, MinParityBits)
{
    EXPECT_EQ(HammingCode::minParityBits(1), 2u);
    EXPECT_EQ(HammingCode::minParityBits(4), 3u);
    EXPECT_EQ(HammingCode::minParityBits(11), 4u);
    EXPECT_EQ(HammingCode::minParityBits(26), 5u);
    EXPECT_EQ(HammingCode::minParityBits(57), 6u);
    EXPECT_EQ(HammingCode::minParityBits(64), 7u);   // (71, 64)
    EXPECT_EQ(HammingCode::minParityBits(120), 7u);
    EXPECT_EQ(HammingCode::minParityBits(128), 8u);  // (136, 128)
}

TEST(HammingCode, PaperExampleEncode)
{
    const HammingCode code = paperExampleCode();
    EXPECT_EQ(code.k(), 4u);
    EXPECT_EQ(code.p(), 3u);
    EXPECT_EQ(code.n(), 7u);
    // G^T row 0 in Equation 1: d = 1000 -> c = 1000111.
    const gf2::BitVector d = gf2::BitVector::fromUint(0b0001, 4);
    const gf2::BitVector c = code.encode(d);
    EXPECT_EQ(c.toString(), "1000111");
}

TEST(HammingCode, GeneratorAnnihilatedByParityCheck)
{
    common::Xoshiro256 rng(2);
    for (int trial = 0; trial < 5; ++trial) {
        const HammingCode code = HammingCode::randomSec(16, rng);
        const gf2::BitMatrix product =
            code.parityCheckMatrix().multiply(code.generatorMatrix());
        for (std::size_t r = 0; r < product.rows(); ++r)
            EXPECT_TRUE(product.row(r).isZero());
    }
}

TEST(HammingCode, RejectsBadColumns)
{
    EXPECT_THROW(HammingCode(2, {0b11}), std::invalid_argument);  // count
    EXPECT_THROW(HammingCode(2, {0b11, 0b11}),
                 std::invalid_argument);                          // dup
    EXPECT_THROW(HammingCode(2, {0b11, 0b01}),
                 std::invalid_argument);                          // weight 1
    EXPECT_THROW(HammingCode(2, {0b11, 0}), std::invalid_argument); // zero
    EXPECT_THROW(HammingCode(2, {0b11, 0b1000}),
                 std::invalid_argument);                          // range
}

TEST(HammingCode, SystematicEncodingPreservesData)
{
    common::Xoshiro256 rng(3);
    const HammingCode code = HammingCode::randomSec(64, rng);
    for (int trial = 0; trial < 20; ++trial) {
        const gf2::BitVector d = gf2::BitVector::random(64, rng);
        const gf2::BitVector c = code.encode(d);
        EXPECT_EQ(c.slice(0, 64), d);
    }
}

TEST(HammingCode, CleanDecodeRoundTrip)
{
    common::Xoshiro256 rng(5);
    const HammingCode code = HammingCode::randomSec(64, rng);
    for (int trial = 0; trial < 20; ++trial) {
        const gf2::BitVector d = gf2::BitVector::random(64, rng);
        const DecodeResult r = code.decode(code.encode(d));
        EXPECT_EQ(r.dataword, d);
        EXPECT_FALSE(r.correctedPosition.has_value());
        EXPECT_FALSE(r.detectedUncorrectable);
        EXPECT_EQ(r.syndrome, 0u);
    }
}

TEST(HammingCode, SyndromeToPositionInvertsColumns)
{
    common::Xoshiro256 rng(7);
    const HammingCode code = HammingCode::randomSec(64, rng);
    for (std::size_t pos = 0; pos < code.n(); ++pos) {
        const auto inverse =
            code.syndromeToPosition(code.codewordColumn(pos));
        ASSERT_TRUE(inverse.has_value());
        EXPECT_EQ(*inverse, pos);
    }
    EXPECT_FALSE(code.syndromeToPosition(0).has_value());
}

TEST(HammingCode, SyndromeOfErrorsMatchesDecodePath)
{
    common::Xoshiro256 rng(9);
    const HammingCode code = HammingCode::randomSec(32, rng);
    const gf2::BitVector d = gf2::BitVector::random(32, rng);
    gf2::BitVector c = code.encode(d);
    const std::vector<std::size_t> errors = {3, 17, 35};
    for (const std::size_t e : errors)
        c.flip(e);
    EXPECT_EQ(code.syndrome(c), code.syndromeOfErrors(errors));
}

TEST(HammingCode, DoubleErrorNeverCorrectsEitherVictim)
{
    // For distinct columns a, b: a ^ b != a and != b, so syndrome
    // decoding can never land on one of the two true error positions.
    common::Xoshiro256 rng(11);
    const HammingCode code = HammingCode::randomSec(16, rng);
    for (std::size_t i = 0; i < code.n(); ++i) {
        for (std::size_t j = i + 1; j < code.n(); ++j) {
            const std::uint32_t s = code.codewordColumn(i) ^
                                    code.codewordColumn(j);
            const auto target = code.syndromeToPosition(s);
            if (target) {
                EXPECT_NE(*target, i);
                EXPECT_NE(*target, j);
            }
        }
    }
}

TEST(HammingCode, DoubleErrorOutcomesMatchEnumeration)
{
    common::Xoshiro256 rng(13);
    const HammingCode code = HammingCode::randomSec(16, rng);
    const gf2::BitVector d = gf2::BitVector::random(16, rng);
    int miscorrections = 0, silent = 0, parity_fix = 0;
    for (std::size_t i = 0; i < code.n(); ++i) {
        for (std::size_t j = i + 1; j < code.n(); ++j) {
            gf2::BitVector c = code.encode(d);
            c.flip(i);
            c.flip(j);
            const DecodeResult r = code.decode(c);
            // Expected post-correction data errors.
            gf2::BitVector expected = d;
            if (i < code.k())
                expected.flip(i);
            if (j < code.k())
                expected.flip(j);
            const std::uint32_t s = code.codewordColumn(i) ^
                                    code.codewordColumn(j);
            const auto target = code.syndromeToPosition(s);
            if (target) {
                if (*target < code.k()) {
                    expected.flip(*target);
                    ++miscorrections;
                } else {
                    ++parity_fix;
                }
                EXPECT_EQ(r.correctedPosition, target);
            } else {
                EXPECT_TRUE(r.detectedUncorrectable);
                ++silent;
            }
            EXPECT_EQ(r.dataword, expected) << "errors at " << i << ","
                                            << j;
        }
    }
    // A shortened random code exhibits all three behaviours.
    EXPECT_GT(miscorrections, 0);
    EXPECT_GT(silent, 0);
    EXPECT_GT(parity_fix, 0);
}

TEST(HammingCode, RandomSecDeterministicPerSeed)
{
    common::Xoshiro256 rng1(42), rng2(42), rng3(43);
    const HammingCode a = HammingCode::randomSec(64, rng1);
    const HammingCode b = HammingCode::randomSec(64, rng2);
    const HammingCode c = HammingCode::randomSec(64, rng3);
    EXPECT_TRUE(a == b);
    EXPECT_FALSE(a == c);
}

TEST(HammingCode, RandomSecColumnsValid)
{
    common::Xoshiro256 rng(17);
    for (int trial = 0; trial < 10; ++trial) {
        const HammingCode code = HammingCode::randomSec(64, rng);
        std::set<std::uint32_t> seen;
        for (std::size_t i = 0; i < 64; ++i) {
            const std::uint32_t col = code.dataColumn(i);
            EXPECT_GE(std::popcount(col), 2);
            EXPECT_LT(col, 1u << 7);
            EXPECT_TRUE(seen.insert(col).second) << "duplicate column";
        }
    }
}

/**
 * Parameterized single-error correction sweep: every single-bit error in
 * every position must be corrected, for representative dataword lengths
 * including the paper's (71,64) and (136,128) configurations.
 */
class HammingSingleError : public ::testing::TestWithParam<std::size_t>
{
};

TEST_P(HammingSingleError, EverySingleErrorCorrected)
{
    const std::size_t k = GetParam();
    common::Xoshiro256 rng(1000 + k);
    const HammingCode code = HammingCode::randomSec(k, rng);
    const gf2::BitVector d = gf2::BitVector::random(k, rng);
    const gf2::BitVector clean = code.encode(d);
    for (std::size_t pos = 0; pos < code.n(); ++pos) {
        gf2::BitVector c = clean;
        c.flip(pos);
        const DecodeResult r = code.decode(c);
        EXPECT_EQ(r.dataword, d) << "error at " << pos;
        ASSERT_TRUE(r.correctedPosition.has_value());
        EXPECT_EQ(*r.correctedPosition, pos);
        EXPECT_FALSE(r.detectedUncorrectable);
    }
}

TEST_P(HammingSingleError, CodewordColumnsAreDistinctNonzero)
{
    const std::size_t k = GetParam();
    common::Xoshiro256 rng(2000 + k);
    const HammingCode code = HammingCode::randomSec(k, rng);
    std::set<std::uint32_t> seen;
    for (std::size_t pos = 0; pos < code.n(); ++pos) {
        const std::uint32_t col = code.codewordColumn(pos);
        EXPECT_NE(col, 0u);
        EXPECT_TRUE(seen.insert(col).second);
    }
}

INSTANTIATE_TEST_SUITE_P(DatawordLengths, HammingSingleError,
                         ::testing::Values(4, 8, 16, 26, 32, 57, 64, 120,
                                           128));

} // namespace
} // namespace harp::ecc
