/**
 * @file
 * Tests for the sliced t-error BCH datapath: encode and memoized
 * syndrome decoding must be bit-identical per lane to the scalar
 * BchCode, across t, lane counts (including ragged tails) and error
 * weights up to beyond t; the memo must actually memoize; and lane
 * mixing of different code functions must be rejected.
 */

#include <gtest/gtest.h>

#include <vector>

#include "common/rng.hh"
#include "ecc/bch_general.hh"
#include "ecc/sliced_bch.hh"
#include "gf2/bit_slice.hh"

namespace harp::ecc {
namespace {

/** Random datawords, one per lane. */
std::vector<gf2::BitVector>
randomWords(std::size_t lanes, std::size_t bits, common::Xoshiro256 &rng)
{
    std::vector<gf2::BitVector> words;
    words.reserve(lanes);
    for (std::size_t w = 0; w < lanes; ++w)
        words.push_back(gf2::BitVector::random(bits, rng));
    return words;
}

TEST(SlicedBch, EncodeMatchesScalarIncludingRaggedTails)
{
    common::Xoshiro256 rng(1);
    for (const std::size_t t : {std::size_t{1}, std::size_t{2},
                                std::size_t{3}}) {
        const BchCode code(64, t);
        for (const std::size_t lanes :
             {std::size_t{1}, std::size_t{5}, std::size_t{64}}) {
            const SlicedBchCode sliced(code, lanes);
            ASSERT_EQ(sliced.k(), code.k());
            ASSERT_EQ(sliced.n(), code.n());
            ASSERT_EQ(sliced.lanes(), lanes);
            ASSERT_EQ(sliced.t(), t);

            const auto datawords = randomWords(lanes, code.k(), rng);
            gf2::BitSlice64 data(code.k());
            gf2::BitSlice64 codeword(code.n());
            data.gather(datawords);
            sliced.encode(data, codeword);
            for (std::size_t w = 0; w < lanes; ++w)
                EXPECT_EQ(codeword.extractWord(w),
                          code.encode(datawords[w]))
                    << "t " << t << ", lane " << w;
        }
    }
}

TEST(SlicedBch, DecodeDataMatchesScalarAcrossErrorWeights)
{
    common::Xoshiro256 rng(2);
    for (const std::size_t t : {std::size_t{1}, std::size_t{2},
                                std::size_t{3}}) {
        const BchCode code(64, t);
        const std::size_t lanes = 23; // ragged (not a full block)
        // Cold memo: this test pins the fallback bookkeeping (every
        // miss inserts exactly one entry), so skip the pre-warm.
        const SlicedBchCode sliced(code, lanes, /*prewarm=*/false);
        EXPECT_FALSE(sliced.memoPrewarmed());

        for (int round = 0; round < 8; ++round) {
            std::vector<gf2::BitVector> received;
            for (std::size_t w = 0; w < lanes; ++w) {
                gf2::BitVector c = code.encode(
                    gf2::BitVector::random(code.k(), rng));
                // 0 .. t+2 errors: clean lanes, correctable lanes and
                // detected-uncorrectable lanes all share the block.
                const std::size_t weight = rng.nextBelow(t + 3);
                for (std::size_t e = 0; e < weight; ++e)
                    c.flip(rng.nextBelow(code.n()));
                received.push_back(std::move(c));
            }
            gf2::BitSlice64 received_slice(code.n());
            gf2::BitSlice64 data_out(code.k());
            received_slice.gather(received);
            sliced.decodeData(received_slice, data_out);
            for (std::size_t w = 0; w < lanes; ++w)
                EXPECT_EQ(data_out.extractWord(w),
                          code.decode(received[w]).dataword)
                    << "t " << t << ", round " << round << ", lane "
                    << w;
        }
        // Every miss inserts exactly one memo entry; repeats hit.
        EXPECT_EQ(sliced.memoEntries(), sliced.memoMisses());
        EXPECT_GT(sliced.memoMisses(), 0u);
    }
}

TEST(SlicedBch, RepeatedSyndromesHitTheMemo)
{
    common::Xoshiro256 rng(3);
    const BchCode code(64, 2);
    const std::size_t lanes = 16;
    // Cold memo, so the first block demonstrably falls back to the
    // scalar decoder before repeats start hitting.
    const SlicedBchCode sliced(code, lanes, /*prewarm=*/false);

    std::vector<gf2::BitVector> received;
    for (std::size_t w = 0; w < lanes; ++w) {
        gf2::BitVector c =
            code.encode(gf2::BitVector::random(code.k(), rng));
        c.flip(rng.nextBelow(code.n()));
        received.push_back(std::move(c));
    }
    gf2::BitSlice64 received_slice(code.n());
    gf2::BitSlice64 data_out(code.k());
    received_slice.gather(received);

    sliced.decodeData(received_slice, data_out);
    const std::uint64_t misses_after_first = sliced.memoMisses();
    EXPECT_GT(misses_after_first, 0u);

    // The identical block again: pure hits, no new scalar fallbacks.
    sliced.decodeData(received_slice, data_out);
    EXPECT_EQ(sliced.memoMisses(), misses_after_first);
    EXPECT_GE(sliced.memoHits(), misses_after_first);
    for (std::size_t w = 0; w < lanes; ++w)
        EXPECT_EQ(data_out.extractWord(w),
                  code.decode(received[w]).dataword);
}

TEST(SlicedBch, PrewarmCoversEveryCorrectableSyndrome)
{
    common::Xoshiro256 rng(7);
    for (const std::size_t t : {std::size_t{1}, std::size_t{2},
                                std::size_t{3}}) {
        const BchCode code(64, t);
        const std::size_t lanes = 17;
        const SlicedBchCode sliced(code, lanes);
        ASSERT_TRUE(sliced.memoPrewarmed());

        // Entry count = sum_{w=1..t} C(n, w), every weight <= t
        // syndrome distinct (minimum distance >= 2t+1).
        std::size_t expected = 0;
        for (std::size_t w = 1; w <= t; ++w) {
            std::size_t choose = 1;
            for (std::size_t i = 0; i < w; ++i)
                choose = choose * (code.n() - i) / (i + 1);
            expected += choose;
        }
        EXPECT_EQ(sliced.memoEntries(), expected) << "t " << t;

        // Correctable blocks never fall back to the scalar decoder
        // and still decode bit-identically to it.
        for (int round = 0; round < 6; ++round) {
            std::vector<gf2::BitVector> received;
            for (std::size_t w = 0; w < lanes; ++w) {
                gf2::BitVector c = code.encode(
                    gf2::BitVector::random(code.k(), rng));
                const std::size_t weight = rng.nextBelow(t + 1);
                for (std::size_t e = 0; e < weight; ++e)
                    c.flip(rng.nextBelow(code.n()));
                received.push_back(std::move(c));
            }
            gf2::BitSlice64 received_slice(code.n());
            gf2::BitSlice64 data_out(code.k());
            received_slice.gather(received);
            sliced.decodeData(received_slice, data_out);
            for (std::size_t w = 0; w < lanes; ++w)
                EXPECT_EQ(data_out.extractWord(w),
                          code.decode(received[w]).dataword)
                    << "t " << t << ", round " << round << ", lane "
                    << w;
        }
        EXPECT_EQ(sliced.memoMisses(), 0u) << "t " << t;
        EXPECT_GT(sliced.memoHits(), 0u) << "t " << t;
    }
}

TEST(SlicedBch, PrewarmSkippedBeyondTheEntryCap)
{
    // k=128, t=3 -> n=152: C(152,1)+C(152,2)+C(152,3) ~ 575k entries,
    // beyond prewarmEntryCap — construction must start cold instead of
    // stalling, and decoding still works through the fallback path.
    common::Xoshiro256 rng(8);
    const BchCode code(128, 3);
    const SlicedBchCode sliced(code, 4);
    EXPECT_FALSE(sliced.memoPrewarmed());
    EXPECT_EQ(sliced.memoEntries(), 0u);

    std::vector<gf2::BitVector> received;
    for (std::size_t w = 0; w < 4; ++w) {
        gf2::BitVector c =
            code.encode(gf2::BitVector::random(code.k(), rng));
        c.flip(rng.nextBelow(code.n()));
        received.push_back(std::move(c));
    }
    gf2::BitSlice64 received_slice(code.n());
    gf2::BitSlice64 data_out(code.k());
    received_slice.gather(received);
    sliced.decodeData(received_slice, data_out);
    for (std::size_t w = 0; w < 4; ++w)
        EXPECT_EQ(data_out.extractWord(w),
                  code.decode(received[w]).dataword);
    EXPECT_GT(sliced.memoMisses(), 0u);
}

TEST(SlicedBch, ZeroSyndromeLanesSkipTheMemo)
{
    common::Xoshiro256 rng(4);
    const BchCode code(64, 3);
    const std::size_t lanes = 10;
    const SlicedBchCode sliced(code, lanes);

    const auto datawords = randomWords(lanes, code.k(), rng);
    std::vector<gf2::BitVector> clean;
    for (const gf2::BitVector &d : datawords)
        clean.push_back(code.encode(d));
    gf2::BitSlice64 received_slice(code.n());
    gf2::BitSlice64 data_out(code.k());
    received_slice.gather(clean);
    sliced.decodeData(received_slice, data_out);
    EXPECT_EQ(sliced.memoHits(), 0u);
    EXPECT_EQ(sliced.memoMisses(), 0u);
    for (std::size_t w = 0; w < lanes; ++w)
        EXPECT_EQ(data_out.extractWord(w), datawords[w]);
}

TEST(SlicedBch, RejectsMixedLanesAndBadLaneCounts)
{
    const BchCode t2(64, 2);
    const BchCode t3(64, 3);
    const BchCode short_k(32, 2);

    EXPECT_THROW(SlicedBchCode(std::vector<const BchCode *>{}),
                 std::invalid_argument);
    EXPECT_THROW(SlicedBchCode(t2, 0), std::invalid_argument);
    EXPECT_THROW(SlicedBchCode(t2, 65), std::invalid_argument);
    EXPECT_THROW(
        SlicedBchCode(std::vector<const BchCode *>{&t2, &t3}),
        std::invalid_argument);
    EXPECT_THROW(
        SlicedBchCode(std::vector<const BchCode *>{&t2, &short_k}),
        std::invalid_argument);
    // Distinct instances of the same code function are fine.
    const BchCode t2_again(64, 2);
    const SlicedBchCode ok(
        std::vector<const BchCode *>{&t2, &t2_again});
    EXPECT_EQ(ok.lanes(), 2u);
}

} // namespace
} // namespace harp::ecc
