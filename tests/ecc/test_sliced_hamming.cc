/**
 * @file
 * Equivalence tests for the bit-sliced SEC Hamming / SECDED evaluators:
 * sliced encode and syndrome decode must match the scalar code paths
 * position-for-position across random seeds, code lengths (including
 * shortened codes), heterogeneous per-lane codes, error multiplicities
 * and ragged lane counts.
 */

#include <gtest/gtest.h>

#include "ecc/sliced_hamming.hh"
#include "support/property.hh"

namespace harp::ecc {
namespace {

using test::forEachSeed;

/** Gather @p lanes random datawords, slice-encode and corrupt them with
 *  @p flips random codeword positions per lane, and compare encode +
 *  decode against the scalar code of each lane. */
void
checkLanesAgainstScalar(const std::vector<HammingCode> &codes,
                        std::size_t flips, common::Xoshiro256 &rng)
{
    const std::size_t lanes = codes.size();
    const std::size_t k = codes[0].k();
    const std::size_t n = codes[0].n();
    std::vector<const HammingCode *> ptrs;
    for (const HammingCode &code : codes)
        ptrs.push_back(&code);
    const SlicedHammingCode sliced(ptrs);
    ASSERT_EQ(sliced.k(), k);
    ASSERT_EQ(sliced.n(), n);
    ASSERT_EQ(sliced.lanes(), lanes);

    std::vector<gf2::BitVector> datawords;
    for (std::size_t w = 0; w < lanes; ++w)
        datawords.push_back(gf2::BitVector::random(k, rng));

    gf2::BitSlice64 data(k);
    data.gather(datawords);
    gf2::BitSlice64 codeword(n);
    sliced.encode(data, codeword);

    std::vector<gf2::BitVector> received;
    std::vector<gf2::BitVector> encoded(lanes, gf2::BitVector(n));
    codeword.scatter(encoded);
    for (std::size_t w = 0; w < lanes; ++w) {
        ASSERT_EQ(encoded[w], codes[w].encode(datawords[w]))
            << "lane " << w << ": sliced encode differs";
        gf2::BitVector corrupted = encoded[w];
        for (std::size_t f = 0; f < flips; ++f)
            corrupted.flip(rng.nextBelow(n));
        received.push_back(std::move(corrupted));
    }

    gf2::BitSlice64 received_slice(n);
    received_slice.gather(received);
    gf2::BitSlice64 decoded(k);
    sliced.decodeData(received_slice, decoded);
    std::vector<gf2::BitVector> post(lanes, gf2::BitVector(k));
    decoded.scatter(post);
    for (std::size_t w = 0; w < lanes; ++w) {
        const DecodeResult scalar = codes[w].decode(received[w]);
        ASSERT_EQ(post[w], scalar.dataword)
            << "lane " << w << ": sliced decode differs (k=" << k
            << ", flips=" << flips << ")";
    }
}

TEST(SlicedHamming, MatchesScalarAcrossCodeLengthsAndErrorCounts)
{
    // k=30 and k=100 give shortened codes (unmatched syndromes exist);
    // k=64/128 are the paper's configurations.
    const std::size_t ks[] = {8, 30, 64, 100, 128};
    const std::size_t lane_counts[] = {1, 5, 64};
    forEachSeed(4, [&](std::uint64_t, common::Xoshiro256 &rng) {
        for (const std::size_t k : ks) {
            for (const std::size_t lanes : lane_counts) {
                std::vector<HammingCode> codes;
                for (std::size_t w = 0; w < lanes; ++w)
                    codes.push_back(HammingCode::randomSec(k, rng));
                for (const std::size_t flips : {0, 1, 2, 3})
                    checkLanesAgainstScalar(codes, flips, rng);
            }
        }
    });
}

TEST(SlicedHamming, HomogeneousConvenienceConstructor)
{
    forEachSeed(2, [](std::uint64_t, common::Xoshiro256 &rng) {
        const HammingCode code = HammingCode::randomSec(64, rng);
        const SlicedHammingCode sliced(code, 64);
        std::vector<HammingCode> codes(64, code);
        checkLanesAgainstScalar(codes, 2, rng);
        EXPECT_EQ(sliced.lanes(), 64u);
    });
}

TEST(SlicedHamming, SyndromeLanesMatchScalarSyndromes)
{
    forEachSeed(3, [](std::uint64_t, common::Xoshiro256 &rng) {
        std::vector<HammingCode> codes;
        for (std::size_t w = 0; w < 17; ++w)
            codes.push_back(HammingCode::randomSec(64, rng));
        std::vector<const HammingCode *> ptrs;
        for (const HammingCode &code : codes)
            ptrs.push_back(&code);
        const SlicedHammingCode sliced(ptrs);

        std::vector<gf2::BitVector> received;
        for (std::size_t w = 0; w < codes.size(); ++w)
            received.push_back(
                gf2::BitVector::random(codes[w].n(), rng));
        gf2::BitSlice64 slice(sliced.n());
        slice.gather(received);
        std::uint64_t s[32] = {};
        sliced.syndromes(slice, s);
        for (std::size_t w = 0; w < codes.size(); ++w) {
            std::uint32_t lane_syndrome = 0;
            for (std::size_t j = 0; j < sliced.p(); ++j)
                if ((s[j] >> w) & 1)
                    lane_syndrome |= std::uint32_t{1} << j;
            ASSERT_EQ(lane_syndrome, codes[w].syndrome(received[w]))
                << "lane " << w;
        }
    });
}

TEST(SlicedHamming, RejectsMismatchedLanes)
{
    common::Xoshiro256 rng(1);
    const HammingCode a = HammingCode::randomSec(64, rng);
    const HammingCode b = HammingCode::randomSec(128, rng);
    EXPECT_THROW(SlicedHammingCode({&a, &b}), std::invalid_argument);
    EXPECT_THROW(SlicedHammingCode(std::vector<const HammingCode *>{}),
                 std::invalid_argument);
}

TEST(SlicedExtendedHamming, MatchesScalarSecdedDecode)
{
    forEachSeed(4, [](std::uint64_t, common::Xoshiro256 &rng) {
        const std::size_t lanes = 29;
        std::vector<ExtendedHammingCode> codes;
        for (std::size_t w = 0; w < lanes; ++w)
            codes.push_back(ExtendedHammingCode::randomSecDed(64, rng));
        std::vector<const ExtendedHammingCode *> ptrs;
        for (const ExtendedHammingCode &code : codes)
            ptrs.push_back(&code);
        const SlicedExtendedHammingCode sliced(ptrs);
        const std::size_t k = sliced.k();
        const std::size_t n = sliced.n();

        std::vector<gf2::BitVector> datawords;
        for (std::size_t w = 0; w < lanes; ++w)
            datawords.push_back(gf2::BitVector::random(k, rng));
        gf2::BitSlice64 data(k);
        data.gather(datawords);
        gf2::BitSlice64 codeword(n);
        sliced.encode(data, codeword);
        std::vector<gf2::BitVector> encoded(lanes, gf2::BitVector(n));
        codeword.scatter(encoded);

        // Exercise 0..3 errors per lane: clean, corrected-single,
        // detected-double and odd >= 3 outcomes all occur.
        std::vector<gf2::BitVector> received;
        for (std::size_t w = 0; w < lanes; ++w) {
            ASSERT_EQ(encoded[w], codes[w].encode(datawords[w]))
                << "lane " << w;
            gf2::BitVector corrupted = encoded[w];
            const std::size_t flips = w % 4;
            for (std::size_t f = 0; f < flips; ++f)
                corrupted.flip(rng.nextBelow(n));
            received.push_back(std::move(corrupted));
        }
        gf2::BitSlice64 received_slice(n);
        received_slice.gather(received);
        gf2::BitSlice64 decoded(k);
        std::uint64_t corrected = 0, detected = 0;
        sliced.decode(received_slice, decoded, corrected, detected);
        std::vector<gf2::BitVector> post(lanes, gf2::BitVector(k));
        decoded.scatter(post);

        for (std::size_t w = 0; w < lanes; ++w) {
            const SecondaryDecodeResult scalar =
                codes[w].decode(received[w]);
            ASSERT_EQ(post[w], scalar.dataword) << "lane " << w;
            ASSERT_EQ((corrected >> w) & 1,
                      scalar.status ==
                              SecondaryDecodeStatus::CorrectedSingle
                          ? 1u
                          : 0u)
                << "lane " << w;
            ASSERT_EQ((detected >> w) & 1,
                      scalar.status ==
                              SecondaryDecodeStatus::DetectedUncorrectable
                          ? 1u
                          : 0u)
                << "lane " << w;
        }
    });
}

} // namespace
} // namespace harp::ecc
