/**
 * @file
 * Unit and property tests for GF(2^m) field arithmetic, the substrate
 * of the DEC BCH extension.
 */

#include <gtest/gtest.h>

#include "common/rng.hh"
#include "ecc/gf2m.hh"

namespace harp::ecc {
namespace {

TEST(Gf2m, ConstructionBounds)
{
    EXPECT_THROW(Gf2m(1), std::invalid_argument);
    EXPECT_THROW(Gf2m(17), std::invalid_argument);
    EXPECT_NO_THROW(Gf2m(2));
    EXPECT_NO_THROW(Gf2m(16));
}

TEST(Gf2m, SizesAndOrder)
{
    const Gf2m f(7);
    EXPECT_EQ(f.m(), 7u);
    EXPECT_EQ(f.size(), 128u);
    EXPECT_EQ(f.order(), 127u);
}

TEST(Gf2m, AlphaIsPrimitive)
{
    // alpha^i must enumerate every nonzero element exactly once.
    for (const unsigned m : {3u, 4u, 7u, 8u}) {
        const Gf2m f(m);
        std::vector<bool> seen(f.size(), false);
        for (std::uint32_t i = 0; i < f.order(); ++i) {
            const auto x = f.alphaPow(i);
            ASSERT_NE(x, 0u);
            ASSERT_LT(x, f.size());
            EXPECT_FALSE(seen[x]) << "m=" << m << " i=" << i;
            seen[x] = true;
        }
    }
}

TEST(Gf2m, LogInvertsAlphaPow)
{
    const Gf2m f(8);
    for (std::uint32_t i = 0; i < f.order(); ++i)
        EXPECT_EQ(f.log(f.alphaPow(i)), i);
}

TEST(Gf2m, MultiplicationAgreesWithPolynomialModel)
{
    // Cross-check table multiplication against shift-and-reduce.
    const Gf2m f(7);
    const std::uint32_t poly = f.primitivePolynomial();
    auto slow_mul = [&](std::uint32_t a, std::uint32_t b) {
        std::uint32_t r = 0;
        for (int i = 6; i >= 0; --i) {
            r <<= 1;
            if (r & f.size())
                r ^= poly;
            if ((b >> i) & 1)
                r ^= a;
        }
        return r;
    };
    common::Xoshiro256 rng(1);
    for (int trial = 0; trial < 500; ++trial) {
        const auto a = static_cast<Gf2m::Element>(rng.nextBelow(128));
        const auto b = static_cast<Gf2m::Element>(rng.nextBelow(128));
        EXPECT_EQ(f.multiply(a, b), slow_mul(a, b))
            << "a=" << a << " b=" << b;
    }
}

TEST(Gf2m, FieldAxioms)
{
    const Gf2m f(5);
    common::Xoshiro256 rng(2);
    for (int trial = 0; trial < 200; ++trial) {
        const auto a = static_cast<Gf2m::Element>(rng.nextBelow(32));
        const auto b = static_cast<Gf2m::Element>(rng.nextBelow(32));
        const auto c = static_cast<Gf2m::Element>(rng.nextBelow(32));
        // Commutativity and associativity of multiplication.
        EXPECT_EQ(f.multiply(a, b), f.multiply(b, a));
        EXPECT_EQ(f.multiply(f.multiply(a, b), c),
                  f.multiply(a, f.multiply(b, c)));
        // Distributivity over addition (XOR).
        EXPECT_EQ(f.multiply(a, static_cast<Gf2m::Element>(b ^ c)),
                  static_cast<Gf2m::Element>(f.multiply(a, b) ^
                                             f.multiply(a, c)));
        // Identities.
        EXPECT_EQ(f.multiply(a, 1), a);
        EXPECT_EQ(f.multiply(a, 0), 0u);
    }
}

TEST(Gf2m, InverseAndDivision)
{
    const Gf2m f(6);
    for (Gf2m::Element a = 1; a < f.size(); ++a) {
        EXPECT_EQ(f.multiply(a, f.inverse(a)), 1u) << "a=" << a;
        EXPECT_EQ(f.divide(a, a), 1u);
        EXPECT_EQ(f.divide(0, a), 0u);
    }
}

TEST(Gf2m, PowerLaws)
{
    const Gf2m f(7);
    common::Xoshiro256 rng(3);
    for (int trial = 0; trial < 100; ++trial) {
        const auto a = static_cast<Gf2m::Element>(
            1 + rng.nextBelow(f.order()));
        const std::uint64_t e1 = rng.nextBelow(300);
        const std::uint64_t e2 = rng.nextBelow(300);
        EXPECT_EQ(f.multiply(f.power(a, e1), f.power(a, e2)),
                  f.power(a, e1 + e2));
    }
    EXPECT_EQ(f.power(0, 0), 1u);
    EXPECT_EQ(f.power(0, 5), 0u);
    EXPECT_EQ(f.power(5, 0), 1u);
}

TEST(Gf2m, TraceIsAdditiveAndBalanced)
{
    const Gf2m f(7);
    std::size_t ones = 0;
    for (Gf2m::Element x = 0; x < f.size(); ++x) {
        const auto t = f.trace(x);
        ASSERT_LE(t, 1u);
        ones += t;
        // Additivity: Tr(x + y) = Tr(x) + Tr(y); spot-check vs x^2.
        EXPECT_EQ(f.trace(f.multiply(x, x)), t); // Tr(x^2) = Tr(x)
    }
    // Trace is balanced: exactly half the field has trace 1.
    EXPECT_EQ(ones, f.size() / 2);
}

TEST(Gf2m, SolveQuadratic)
{
    for (const unsigned m : {5u, 7u, 8u}) {
        const Gf2m f(m);
        std::size_t solvable = 0;
        for (Gf2m::Element c = 0; c < f.size(); ++c) {
            const auto z = f.solveQuadratic(c);
            if (f.trace(c) == 0) {
                ASSERT_NE(z, 0xFFFFFFFFu) << "m=" << m << " c=" << c;
                EXPECT_EQ(static_cast<Gf2m::Element>(
                              f.multiply(z, z) ^ z),
                          c);
                // The second root is z + 1.
                const auto z2 = static_cast<Gf2m::Element>(z ^ 1);
                EXPECT_EQ(static_cast<Gf2m::Element>(
                              f.multiply(z2, z2) ^ z2),
                          c);
                ++solvable;
            } else {
                EXPECT_EQ(z, 0xFFFFFFFFu);
            }
        }
        EXPECT_EQ(solvable, f.size() / 2);
    }
}

} // namespace
} // namespace harp::ecc
