/**
 * @file
 * Tests for the general t-error-correcting BCH code (Berlekamp-Massey +
 * Chien search), including a cross-check against the closed-form t=2
 * decoder and exhaustive/sampled error sweeps for t = 1..4.
 */

#include <gtest/gtest.h>

#include <set>

#include "common/rng.hh"
#include "ecc/bch_code.hh"
#include "ecc/bch_general.hh"

namespace harp::ecc {
namespace {

/** Random distinct error positions. */
std::set<std::size_t>
randomErrors(std::size_t count, std::size_t n, common::Xoshiro256 &rng)
{
    std::set<std::size_t> errors;
    while (errors.size() < count)
        errors.insert(rng.nextBelow(n));
    return errors;
}

TEST(BchGeneral, GeometryScalesWithT)
{
    const BchCode t1(64, 1);
    const BchCode t2(64, 2);
    const BchCode t3(64, 3);
    EXPECT_EQ(t1.p(), 7u);  // degenerates to the Hamming parity count
    EXPECT_EQ(t2.p(), 14u); // matches BchDecCode
    EXPECT_EQ(t3.p(), 21u); // three degree-7 minimal polynomials
    EXPECT_LT(t1.n(), t2.n());
    EXPECT_LT(t2.n(), t3.n());
}

TEST(BchGeneral, RejectsBadT)
{
    EXPECT_THROW(BchCode(64, 0), std::invalid_argument);
    EXPECT_THROW(BchCode(64, 9), std::invalid_argument);
}

TEST(BchGeneral, CleanDecode)
{
    const BchCode code(64, 3);
    common::Xoshiro256 rng(1);
    for (int trial = 0; trial < 20; ++trial) {
        const gf2::BitVector d = gf2::BitVector::random(64, rng);
        const BchGeneralDecodeResult r = code.decode(code.encode(d));
        EXPECT_EQ(r.dataword, d);
        EXPECT_TRUE(r.correctedPositions.empty());
        EXPECT_FALSE(r.detectedUncorrectable);
    }
}

TEST(BchGeneral, MatchesClosedFormT2Decoder)
{
    // Same k and t: the generator polynomials coincide, and decode
    // outcomes must agree on every error pattern up to weight 3.
    const BchCode general(64, 2);
    const BchDecCode closed(64);
    ASSERT_EQ(general.generatorPolynomial(),
              closed.generatorPolynomial());
    ASSERT_EQ(general.n(), closed.n());

    common::Xoshiro256 rng(2);
    for (int trial = 0; trial < 300; ++trial) {
        const std::size_t weight = 1 + rng.nextBelow(3);
        const auto errors = randomErrors(weight, general.n(), rng);
        const std::vector<std::size_t> positions(errors.begin(),
                                                 errors.end());
        EXPECT_EQ(general.decodeErrorPattern(positions),
                  closed.decodeErrorPattern(positions))
            << "trial " << trial;
    }
}

class BchGeneralSweep
    : public ::testing::TestWithParam<std::tuple<std::size_t, std::size_t>>
{
  protected:
    std::size_t k() const { return std::get<0>(GetParam()); }
    std::size_t t() const { return std::get<1>(GetParam()); }
};

TEST_P(BchGeneralSweep, CorrectsUpToTErrors)
{
    const BchCode code(k(), t());
    common::Xoshiro256 rng(100 + k() * 10 + t());
    const gf2::BitVector d = gf2::BitVector::random(k(), rng);
    const gf2::BitVector clean = code.encode(d);
    for (std::size_t weight = 1; weight <= t(); ++weight) {
        for (int trial = 0; trial < 120; ++trial) {
            const auto errors = randomErrors(weight, code.n(), rng);
            gf2::BitVector c = clean;
            for (const std::size_t pos : errors)
                c.flip(pos);
            const BchGeneralDecodeResult r = code.decode(c);
            EXPECT_EQ(r.dataword, d)
                << "weight " << weight << " trial " << trial;
            EXPECT_EQ(r.correctedPositions,
                      std::vector<std::size_t>(errors.begin(),
                                               errors.end()));
        }
    }
}

TEST_P(BchGeneralSweep, NeverFlipsMoreThanTOnOverload)
{
    // t+1 .. t+2 errors: the decoder may detect or miscorrect, but can
    // never apply more than t flips — the bound that generalizes HARP's
    // indirect-error argument.
    const BchCode code(k(), t());
    common::Xoshiro256 rng(200 + k() * 10 + t());
    const gf2::BitVector d = gf2::BitVector::random(k(), rng);
    const gf2::BitVector clean = code.encode(d);
    for (std::size_t overload = 1; overload <= 2; ++overload) {
        for (int trial = 0; trial < 120; ++trial) {
            const auto errors =
                randomErrors(t() + overload, code.n(), rng);
            gf2::BitVector c = clean;
            for (const std::size_t pos : errors)
                c.flip(pos);
            const BchGeneralDecodeResult r = code.decode(c);
            EXPECT_LE(r.correctedPositions.size(), t());
            if (r.detectedUncorrectable) {
                EXPECT_TRUE(r.correctedPositions.empty());
            }
        }
    }
}

INSTANTIATE_TEST_SUITE_P(
    KTSweep, BchGeneralSweep,
    ::testing::Combine(::testing::Values<std::size_t>(32, 64),
                       ::testing::Values<std::size_t>(1, 2, 3, 4)),
    [](const ::testing::TestParamInfo<std::tuple<std::size_t,
                                                 std::size_t>> &info) {
        return "k" + std::to_string(std::get<0>(info.param)) + "_t" +
               std::to_string(std::get<1>(info.param));
    });

TEST(BchGeneral, ParityRowsMatchEncoder)
{
    const BchCode code(32, 3);
    common::Xoshiro256 rng(3);
    const gf2::BitVector d = gf2::BitVector::random(32, rng);
    const gf2::BitVector c = code.encode(d);
    for (std::size_t j = 0; j < code.p(); ++j)
        EXPECT_EQ(c.get(code.k() + j), code.parityRow(j).dot(d));
}

TEST(BchGeneral, T1BehavesLikeSecCode)
{
    // t=1 general BCH is a (shortened) Hamming code: every single error
    // corrected, double errors never silently accepted as clean.
    const BchCode code(64, 1);
    common::Xoshiro256 rng(4);
    const gf2::BitVector d = gf2::BitVector::random(64, rng);
    const gf2::BitVector clean = code.encode(d);
    for (std::size_t pos = 0; pos < code.n(); ++pos) {
        gf2::BitVector c = clean;
        c.flip(pos);
        const BchGeneralDecodeResult r = code.decode(c);
        EXPECT_EQ(r.dataword, d);
        ASSERT_EQ(r.correctedPositions.size(), 1u);
        EXPECT_EQ(r.correctedPositions[0], pos);
    }
}

} // namespace
} // namespace harp::ecc
