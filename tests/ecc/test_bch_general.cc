/**
 * @file
 * Tests for the general t-error-correcting BCH code (Berlekamp-Massey +
 * Chien search), including a cross-check against the closed-form t=2
 * decoder and exhaustive/sampled error sweeps for t = 1..4.
 */

#include <gtest/gtest.h>

#include <set>

#include "common/rng.hh"
#include "ecc/bch_code.hh"
#include "ecc/bch_general.hh"

namespace harp::ecc {
namespace {

/** Random distinct error positions. */
std::set<std::size_t>
randomErrors(std::size_t count, std::size_t n, common::Xoshiro256 &rng)
{
    std::set<std::size_t> errors;
    while (errors.size() < count)
        errors.insert(rng.nextBelow(n));
    return errors;
}

TEST(BchGeneral, GeometryScalesWithT)
{
    const BchCode t1(64, 1);
    const BchCode t2(64, 2);
    const BchCode t3(64, 3);
    EXPECT_EQ(t1.p(), 7u);  // degenerates to the Hamming parity count
    EXPECT_EQ(t2.p(), 14u); // matches BchDecCode
    EXPECT_EQ(t3.p(), 21u); // three degree-7 minimal polynomials
    EXPECT_LT(t1.n(), t2.n());
    EXPECT_LT(t2.n(), t3.n());
}

TEST(BchGeneral, RejectsBadT)
{
    EXPECT_THROW(BchCode(64, 0), std::invalid_argument);
    EXPECT_THROW(BchCode(64, 9), std::invalid_argument);
}

TEST(BchGeneral, CleanDecode)
{
    const BchCode code(64, 3);
    common::Xoshiro256 rng(1);
    for (int trial = 0; trial < 20; ++trial) {
        const gf2::BitVector d = gf2::BitVector::random(64, rng);
        const BchGeneralDecodeResult r = code.decode(code.encode(d));
        EXPECT_EQ(r.dataword, d);
        EXPECT_TRUE(r.correctedPositions.empty());
        EXPECT_FALSE(r.detectedUncorrectable);
    }
}

TEST(BchGeneral, MatchesClosedFormT2Decoder)
{
    // Same k and t: the generator polynomials coincide, and decode
    // outcomes must agree on every error pattern up to weight 3.
    const BchCode general(64, 2);
    const BchDecCode closed(64);
    ASSERT_EQ(general.generatorPolynomial(),
              closed.generatorPolynomial());
    ASSERT_EQ(general.n(), closed.n());

    common::Xoshiro256 rng(2);
    for (int trial = 0; trial < 300; ++trial) {
        const std::size_t weight = 1 + rng.nextBelow(3);
        const auto errors = randomErrors(weight, general.n(), rng);
        const std::vector<std::size_t> positions(errors.begin(),
                                                 errors.end());
        EXPECT_EQ(general.decodeErrorPattern(positions),
                  closed.decodeErrorPattern(positions))
            << "trial " << trial;
    }
}

class BchGeneralSweep
    : public ::testing::TestWithParam<std::tuple<std::size_t, std::size_t>>
{
  protected:
    std::size_t k() const { return std::get<0>(GetParam()); }
    std::size_t t() const { return std::get<1>(GetParam()); }
};

TEST_P(BchGeneralSweep, CorrectsUpToTErrors)
{
    const BchCode code(k(), t());
    common::Xoshiro256 rng(100 + k() * 10 + t());
    const gf2::BitVector d = gf2::BitVector::random(k(), rng);
    const gf2::BitVector clean = code.encode(d);
    for (std::size_t weight = 1; weight <= t(); ++weight) {
        for (int trial = 0; trial < 120; ++trial) {
            const auto errors = randomErrors(weight, code.n(), rng);
            gf2::BitVector c = clean;
            for (const std::size_t pos : errors)
                c.flip(pos);
            const BchGeneralDecodeResult r = code.decode(c);
            EXPECT_EQ(r.dataword, d)
                << "weight " << weight << " trial " << trial;
            EXPECT_EQ(r.correctedPositions,
                      std::vector<std::size_t>(errors.begin(),
                                               errors.end()));
        }
    }
}

TEST_P(BchGeneralSweep, NeverFlipsMoreThanTOnOverload)
{
    // t+1 .. t+2 errors: the decoder may detect or miscorrect, but can
    // never apply more than t flips — the bound that generalizes HARP's
    // indirect-error argument.
    const BchCode code(k(), t());
    common::Xoshiro256 rng(200 + k() * 10 + t());
    const gf2::BitVector d = gf2::BitVector::random(k(), rng);
    const gf2::BitVector clean = code.encode(d);
    for (std::size_t overload = 1; overload <= 2; ++overload) {
        for (int trial = 0; trial < 120; ++trial) {
            const auto errors =
                randomErrors(t() + overload, code.n(), rng);
            gf2::BitVector c = clean;
            for (const std::size_t pos : errors)
                c.flip(pos);
            const BchGeneralDecodeResult r = code.decode(c);
            EXPECT_LE(r.correctedPositions.size(), t());
            if (r.detectedUncorrectable) {
                EXPECT_TRUE(r.correctedPositions.empty());
            }
        }
    }
}

INSTANTIATE_TEST_SUITE_P(
    KTSweep, BchGeneralSweep,
    ::testing::Combine(::testing::Values<std::size_t>(32, 64),
                       ::testing::Values<std::size_t>(1, 2, 3, 4)),
    [](const ::testing::TestParamInfo<std::tuple<std::size_t,
                                                 std::size_t>> &info) {
        return "k" + std::to_string(std::get<0>(info.param)) + "_t" +
               std::to_string(std::get<1>(info.param));
    });

TEST(BchGeneral, DetectedUncorrectableLeavesDataUntouched)
{
    // >t errors the decoder explicitly flags: the dataword must be the
    // uncorrected prefix and no flips may be reported.
    const BchCode code(64, 2);
    common::Xoshiro256 rng(7);
    const gf2::BitVector d = gf2::BitVector::random(64, rng);
    const gf2::BitVector clean = code.encode(d);
    std::size_t detected = 0;
    for (int trial = 0; trial < 200; ++trial) {
        const auto errors = randomErrors(4, code.n(), rng);
        gf2::BitVector c = clean;
        for (const std::size_t pos : errors)
            c.flip(pos);
        const BchGeneralDecodeResult r = code.decode(c);
        if (!r.detectedUncorrectable)
            continue;
        ++detected;
        EXPECT_TRUE(r.correctedPositions.empty());
        EXPECT_EQ(r.dataword, c.slice(0, code.k()));
    }
    EXPECT_GT(detected, 0u);
}

TEST(BchGeneral, ShortenedOutOfRangeChienRootsRejected)
{
    // A (virtual) single error at a coefficient c >= n of the parent
    // code has the same syndromes as the parity-region pattern
    // x^c mod g (g divides their sum, and g(alpha^j) = 0 for the
    // syndrome powers). Berlekamp-Massey then yields a degree-1
    // locator whose only root lies outside the shortened code, so the
    // Chien search must reject it: detected uncorrectable, data
    // untouched — never a phantom correction.
    const BchCode code(16, 2);
    ASSERT_LT(code.n(), code.field().order());
    common::Xoshiro256 rng(8);
    const gf2::BitVector d = gf2::BitVector::random(16, rng);
    const gf2::BitVector clean = code.encode(d);
    for (std::size_t c = code.n(); c < code.field().order(); ++c) {
        // x^c mod g by shift-and-reduce.
        std::uint64_t rem = 1;
        for (std::size_t step = 0; step < c; ++step) {
            rem <<= 1;
            if ((rem >> code.p()) & 1)
                rem ^= code.generatorPolynomial();
        }
        gf2::BitVector received = clean;
        for (std::size_t j = 0; j < code.p(); ++j)
            if ((rem >> j) & 1)
                received.flip(code.k() + j);
        const BchGeneralDecodeResult r = code.decode(received);
        EXPECT_TRUE(r.detectedUncorrectable) << "coefficient " << c;
        EXPECT_TRUE(r.correctedPositions.empty());
        EXPECT_EQ(r.dataword, d); // the pattern only touches parity
    }
}

/**
 * Exact decoder semantics on fully-enumerable codes: for every sampled
 * received word, compare against brute-force nearest-codeword search.
 * Within distance t the decoder must return the (unique) nearest
 * codeword with exactly the differing positions; beyond distance t it
 * must either flag detected-uncorrectable (no flips) or miscorrect
 * onto some *codeword* within t flips — never onto a non-codeword.
 */
TEST(BchGeneral, BruteForceNearestCodewordSmallCodes)
{
    for (const std::size_t t : {std::size_t{1}, std::size_t{2},
                                std::size_t{3}}) {
        const std::size_t k = 6;
        const BchCode code(k, t);
        std::vector<gf2::BitVector> codewords;
        for (std::uint64_t v = 0; v < (std::uint64_t{1} << k); ++v)
            codewords.push_back(
                code.encode(gf2::BitVector::fromUint(v, k)));

        const auto distance = [](const gf2::BitVector &a,
                                 const gf2::BitVector &b) {
            gf2::BitVector diff = a;
            diff ^= b;
            return diff.popcount();
        };

        common::Xoshiro256 rng(31 + t);
        std::vector<gf2::BitVector> samples;
        for (int trial = 0; trial < 300; ++trial)
            samples.push_back(gf2::BitVector::random(code.n(), rng));
        for (std::size_t weight = 1; weight <= t + 1; ++weight) {
            for (int trial = 0; trial < 100; ++trial) {
                gf2::BitVector c =
                    codewords[rng.nextBelow(codewords.size())];
                for (const std::size_t pos :
                     randomErrors(weight, code.n(), rng))
                    c.flip(pos);
                samples.push_back(std::move(c));
            }
        }

        for (const gf2::BitVector &received : samples) {
            std::size_t dmin = code.n() + 1, nearest = 0;
            for (std::size_t i = 0; i < codewords.size(); ++i) {
                const std::size_t dist = distance(received, codewords[i]);
                if (dist < dmin) {
                    dmin = dist;
                    nearest = i;
                }
            }
            const BchGeneralDecodeResult r = code.decode(received);
            EXPECT_LE(r.correctedPositions.size(), t);
            if (dmin <= t) {
                // Unique by minimum distance >= 2t+1.
                EXPECT_FALSE(r.detectedUncorrectable);
                EXPECT_EQ(r.dataword, codewords[nearest].slice(0, k));
                std::vector<std::size_t> expected_flips;
                for (std::size_t pos = 0; pos < code.n(); ++pos)
                    if (received.get(pos) != codewords[nearest].get(pos))
                        expected_flips.push_back(pos);
                EXPECT_EQ(r.correctedPositions, expected_flips);
            } else if (r.detectedUncorrectable) {
                EXPECT_TRUE(r.correctedPositions.empty());
                EXPECT_EQ(r.dataword, received.slice(0, k));
            } else {
                // Miscorrection: the flips must land on a codeword.
                gf2::BitVector corrected = received;
                for (const std::size_t pos : r.correctedPositions)
                    corrected.flip(pos);
                bool is_codeword = false;
                for (const gf2::BitVector &cw : codewords)
                    is_codeword = is_codeword || corrected == cw;
                EXPECT_TRUE(is_codeword)
                    << "t=" << t << ": silent non-codeword result";
            }
        }
    }
}

TEST(BchGeneral, DecodeIntoReusesResultAndMatchesDecode)
{
    const BchCode code(64, 3);
    common::Xoshiro256 rng(9);
    BchGeneralDecodeResult reused;
    for (int trial = 0; trial < 60; ++trial) {
        const gf2::BitVector d = gf2::BitVector::random(64, rng);
        gf2::BitVector received = code.encode(d);
        const std::size_t weight = rng.nextBelow(6); // 0..5 errors
        for (const std::size_t pos :
             randomErrors(weight, code.n(), rng))
            received.flip(pos);
        code.decodeInto(received, reused);
        const BchGeneralDecodeResult fresh = code.decode(received);
        EXPECT_EQ(reused.dataword, fresh.dataword);
        EXPECT_EQ(reused.correctedPositions, fresh.correctedPositions);
        EXPECT_EQ(reused.detectedUncorrectable,
                  fresh.detectedUncorrectable);
    }
}

TEST(BchGeneral, EncodeIntoMatchesEncode)
{
    const BchCode code(32, 2);
    common::Xoshiro256 rng(10);
    gf2::BitVector codeword(code.n());
    for (int trial = 0; trial < 20; ++trial) {
        const gf2::BitVector d = gf2::BitVector::random(32, rng);
        code.encodeInto(d, codeword);
        EXPECT_EQ(codeword, code.encode(d));
    }
}

TEST(BchGeneral, ParityRowsMatchEncoder)
{
    const BchCode code(32, 3);
    common::Xoshiro256 rng(3);
    const gf2::BitVector d = gf2::BitVector::random(32, rng);
    const gf2::BitVector c = code.encode(d);
    for (std::size_t j = 0; j < code.p(); ++j)
        EXPECT_EQ(c.get(code.k() + j), code.parityRow(j).dot(d));
}

TEST(BchGeneral, T1BehavesLikeSecCode)
{
    // t=1 general BCH is a (shortened) Hamming code: every single error
    // corrected, double errors never silently accepted as clean.
    const BchCode code(64, 1);
    common::Xoshiro256 rng(4);
    const gf2::BitVector d = gf2::BitVector::random(64, rng);
    const gf2::BitVector clean = code.encode(d);
    for (std::size_t pos = 0; pos < code.n(); ++pos) {
        gf2::BitVector c = clean;
        c.flip(pos);
        const BchGeneralDecodeResult r = code.decode(c);
        EXPECT_EQ(r.dataword, d);
        ASSERT_EQ(r.correctedPositions.size(), 1u);
        EXPECT_EQ(r.correctedPositions[0], pos);
    }
}

} // namespace
} // namespace harp::ecc
