/**
 * @file
 * Campaign-level tests for the fleet experiment specs: byte-identical
 * JSONL across thread counts and engines (the PR's acceptance
 * contract), the pinned-population tunable, and the sampler statistics
 * the `fleet_population_stats` experiment exposes, checked against the
 * chi-square threshold.
 */

#include <gtest/gtest.h>

#include <cmath>
#include <filesystem>
#include <fstream>
#include <map>
#include <sstream>
#include <unistd.h>

#include "runner/campaign.hh"
#include "runner/registry.hh"
#include "support/statistics.hh"

namespace harp::runner {
namespace {

namespace fs = std::filesystem;

class TempDir
{
  public:
    explicit TempDir(const std::string &tag)
        : path_(fs::temp_directory_path() /
                ("harp_fleet_" + tag + "_" + std::to_string(::getpid())))
    {
        fs::remove_all(path_);
    }
    ~TempDir() { fs::remove_all(path_); }
    std::string str() const { return path_.string(); }

  private:
    fs::path path_;
};

std::string
readFile(const std::string &path)
{
    std::ifstream in(path, std::ios::binary);
    EXPECT_TRUE(in.good()) << path;
    std::ostringstream out;
    out << in.rdbuf();
    return out.str();
}

/** Scaled-down but non-trivial fleet overrides. */
std::map<std::string, std::string>
smallFleetOverrides()
{
    return {{"chips", "3000"},  {"fit_scale", "300"},
            {"windows", "6"},   {"rounds", "8"},
            {"device_hours", "43800"}};
}

CampaignSummary
runSelectors(const std::vector<std::string> &selectors,
             const CampaignOptions &options)
{
    std::ostringstream log;
    return runCampaign(builtinRegistry().select(selectors), options, log);
}

/**
 * The acceptance contract: fleet_policy_sweep emits byte-identical
 * JSONL for --threads {1, 4, hardware} and for sliced64 vs sliced256
 * vs scalar. The profiler axis is collapsed to keep the matrix fast;
 * the repair_budget and scrub axes stay swept.
 */
TEST(FleetSpec, PolicySweepBytesIdenticalAcrossThreadsAndEngines)
{
    std::vector<std::string> bytes;
    std::vector<std::uint64_t> hashes;
    std::vector<std::string> tags;
    for (const char *engine : {"sliced64", "sliced256", "scalar"}) {
        for (const std::size_t threads :
             {std::size_t{1}, std::size_t{4}, std::size_t{0} /* hw */}) {
            const std::string tag = std::string(engine) + "_t" +
                                    std::to_string(threads);
            const TempDir dir(tag);
            CampaignOptions options;
            options.seed = 21;
            options.threads = threads;
            options.outDir = dir.str();
            options.overrides = smallFleetOverrides();
            options.overrides["engine"] = engine;
            options.overrides["profiler"] = "harp_u";
            const CampaignSummary summary =
                runSelectors({"fleet_policy_sweep"}, options);
            ASSERT_EQ(summary.experiments.size(), 1u);
            // profiler collapsed: scrub {0,8} x budget {16,-1} remain.
            EXPECT_EQ(summary.experiments[0].points, 4u);
            hashes.push_back(summary.experiments[0].resultHash);
            bytes.push_back(readFile(summary.experiments[0].jsonlPath));
            tags.push_back(tag);
        }
    }
    ASSERT_EQ(bytes.size(), 9u);
    for (std::size_t r = 1; r < bytes.size(); ++r) {
        EXPECT_EQ(hashes[r], hashes[0]) << tags[r] << " vs " << tags[0];
        EXPECT_EQ(bytes[r], bytes[0]) << tags[r] << " vs " << tags[0];
    }
}

/** With --fleet_seed pinned, every grid point sees the same chip
 *  population: identical sampling counters on every line. */
TEST(FleetSpec, PinnedFleetSeedSharesPopulationAcrossGrid)
{
    const TempDir dir("pinned");
    CampaignOptions options;
    options.seed = 5;
    options.threads = 2;
    options.outDir = dir.str();
    options.overrides = smallFleetOverrides();
    options.overrides["fleet_seed"] = "1234";
    const CampaignSummary summary =
        runSelectors({"fleet_policy_sweep"}, options);
    ASSERT_EQ(summary.experiments.size(), 1u);
    EXPECT_EQ(summary.experiments[0].points, 16u);

    std::istringstream jsonl(
        readFile(summary.experiments[0].jsonlPath));
    std::string line;
    std::int64_t faulty = -1, events = -1, cells = -1;
    std::size_t lines = 0;
    while (std::getline(jsonl, line)) {
        const JsonValue doc = JsonValue::parse(line);
        const JsonValue *metrics = doc.find("metrics");
        ASSERT_NE(metrics, nullptr);
        if (faulty < 0) {
            faulty = metrics->find("faulty_chips")->asInt();
            events = metrics->find("fault_events")->asInt();
            cells = metrics->find("at_risk_cells")->asInt();
            EXPECT_GT(faulty, 0);
        }
        EXPECT_EQ(metrics->find("faulty_chips")->asInt(), faulty);
        EXPECT_EQ(metrics->find("fault_events")->asInt(), events);
        EXPECT_EQ(metrics->find("at_risk_cells")->asInt(), cells);
        ++lines;
    }
    EXPECT_EQ(lines, 16u);
}

/** The population-stats experiment's chi-square statistic stays under
 *  the 0.1% critical value, and its closed-form faulty fraction
 *  matches the observation within 5 sigma — on both presets. */
TEST(FleetSpec, PopulationStatsPassGoodnessOfFit)
{
    const TempDir dir("popstats");
    CampaignOptions options;
    options.seed = 31;
    options.threads = 2;
    options.outDir = dir.str();
    options.overrides = {{"chips", "150000"}, {"fit_scale", "50"}};
    const CampaignSummary summary =
        runSelectors({"fleet_population_stats"}, options);
    ASSERT_EQ(summary.experiments.size(), 1u);
    EXPECT_EQ(summary.experiments[0].points, 2u); // ddr4, hrm

    std::istringstream jsonl(
        readFile(summary.experiments[0].jsonlPath));
    std::string line;
    std::size_t lines = 0;
    while (std::getline(jsonl, line)) {
        const JsonValue doc = JsonValue::parse(line);
        const JsonValue *metrics = doc.find("metrics");
        ASSERT_NE(metrics, nullptr);
        const double chips = metrics->find("chips")->asDouble();
        const double faulty =
            metrics->find("faulty_chips")->asDouble();
        ASSERT_GT(faulty, 500.0)
            << "fleet too quiet for a meaningful GOF";
        EXPECT_LT(metrics->find("chi_square_mode_mix")->asDouble(),
                  test::chiSquareCritical999(3));
        const double p =
            metrics->find("expected_faulty_fraction")->asDouble();
        const double sigma = std::sqrt(chips * p * (1.0 - p));
        EXPECT_NEAR(faulty, chips * p, 5.0 * sigma);
        ++lines;
    }
    EXPECT_EQ(lines, 2u);
}

} // namespace
} // namespace harp::runner
