/**
 * @file
 * Unit tests for the streaming fleet aggregator: exact counter folds,
 * closed-form FIT rates, histogram quantiles, and the commutative
 * merge the parallel stratum reduction relies on.
 */

#include <gtest/gtest.h>

#include <cmath>

#include "fleet/aggregate.hh"

namespace harp::fleet {
namespace {

ChipOutcome
outcomeWithSpares(std::size_t spares, std::size_t uncorrectable = 0,
                  std::size_t silent = 0)
{
    ChipOutcome outcome;
    outcome.faultEvents = 1;
    outcome.atRiskCells = 2;
    outcome.repairSpareBits = spares;
    outcome.uncorrectableEvents = uncorrectable;
    outcome.silentCorruptions = silent;
    return outcome;
}

TEST(FleetAggregator, CountersFoldExactly)
{
    FleetAggregator agg;
    agg.addCleanChip();
    agg.addCleanChip();
    agg.addChip(outcomeWithSpares(3, 2, 0));
    agg.addChip(outcomeWithSpares(5, 0, 1));
    agg.addChip(outcomeWithSpares(0, 0, 0));

    EXPECT_EQ(agg.chips(), 5u);
    EXPECT_EQ(agg.faultyChips(), 3u);
    EXPECT_EQ(agg.faultEvents(), 3u);
    EXPECT_EQ(agg.atRiskCells(), 6u);
    EXPECT_EQ(agg.failedChips(), 2u);
    EXPECT_EQ(agg.uncorrectableEvents(), 2u);
    EXPECT_EQ(agg.silentCorruptions(), 1u);
    EXPECT_EQ(agg.repairSpareBits(), 8u);
}

TEST(FleetAggregator, FailedMeansAnyCorruptRead)
{
    EXPECT_FALSE(outcomeWithSpares(9, 0, 0).failed());
    EXPECT_TRUE(outcomeWithSpares(0, 1, 0).failed());
    EXPECT_TRUE(outcomeWithSpares(0, 0, 1).failed());
}

TEST(FleetAggregator, FitRateClosedForm)
{
    FleetAggregator agg;
    for (int i = 0; i < 997; ++i)
        agg.addCleanChip();
    for (int i = 0; i < 3; ++i)
        agg.addChip(outcomeWithSpares(0, 1, 0));
    // 3 failures over 1000 chips x 1e6 h = 1e9 device-hours -> 3 FIT.
    EXPECT_DOUBLE_EQ(agg.fitRate(1e6), 3.0);
    EXPECT_DOUBLE_EQ(agg.fitRateCi95(1e6), 1.96 * std::sqrt(3.0));

    FleetAggregator empty;
    EXPECT_DOUBLE_EQ(empty.fitRate(1e6), 0.0);
    EXPECT_DOUBLE_EQ(empty.fitRateCi95(1e6), 0.0);
}

TEST(FleetAggregator, QuantilesOverFaultyChips)
{
    FleetAggregator agg;
    // Spare consumption 0..99, one faulty chip each; clean chips must
    // not drag the percentiles toward zero.
    for (std::size_t i = 0; i < 1000; ++i)
        agg.addCleanChip();
    for (std::size_t spares = 0; spares < 100; ++spares)
        agg.addChip(outcomeWithSpares(spares));
    EXPECT_EQ(agg.repairBitsQuantile(0.50), 49u);
    EXPECT_EQ(agg.repairBitsQuantile(0.99), 98u);
    EXPECT_EQ(agg.repairBitsQuantile(0.999), 99u);

    // Per-chip failure events drive the uncorrectable quantile the
    // same way (uncorrectable + silent are summed per chip).
    FleetAggregator events;
    for (std::size_t e = 0; e < 10; ++e)
        events.addChip(outcomeWithSpares(0, e, e));
    EXPECT_EQ(events.uncorrectableQuantile(0.50), 8u);
}

TEST(FleetAggregator, EmptyAndAllCleanQuantilesAreZero)
{
    FleetAggregator empty;
    EXPECT_EQ(empty.repairBitsQuantile(0.999), 0u);
    EXPECT_EQ(empty.uncorrectableQuantile(0.999), 0u);

    FleetAggregator clean;
    for (int i = 0; i < 50; ++i)
        clean.addCleanChip();
    EXPECT_EQ(clean.repairBitsQuantile(0.999), 0u);
    EXPECT_EQ(clean.faultyChips(), 0u);
}

TEST(FleetAggregator, OversizedSpareCountsClampIntoLastBin)
{
    FleetAggregator agg(/*repair_bins=*/8, /*event_bins=*/8);
    agg.addChip(outcomeWithSpares(1000000));
    EXPECT_EQ(agg.repairBitsQuantile(0.5), 7u);
    EXPECT_EQ(agg.repairSpareBits(), 1000000u);
}

TEST(FleetAggregator, MergeMatchesSequentialFoldAndCommutes)
{
    std::vector<ChipOutcome> outcomes;
    for (std::size_t i = 0; i < 40; ++i)
        outcomes.push_back(
            outcomeWithSpares(i % 7, i % 3 == 0 ? 1 : 0, i % 5 == 0));

    FleetAggregator sequential;
    for (const ChipOutcome &outcome : outcomes)
        sequential.addChip(outcome);
    sequential.addCleanChip();

    FleetAggregator left, right;
    for (std::size_t i = 0; i < outcomes.size(); ++i)
        (i < 17 ? left : right).addChip(outcomes[i]);
    right.addCleanChip();

    FleetAggregator lr = left;
    lr.merge(right);
    EXPECT_TRUE(lr == sequential);

    FleetAggregator rl = right;
    rl.merge(left);
    EXPECT_TRUE(rl == sequential);
    EXPECT_FALSE(rl != lr);

    // And the equality operator actually discriminates.
    FleetAggregator different = sequential;
    different.addChip(outcomeWithSpares(1));
    EXPECT_TRUE(different != sequential);
}

} // namespace
} // namespace harp::fleet
