/**
 * @file
 * Statistical goodness-of-fit and purity tests for the fleet
 * chip-population sampler.
 *
 * Everything runs under fixed seeds, so every chi-square / KS check is
 * deterministic; the alpha = 0.001 thresholds (support/statistics.hh)
 * make the assertions code-change detectors, not noise sources.
 */

#include <gtest/gtest.h>

#include <cmath>
#include <map>
#include <set>

#include "fleet/population.hh"
#include "memsys/memory_chip.hh"
#include "support/seeded_fixture.hh"
#include "support/statistics.hh"

namespace harp::fleet {
namespace {

using test::chiSquareCritical999;
using test::chiSquareStatistic;
using test::ksCritical999;
using test::ksStatisticUniform;

constexpr ChipGeometry kGeometry{128, 71};

/** Rates inflated so a modest fleet yields thousands of events. */
FleetDistribution
hotDistribution()
{
    FleetDistribution dist = FleetDistribution::ddr4Field();
    for (double &fit : dist.modeFit)
        fit *= 2000.0;
    return dist;
}

TEST(PopulationSampler, SamplingIsPureAndDeterministic)
{
    const PopulationSampler sampler(hotDistribution(), kGeometry,
                                    43800.0, 99);
    for (std::size_t chip = 0; chip < 64; ++chip) {
        const ChipSample a = sampler.sample(chip);
        const ChipSample b = sampler.sample(chip);
        ASSERT_EQ(a.tier, b.tier);
        ASSERT_EQ(a.events.size(), b.events.size());
        for (std::size_t e = 0; e < a.events.size(); ++e) {
            EXPECT_EQ(a.events[e].mode, b.events[e].mode);
            EXPECT_EQ(a.events[e].cells, b.events[e].cells);
        }
    }
    // A different fleet seed reshuffles the population.
    const PopulationSampler other(hotDistribution(), kGeometry, 43800.0,
                                  100);
    std::size_t differing = 0;
    for (std::size_t chip = 0; chip < 256; ++chip)
        if (other.sample(chip).events.size() !=
            sampler.sample(chip).events.size())
            ++differing;
    EXPECT_GT(differing, 0u);
}

TEST(PopulationSampler, TierSplitMatchesFractionsChiSquare)
{
    const FleetDistribution dist = FleetDistribution::hrmTiers();
    const PopulationSampler sampler(dist, kGeometry, 43800.0, 7);
    constexpr std::size_t kChips = 100000;
    std::vector<std::uint64_t> observed(dist.tiers.size(), 0);
    for (std::size_t chip = 0; chip < kChips; ++chip)
        ++observed[sampler.sample(chip).tier];
    std::vector<double> expected;
    for (const ReliabilityTier &tier : dist.tiers)
        expected.push_back(tier.fraction * kChips);
    EXPECT_LT(chiSquareStatistic(expected, observed),
              chiSquareCritical999(dist.tiers.size() - 1));
}

TEST(PopulationSampler, ModeMixMatchesDistributionChiSquare)
{
    const FleetDistribution dist = hotDistribution();
    const PopulationSampler sampler(dist, kGeometry, 43800.0, 11);
    std::vector<std::uint64_t> observed(kNumFaultModes, 0);
    std::uint64_t events = 0;
    for (std::size_t chip = 0; chip < 4000; ++chip) {
        for (const FaultEvent &event : sampler.sample(chip).events) {
            ++observed[static_cast<std::size_t>(event.mode)];
            ++events;
        }
    }
    ASSERT_GT(events, 1000u);
    const auto mix = dist.modeMix();
    std::vector<double> expected;
    for (std::size_t m = 0; m < kNumFaultModes; ++m)
        expected.push_back(mix[m] * static_cast<double>(events));
    EXPECT_LT(chiSquareStatistic(expected, observed),
              chiSquareCritical999(kNumFaultModes - 1));
}

TEST(PopulationSampler, EventCountIsPoissonChiSquare)
{
    // lambda ~ 0.526 with these rates: bin the per-chip event count
    // into {0, 1, 2, >=3} and test against the closed-form pmf.
    FleetDistribution dist = FleetDistribution::ddr4Field();
    for (double &fit : dist.modeFit)
        fit *= 200.0;
    const PopulationSampler sampler(dist, kGeometry, 43800.0, 13);
    const double lambda = sampler.eventRate(0);
    ASSERT_GT(lambda, 0.2);
    ASSERT_LT(lambda, 1.0);

    constexpr std::size_t kChips = 50000;
    std::vector<std::uint64_t> observed(4, 0);
    for (std::size_t chip = 0; chip < kChips; ++chip)
        ++observed[std::min<std::size_t>(
            sampler.sample(chip).events.size(), 3)];

    const double p0 = std::exp(-lambda);
    const double p1 = p0 * lambda;
    const double p2 = p1 * lambda / 2.0;
    const std::vector<double> expected = {
        p0 * kChips, p1 * kChips, p2 * kChips,
        (1.0 - p0 - p1 - p2) * kChips};
    EXPECT_LT(chiSquareStatistic(expected, observed),
              chiSquareCritical999(3));
}

TEST(PopulationSampler, ChipWideCellPlacementIsUniformKs)
{
    // ChipWide events scatter (word, position) draws over the whole
    // chip; mapped onto the unit interval they must pass a KS test
    // against Uniform(0, 1).
    const FleetDistribution dist = hotDistribution();
    const PopulationSampler sampler(dist, kGeometry, 43800.0, 17);
    std::vector<double> samples;
    const double span = static_cast<double>(kGeometry.wordsPerChip *
                                            kGeometry.codewordBits);
    for (std::size_t chip = 0; chip < 6000; ++chip) {
        for (const FaultEvent &event : sampler.sample(chip).events) {
            if (event.mode != FaultMode::ChipWide)
                continue;
            for (const auto &[word, pos] : event.cells)
                samples.push_back(
                    (static_cast<double>(word * kGeometry.codewordBits +
                                         pos) +
                     0.5) /
                    span);
        }
    }
    ASSERT_GT(samples.size(), 1000u);
    EXPECT_LT(ksStatisticUniform(samples),
              ksCritical999(samples.size()));
}

TEST(PopulationSampler, EventShapesMatchTheirMode)
{
    const FleetDistribution dist = hotDistribution();
    const PopulationSampler sampler(dist, kGeometry, 43800.0, 19);
    std::size_t seen_word = 0, seen_column = 0;
    for (std::size_t chip = 0; chip < 3000; ++chip) {
        for (const FaultEvent &event : sampler.sample(chip).events) {
            switch (event.mode) {
              case FaultMode::SingleBit:
                ASSERT_EQ(event.cells.size(), 1u);
                break;
              case FaultMode::SingleWord: {
                ++seen_word;
                ASSERT_EQ(event.cells.size(), dist.wordEventCells);
                std::set<std::size_t> positions;
                for (const auto &[word, pos] : event.cells) {
                    EXPECT_EQ(word, event.cells.front().first);
                    positions.insert(pos);
                }
                // Distinct positions inside one word.
                EXPECT_EQ(positions.size(), event.cells.size());
                break;
              }
              case FaultMode::SingleColumn: {
                ++seen_column;
                for (const auto &[word, pos] : event.cells)
                    EXPECT_EQ(pos, event.cells.front().second);
                break;
              }
              case FaultMode::ChipWide:
                EXPECT_LE(event.cells.size(), dist.chipEventCells);
                break;
            }
            for (const auto &[word, pos] : event.cells) {
                EXPECT_LT(word, kGeometry.wordsPerChip);
                EXPECT_LT(pos, kGeometry.codewordBits);
            }
        }
    }
    EXPECT_GT(seen_word, 0u);
    EXPECT_GT(seen_column, 0u);
}

TEST(PopulationSampler, MaterializeDedupsSortsAndPrices)
{
    const FleetDistribution dist = hotDistribution();
    const PopulationSampler sampler(dist, kGeometry, 43800.0, 23);
    // Find a chip with overlapping events to make the dedup meaningful.
    for (std::size_t chip = 0; chip < 2000; ++chip) {
        const ChipSample sample = sampler.sample(chip);
        if (!sample.faulty())
            continue;
        const auto models = sampler.materialize(sample);
        std::size_t model_cells = 0;
        for (std::size_t i = 0; i < models.size(); ++i) {
            if (i > 0)
                EXPECT_LT(models[i - 1].first, models[i].first);
            EXPECT_LT(models[i].first, kGeometry.wordsPerChip);
            model_cells += models[i].second.numFaults();
        }
        // Dedup across events: model cells == distinct sampled cells.
        EXPECT_EQ(model_cells, sample.distinctCells());
    }
}

TEST(PopulationSampler, PlaceOnChipMatchesMaterialize)
{
    const FleetDistribution dist = hotDistribution();
    const PopulationSampler sampler(dist, kGeometry, 43800.0, 29);
    common::Xoshiro256 code_rng(1);
    const ecc::HammingCode code =
        ecc::HammingCode::randomSec(64, code_rng);
    ASSERT_EQ(code.n(), kGeometry.codewordBits);

    std::size_t placed_chips = 0;
    for (std::size_t chip = 0; chip < 500 && placed_chips < 5; ++chip) {
        const ChipSample sample = sampler.sample(chip);
        if (!sample.faulty())
            continue;
        ++placed_chips;
        mem::MemoryChip device(code, kGeometry.wordsPerChip);
        const std::size_t placed = sampler.placeOnChip(device, sample);
        EXPECT_EQ(placed, sample.distinctCells());

        const auto models = sampler.materialize(sample);
        const auto faulty = device.faultyWords();
        ASSERT_EQ(faulty.size(), models.size());
        for (std::size_t i = 0; i < models.size(); ++i) {
            EXPECT_EQ(faulty[i], models[i].first);
            const fault::WordFaultModel &on_chip =
                device.faultModel(models[i].first);
            EXPECT_EQ(on_chip.numFaults(),
                      models[i].second.numFaults());
        }
    }
    ASSERT_GT(placed_chips, 0u);

    // Geometry mismatch is rejected outright.
    mem::MemoryChip small(code, 2);
    EXPECT_THROW(sampler.placeOnChip(small, sampler.sample(0)),
                 std::invalid_argument);
}

TEST(FleetDistributionValidation, RejectsNonPhysicalParameters)
{
    EXPECT_NO_THROW(FleetDistribution::ddr4Field().validate());
    EXPECT_NO_THROW(FleetDistribution::hrmTiers().validate());
    EXPECT_THROW(FleetDistribution::preset("nope"),
                 std::invalid_argument);

    FleetDistribution negative = FleetDistribution::ddr4Field();
    negative.modeFit[0] = -1.0;
    EXPECT_THROW(negative.validate(), std::invalid_argument);

    FleetDistribution zero = FleetDistribution::ddr4Field();
    zero.modeFit = {0.0, 0.0, 0.0, 0.0};
    EXPECT_THROW(zero.validate(), std::invalid_argument);

    FleetDistribution bad_prob = FleetDistribution::ddr4Field();
    bad_prob.cellProbability = 1.5;
    EXPECT_THROW(bad_prob.validate(), std::invalid_argument);

    FleetDistribution bad_tiers = FleetDistribution::hrmTiers();
    bad_tiers.tiers[0].fraction = 0.4;
    EXPECT_THROW(bad_tiers.validate(), std::invalid_argument);

    FleetDistribution no_tiers = FleetDistribution::ddr4Field();
    no_tiers.tiers.clear();
    EXPECT_THROW(no_tiers.validate(), std::invalid_argument);
}

TEST(FleetDistribution, ClosedFormsAreConsistent)
{
    const FleetDistribution dist = FleetDistribution::ddr4Field();
    const auto mix = dist.modeMix();
    double mass = 0.0;
    for (const double m : mix)
        mass += m;
    EXPECT_NEAR(mass, 1.0, 1e-12);
    EXPECT_NEAR(dist.totalFit(), 60.0, 1e-12);
    // 60 FIT over 5 years: 60e-9 * 43800 events expected.
    EXPECT_NEAR(dist.eventsPerChip(0, 43800.0), 60.0 * 43800.0 * 1e-9,
                1e-12);

    const FleetDistribution hrm = FleetDistribution::hrmTiers();
    EXPECT_LT(hrm.eventsPerChip(0, 43800.0),
              hrm.eventsPerChip(2, 43800.0));

    for (const char *name : {"bit", "word", "column", "chip"})
        EXPECT_STREQ(faultModeName(faultModeFromName(name)), name);
    EXPECT_THROW(faultModeFromName("row"), std::invalid_argument);
}

} // namespace
} // namespace harp::fleet
