/**
 * @file
 * Property and oracle tests for the fleet policy driver.
 *
 * The closed-form oracles run hand-crafted one-chip populations
 * through runChipOperation and check exact outcomes. The monotonicity
 * properties exploit the driver's common-random-numbers contract:
 * every chip's randomness derives from (fleet seed, chip index) only,
 * so two policies see literally the same fleet and the same per-window
 * retention trials — tightening one axis must not worsen the failure
 * count. The cross-engine / cross-thread tests assert exact
 * FleetAggregator equality, the in-memory face of the campaign-level
 * byte-identity acceptance.
 */

#include <gtest/gtest.h>

#include <vector>

#include "fault/fault_model.hh"
#include "fleet/policy.hh"
#include "support/property.hh"
#include "support/seeded_fixture.hh"

namespace harp::fleet {
namespace {

/** One chip whose single faulty word carries @p cells at p = 1.0. */
ChipSim
oneWordChip(std::uint64_t fleet_seed,
            const std::vector<std::size_t> &cells,
            std::size_t word = 3)
{
    std::vector<fault::CellFault> faults;
    for (const std::size_t pos : cells)
        faults.push_back({pos, 1.0});
    std::vector<std::pair<std::size_t, fault::WordFaultModel>> words;
    words.emplace_back(word,
                       fault::WordFaultModel(71, std::move(faults)));
    return makeChipSim(fleet_seed, /*chip=*/0, /*k=*/64,
                       std::move(words), /*fault_events=*/1);
}

/** Small hot fleet shared by the property tests. */
FleetConfig
hotFleet(std::uint64_t seed)
{
    FleetConfig config;
    config.distribution = FleetDistribution::ddr4Field();
    for (double &fit : config.distribution.modeFit)
        fit *= 400.0;
    config.chips = 1200;
    config.windows = 8;
    config.seed = seed;
    // Identity across thread counts is proven separately; the property
    // sweeps just want the answer fast.
    config.threads = 0;
    config.stratumChips = 128;
    config.policy.profiler = ProfilerKind::HarpU;
    config.policy.activeRounds = 16;
    config.policy.scrubInterval = 4;
    config.policy.repairBudget = kUnlimitedBudget;
    return config;
}

TEST(ProfilerKindNames, RoundTripAndReject)
{
    for (const ProfilerKind kind :
         {ProfilerKind::None, ProfilerKind::Naive, ProfilerKind::HarpU,
          ProfilerKind::HarpA})
        EXPECT_EQ(profilerKindFromName(profilerKindName(kind)), kind);
    EXPECT_THROW(profilerKindFromName("beep"), std::invalid_argument);
}

TEST(ChipSimConstruction, DerivedStreamsAreDeterministic)
{
    const ChipSim a = oneWordChip(42, {5, 9});
    const ChipSim b = oneWordChip(42, {5, 9});
    EXPECT_EQ(a.chipSeed, b.chipSeed);
    EXPECT_EQ(a.chipSeed, chipSimSeed(42, 0));
    // The chip-private codes re-derive identically: same encodes.
    common::Xoshiro256 rng(7);
    const gf2::BitVector data = gf2::BitVector::random(64, rng);
    EXPECT_EQ(a.onDie.encode(data), b.onDie.encode(data));
    EXPECT_EQ(a.secondary.encode(data), b.secondary.encode(data));
    // Different chip index, different seed root.
    EXPECT_NE(chipSimSeed(42, 0), chipSimSeed(42, 1));
    EXPECT_NE(chipSimSeed(42, 0), chipSimSeed(43, 0));
}

/**
 * Oracle: a single always-leaky cell can never fail a chip — on-die
 * SEC corrects one raw error per word by construction — under *any*
 * policy, including the bare one.
 */
TEST(FleetOracle, SingleCellChipNeverFails)
{
    test::forEachSeed(4, [](std::uint64_t seed, common::Xoshiro256 &rng) {
        FleetPolicy bare;
        bare.profiler = ProfilerKind::None;
        bare.activeRounds = 0;
        bare.scrubInterval = 0;
        bare.repairBudget = 0;
        ChipSim sim =
            oneWordChip(seed, {rng.nextBelow(71)}, rng.nextBelow(8));
        const ChipOutcome outcome =
            runChipOperation(sim, /*words_per_chip=*/8, bare,
                             /*windows=*/6);
        EXPECT_EQ(outcome.uncorrectableEvents, 0u);
        EXPECT_EQ(outcome.silentCorruptions, 0u);
        EXPECT_FALSE(outcome.failed());
        EXPECT_EQ(outcome.atRiskCells, 1u);
    });
}

/**
 * Oracle: two always-leaky cells with no mitigation are all-or-nothing.
 * p = 1.0 discharges every charged at-risk cell in window 1 and the
 * word is never rewritten, so each of the W windows reads the *same*
 * stored word — the chip either fails in every window or in none, and
 * a failure is either always detected or always silent.
 */
TEST(FleetOracle, BareTwoCellChipFailsAllWindowsOrNone)
{
    constexpr std::size_t kWindows = 5;
    FleetPolicy bare;
    bare.profiler = ProfilerKind::None;
    bare.activeRounds = 0;
    bare.scrubInterval = 0;
    bare.repairBudget = 0;

    std::size_t failing_chips = 0, clean_chips = 0;
    test::forEachSeed(8, [&](std::uint64_t seed, common::Xoshiro256 &rng) {
        std::size_t a = rng.nextBelow(71), b = rng.nextBelow(71);
        while (b == a)
            b = rng.nextBelow(71);
        ChipSim sim = oneWordChip(seed, {a, b});
        const ChipOutcome outcome =
            runChipOperation(sim, 8, bare, kWindows);
        const std::size_t failures =
            outcome.uncorrectableEvents + outcome.silentCorruptions;
        EXPECT_TRUE(failures == 0 || failures == kWindows) << failures;
        // Never a detected/silent mix: the windows are identical reads.
        EXPECT_TRUE(outcome.uncorrectableEvents == 0 ||
                    outcome.silentCorruptions == 0);
        (failures == 0 ? clean_chips : failing_chips) += 1;
    });
    // Both outcomes occur across the seed sweep (charge is
    // data-dependent), so the oracle exercises both branches.
    EXPECT_GT(failing_chips, 0u);
    EXPECT_GT(clean_chips, 0u);
}

/**
 * Oracle: a profiled chip with budget for its one at-risk cell never
 * fails, captures exactly one spare bit, and profiling finds the cell.
 * Data-position cells are directly observable by HARP-U, and 24 random
 * patterns miss a p=1.0 cell with probability 2^-24 per seed — under
 * the fixed seeds this is exact, not probabilistic.
 */
TEST(FleetOracle, ProfiledAndRepairedSingleDataCell)
{
    test::forEachSeed(4, [](std::uint64_t seed, common::Xoshiro256 &rng) {
        FleetPolicy policy;
        policy.profiler = ProfilerKind::HarpU;
        policy.activeRounds = 24;
        policy.scrubInterval = 0;
        policy.repairBudget = 4;
        // Data positions are 0..63 for every randomSec(64) code.
        ChipSim sim = oneWordChip(seed, {rng.nextBelow(64)});
        profileChipScalar(sim, policy);
        ASSERT_EQ(sim.profiles.size(), 1u);
        EXPECT_EQ(sim.profiles[0].popcount(), 1u);
        const ChipOutcome outcome = runChipOperation(sim, 8, policy, 6);
        EXPECT_FALSE(outcome.failed());
        EXPECT_EQ(outcome.profiledBits, 1u);
        EXPECT_EQ(outcome.repairSpareBits, 1u);
    });
}

/** Tightening the repair budget axis never helps, loosening it never
 *  hurts: failures are monotone non-increasing in the budget. */
TEST(FleetProperty, RepairBudgetAxisIsMonotone)
{
    test::forEachSeed(3, [](std::uint64_t seed, common::Xoshiro256 &) {
        std::vector<std::uint64_t> failed;
        for (const std::size_t budget : {std::size_t{0}, std::size_t{2},
                                         std::size_t{8},
                                         kUnlimitedBudget}) {
            FleetConfig config = hotFleet(seed);
            config.policy.repairBudget = budget;
            failed.push_back(runFleet(config).failedChips());
        }
        for (std::size_t i = 1; i < failed.size(); ++i)
            EXPECT_LE(failed[i], failed[i - 1])
                << "budget step " << i << " worsened failures";
        // The axis actually bites on this fleet.
        EXPECT_LT(failed.back(), failed.front());
    });
}

/** More frequent patrol scrubbing never worsens failures (off -> 16
 *  -> 4 -> 1 windows). */
TEST(FleetProperty, ScrubIntervalAxisIsMonotone)
{
    test::forEachSeed(3, [](std::uint64_t seed, common::Xoshiro256 &) {
        std::vector<std::uint64_t> failed;
        for (const std::size_t interval :
             {std::size_t{0}, std::size_t{16}, std::size_t{4},
              std::size_t{1}}) {
            FleetConfig config = hotFleet(seed);
            config.policy.scrubInterval = interval;
            config.windows = 16;
            failed.push_back(runFleet(config).failedChips());
        }
        for (std::size_t i = 1; i < failed.size(); ++i)
            EXPECT_LE(failed[i], failed[i - 1])
                << "scrub step " << i << " worsened failures";
    });
}

/** More active-profiling rounds never worsen failures when the repair
 *  budget is unlimited (a finite budget can displace captures, which
 *  is why the guarantee is scoped to the unlimited case). */
TEST(FleetProperty, ProfilingRoundsMonotoneUnderUnlimitedBudget)
{
    test::forEachSeed(3, [](std::uint64_t seed, common::Xoshiro256 &) {
        std::vector<std::uint64_t> failed;
        for (const std::size_t rounds :
             {std::size_t{0}, std::size_t{8}, std::size_t{32}}) {
            FleetConfig config = hotFleet(seed);
            config.policy.activeRounds = rounds;
            failed.push_back(runFleet(config).failedChips());
        }
        for (std::size_t i = 1; i < failed.size(); ++i)
            EXPECT_LE(failed[i], failed[i - 1])
                << "round step " << i << " worsened failures";
        EXPECT_LT(failed.back(), failed.front());
    });
}

/** Scalar, sliced64 and sliced256 runs of the same fleet are exactly
 *  equal — every counter and histogram bin. */
TEST(FleetDeterminism, EnginesProduceIdenticalAggregates)
{
    FleetConfig config = hotFleet(0xF1EE7);
    config.engine = core::EngineKind::Scalar;
    const FleetAggregator scalar = runFleet(config);
    ASSERT_GT(scalar.faultyChips(), 0u);
    ASSERT_GT(scalar.profiledBits(), 0u);

    config.engine = core::EngineKind::Sliced64;
    EXPECT_TRUE(runFleet(config) == scalar);
    config.engine = core::EngineKind::Sliced256;
    EXPECT_TRUE(runFleet(config) == scalar);
}

/** Thread-count independence: the stratum fan-out merges in index
 *  order, so 1, 3 and hardware threads agree exactly. */
TEST(FleetDeterminism, ThreadCountsProduceIdenticalAggregates)
{
    FleetConfig config = hotFleet(0x7EA);
    config.threads = 1;
    const FleetAggregator single = runFleet(config);
    ASSERT_GT(single.faultyChips(), 0u);

    config.threads = 3;
    EXPECT_TRUE(runFleet(config) == single);
    config.threads = 0; // hardware concurrency
    EXPECT_TRUE(runFleet(config) == single);
}

/** A fleet with no fault events is all-clean: zero FIT, zero spares. */
TEST(FleetDeterminism, QuietFleetIsAllClean)
{
    FleetConfig config = hotFleet(5);
    config.distribution = FleetDistribution::ddr4Field();
    for (double &fit : config.distribution.modeFit)
        fit *= 1e-9;
    config.chips = 400;
    const FleetAggregator agg = runFleet(config);
    EXPECT_EQ(agg.chips(), 400u);
    EXPECT_EQ(agg.faultyChips(), 0u);
    EXPECT_EQ(agg.failedChips(), 0u);
    EXPECT_DOUBLE_EQ(agg.fitRate(config.deviceHours), 0.0);
    EXPECT_EQ(agg.repairBitsQuantile(0.999), 0u);
}

} // namespace
} // namespace harp::fleet
