#include "support/seeded_fixture.hh"

#include <string>

#include "support/golden.hh"

namespace harp::test {

std::uint64_t
currentTestSeed()
{
    const ::testing::TestInfo *info =
        ::testing::UnitTest::GetInstance()->current_test_info();
    if (info == nullptr)
        return goldenMix(kGoldenInit, std::string("harp.no-active-test"));
    return goldenMix(kGoldenInit, std::string(info->test_suite_name()) + "." +
                                      info->name());
}

std::uint64_t
SeededTest::seed() const
{
    return currentTestSeed();
}

common::Xoshiro256 &
SeededTest::rng()
{
    if (!rngInitialized_) {
        rng_ = common::Xoshiro256(seed());
        rngInitialized_ = true;
    }
    return rng_;
}

common::Xoshiro256
SeededTest::makeRng(std::uint64_t key) const
{
    return common::Xoshiro256(common::deriveSeed(seed(), {key}));
}

} // namespace harp::test
