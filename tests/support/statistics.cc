#include "support/statistics.hh"

#include <algorithm>
#include <cmath>
#include <stdexcept>

namespace harp::test {

double
chiSquareStatistic(const std::vector<double> &expected,
                   const std::vector<std::uint64_t> &observed)
{
    if (expected.size() != observed.size())
        throw std::invalid_argument(
            "chiSquareStatistic: category count mismatch");
    double statistic = 0.0;
    for (std::size_t i = 0; i < expected.size(); ++i) {
        if (expected[i] <= 0.0) {
            if (observed[i] != 0)
                throw std::invalid_argument(
                    "chiSquareStatistic: observation in a zero-mass "
                    "category");
            continue;
        }
        const double delta =
            static_cast<double>(observed[i]) - expected[i];
        statistic += delta * delta / expected[i];
    }
    return statistic;
}

double
chiSquareCritical999(std::size_t dof)
{
    // Upper 0.1% points of the chi-square distribution.
    static const double kTable[] = {
        10.828, 13.816, 16.266, 18.467, 20.515, 22.458, 24.322, 26.124,
        27.877, 29.588, 31.264, 32.909, 34.528, 36.123, 37.697, 39.252,
    };
    if (dof < 1 || dof > sizeof(kTable) / sizeof(kTable[0]))
        throw std::out_of_range("chiSquareCritical999: dof outside 1..16");
    return kTable[dof - 1];
}

double
ksStatisticUniform(std::vector<double> samples)
{
    if (samples.empty())
        throw std::invalid_argument("ksStatisticUniform: no samples");
    std::sort(samples.begin(), samples.end());
    const double n = static_cast<double>(samples.size());
    double statistic = 0.0;
    for (std::size_t i = 0; i < samples.size(); ++i) {
        const double d_plus =
            static_cast<double>(i + 1) / n - samples[i];
        const double d_minus =
            samples[i] - static_cast<double>(i) / n;
        statistic = std::max({statistic, d_plus, d_minus});
    }
    return statistic;
}

double
ksCritical999(std::size_t n)
{
    // c(alpha) = sqrt(-ln(alpha/2) / 2) with alpha = 0.001.
    const double c = std::sqrt(-std::log(0.0005) / 2.0);
    return c / std::sqrt(static_cast<double>(n));
}

} // namespace harp::test
