/**
 * @file
 * Statistical goodness-of-fit helpers for the fleet test tier.
 *
 * The fleet sampler tests run chi-square and Kolmogorov-Smirnov checks
 * under *fixed* seeds, so they are deterministic: the acceptance
 * thresholds below use alpha = 0.001, making a false failure on the
 * pinned seeds effectively a code change, not noise.
 */

#ifndef HARP_TESTS_SUPPORT_STATISTICS_HH
#define HARP_TESTS_SUPPORT_STATISTICS_HH

#include <cstddef>
#include <cstdint>
#include <vector>

namespace harp::test {

/**
 * Pearson chi-square statistic over matched category vectors.
 * Categories with zero expected mass must have zero observations
 * (checked); they contribute no degrees of freedom.
 * @throws std::invalid_argument on size mismatch or an impossible
 *         observation.
 */
double chiSquareStatistic(const std::vector<double> &expected,
                          const std::vector<std::uint64_t> &observed);

/** Upper critical value of the chi-square distribution at
 *  significance 0.001 for 1..16 degrees of freedom (table lookup).
 *  @throws std::out_of_range outside the table. */
double chiSquareCritical999(std::size_t dof);

/**
 * Two-sided Kolmogorov-Smirnov statistic of @p samples against the
 * Uniform(0,1) distribution (samples are sorted internally).
 * @throws std::invalid_argument when empty.
 */
double ksStatisticUniform(std::vector<double> samples);

/** Asymptotic KS critical value at significance 0.001 for @p n
 *  samples: sqrt(-ln(alpha/2) / 2) / sqrt(n). */
double ksCritical999(std::size_t n);

} // namespace harp::test

#endif // HARP_TESTS_SUPPORT_STATISTICS_HH
