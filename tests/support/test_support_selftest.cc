/**
 * @file
 * Self-test for the tests/support mini-library: seeded fixtures,
 * golden-value hashing, and the property harness applied across all
 * three ECC families. Doubles as usage documentation for future PRs.
 */

#include <gtest/gtest.h>

#include <vector>

#include "ecc/bch_code.hh"
#include "ecc/extended_hamming_code.hh"
#include "ecc/hamming_code.hh"
#include "support/golden.hh"
#include "support/property.hh"
#include "support/seeded_fixture.hh"

namespace harp::test {
namespace {

class SupportSelfTest : public SeededTest
{
};

TEST_F(SupportSelfTest, SeedIsStableWithinATest)
{
    EXPECT_EQ(seed(), currentTestSeed());
    EXPECT_EQ(seed(), seed());
}

TEST_F(SupportSelfTest, ChildStreamsAreIndependent)
{
    common::Xoshiro256 a = makeRng(1);
    common::Xoshiro256 b = makeRng(2);
    // Distinct keys must give distinct streams (64-bit collision aside).
    EXPECT_NE(a(), b());
}

TEST_F(SupportSelfTest, GoldenHashIsOrderSensitive)
{
    const std::vector<std::uint64_t> forward{1, 2, 3};
    const std::vector<std::uint64_t> backward{3, 2, 1};
    EXPECT_NE(goldenOf(forward), goldenOf(backward));
    EXPECT_TRUE(goldenMatches(goldenOf(forward), goldenOf(forward)));
    EXPECT_FALSE(goldenMatches(goldenOf(forward), goldenOf(backward)));
}

TEST_F(SupportSelfTest, GoldenHashCoversBitVectorLength)
{
    // A zero vector of different length must hash differently.
    EXPECT_NE(goldenOf(gf2::BitVector(7)), goldenOf(gf2::BitVector(8)));
}

TEST_F(SupportSelfTest, SubsetAssertionReportsExtraPositions)
{
    const gf2::BitVector small = gf2::BitVector::fromIndices(8, {1, 3});
    const gf2::BitVector big = gf2::BitVector::fromIndices(8, {1, 3, 5});
    EXPECT_TRUE(isSubsetOf(small, big));
    EXPECT_FALSE(isSubsetOf(big, small));
    EXPECT_FALSE(isSubsetOf(small, gf2::BitVector(9)));
}

TEST(SupportProperty, HammingRoundTripAcrossSeeds)
{
    forEachSeed(16, [](std::uint64_t, common::Xoshiro256 &rng) {
        const ecc::HammingCode code = ecc::HammingCode::randomSec(64, rng);
        EXPECT_TRUE(roundTripsCleanly(code, rng));
    });
}

TEST(SupportProperty, ExtendedHammingRoundTripAcrossSeeds)
{
    forEachSeed(16, [](std::uint64_t, common::Xoshiro256 &rng) {
        const ecc::ExtendedHammingCode code =
            ecc::ExtendedHammingCode::randomSecDed(32, rng);
        EXPECT_TRUE(roundTripsCleanly(code, rng));
    });
}

TEST(SupportProperty, BchRoundTripAcrossSeeds)
{
    const ecc::BchDecCode code(64);
    forEachSeed(16, [&code](std::uint64_t, common::Xoshiro256 &rng) {
        EXPECT_TRUE(roundTripsCleanly(code, rng));
    });
}

TEST(SupportProperty, IdentifiedWithinAtRiskNamesProfiler)
{
    const gf2::BitVector identified = gf2::BitVector::fromIndices(4, {0, 2});
    const gf2::BitVector atRisk = gf2::BitVector::fromIndices(4, {0});
    const ::testing::AssertionResult result =
        identifiedWithinAtRisk(identified, atRisk, "HARP-U");
    EXPECT_FALSE(result);
    EXPECT_NE(std::string(result.message()).find("HARP-U"),
              std::string::npos);
}

} // namespace
} // namespace harp::test
