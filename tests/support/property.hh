/**
 * @file
 * Property-test harness: seed-sweep driver plus reusable checkers for
 * the invariants every HARP layer must keep — ECC encode/decode
 * round-trips and profiler soundness (an identified-bit set that only
 * names data positions the profiler actually observed at risk).
 */

#ifndef HARP_TESTS_SUPPORT_PROPERTY_HH
#define HARP_TESTS_SUPPORT_PROPERTY_HH

#include <gtest/gtest.h>

#include <cstdint>
#include <string>

#include "common/rng.hh"
#include "gf2/bit_vector.hh"

namespace harp::test {

/**
 * Run @p fn(seed, rng) for @p count independent seeds derived from
 * @p base. Failures inside @p fn carry a SCOPED_TRACE naming the
 * failing seed, so any property violation is reproducible directly.
 */
template <typename Fn>
void
forEachSeed(std::size_t count, Fn &&fn, std::uint64_t base = 0x48415250ULL)
{
    for (std::size_t i = 0; i < count; ++i) {
        const std::uint64_t seed = common::deriveSeed(base, {i});
        SCOPED_TRACE("property seed " + std::to_string(seed) + " (trial " +
                     std::to_string(i) + ")");
        common::Xoshiro256 rng(seed);
        fn(seed, rng);
    }
}

/** AssertionResult form of "every set bit of a is also set in b". */
::testing::AssertionResult isSubsetOf(const gf2::BitVector &a,
                                      const gf2::BitVector &b);

/**
 * Generic encode/decode round-trip property, valid for any code type
 * with k(), n(), encode(), and decode() returning a result carrying a
 * `.dataword` (HammingCode, ExtendedHammingCode, BchCode):
 *
 *  1. a clean codeword decodes back to its dataword, and
 *  2. a single random codeword-bit error is corrected.
 */
template <typename Code>
::testing::AssertionResult
roundTripsCleanly(const Code &code, common::Xoshiro256 &rng)
{
    const gf2::BitVector dataword = gf2::BitVector::random(code.k(), rng);
    const gf2::BitVector codeword = code.encode(dataword);
    if (codeword.size() != code.n())
        return ::testing::AssertionFailure()
               << "encode produced " << codeword.size() << " bits, expected n="
               << code.n();

    const auto clean = code.decode(codeword);
    if (clean.dataword != dataword)
        return ::testing::AssertionFailure()
               << "clean codeword decoded to " << clean.dataword.toString()
               << ", expected " << dataword.toString();

    gf2::BitVector corrupted = codeword;
    const std::size_t errorPosition = rng.nextBelow(code.n());
    corrupted.flip(errorPosition);
    const auto repaired = code.decode(corrupted);
    if (repaired.dataword != dataword)
        return ::testing::AssertionFailure()
               << "single error at position " << errorPosition
               << " decoded to " << repaired.dataword.toString()
               << ", expected " << dataword.toString();

    return ::testing::AssertionSuccess();
}

/**
 * Profiler soundness over one simulated round: every data-bit position
 * where the post-correction read diverged from the written dataword is
 * a genuine post-correction error, so a profiler that has observed the
 * round must not have identified bits outside @p atRiskMask (the union
 * of positions that can possibly err under the installed fault model).
 */
::testing::AssertionResult
identifiedWithinAtRisk(const gf2::BitVector &identified,
                       const gf2::BitVector &atRiskMask,
                       const std::string &profilerName);

} // namespace harp::test

#endif // HARP_TESTS_SUPPORT_PROPERTY_HH
