/**
 * @file
 * GoogleTest fixture providing per-test deterministic randomness.
 *
 * Every test gets its own seed derived from the test's full name, so
 * adding or reordering tests never perturbs another test's random
 * stream, and a failing test can be reproduced in isolation from its
 * printed seed alone.
 */

#ifndef HARP_TESTS_SUPPORT_SEEDED_FIXTURE_HH
#define HARP_TESTS_SUPPORT_SEEDED_FIXTURE_HH

#include <gtest/gtest.h>

#include <cstdint>

#include "common/rng.hh"

namespace harp::test {

/**
 * Fixture whose rng() is seeded from the current test's "Suite.Name".
 *
 * Derive from it instead of hand-picking Xoshiro256 seed constants in
 * each test body.
 */
class SeededTest : public ::testing::Test
{
  protected:
    /** Deterministic seed for the currently running test. */
    std::uint64_t seed() const;

    /** Lazily constructed generator seeded with seed(). */
    common::Xoshiro256 &rng();

    /** Independent child generator for stream @p key (see deriveSeed). */
    common::Xoshiro256 makeRng(std::uint64_t key) const;

  private:
    bool rngInitialized_ = false;
    common::Xoshiro256 rng_{0};
};

/** Seed derived from the currently running test's full name. */
std::uint64_t currentTestSeed();

} // namespace harp::test

#endif // HARP_TESTS_SUPPORT_SEEDED_FIXTURE_HH
