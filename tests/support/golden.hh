/**
 * @file
 * Golden-value helpers: platform-stable hashing of test outputs so a
 * test can pin a whole result (bit vectors, double series, tables) to
 * one 64-bit constant instead of dozens of element-wise expectations.
 */

#ifndef HARP_TESTS_SUPPORT_GOLDEN_HH
#define HARP_TESTS_SUPPORT_GOLDEN_HH

#include <gtest/gtest.h>

#include <cstdint>
#include <string>
#include <vector>

#include "common/bits.hh"
#include "gf2/bit_vector.hh"

namespace harp::test {

/** FNV-1a offset basis; the seed for all hash chains below (the same
 *  chain common::fnv1a64 continues). */
inline constexpr std::uint64_t kGoldenInit = common::fnv1a64Init;

/** Mix one 64-bit value into a running golden hash. */
std::uint64_t goldenMix(std::uint64_t hash, std::uint64_t value);

/** Mix a byte string into a running golden hash. */
std::uint64_t goldenMix(std::uint64_t hash, const std::string &text);

/** Mix a double into a running golden hash via its bit pattern. */
std::uint64_t goldenMixDouble(std::uint64_t hash, double value);

/** Hash of a bit vector (length and contents). */
std::uint64_t goldenOf(const gf2::BitVector &bits);

/** Hash of a double series, order-sensitive. */
std::uint64_t goldenOf(const std::vector<double> &values);

/** Hash of an integer series, order-sensitive. */
std::uint64_t goldenOf(const std::vector<std::uint64_t> &values);

/**
 * Assertion comparing a computed golden hash to its pinned value,
 * printing both in hex so an intentional change is easy to re-pin.
 */
::testing::AssertionResult goldenMatches(std::uint64_t actual,
                                         std::uint64_t expected);

} // namespace harp::test

#endif // HARP_TESTS_SUPPORT_GOLDEN_HH
