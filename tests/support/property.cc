#include "support/property.hh"

namespace harp::test {

::testing::AssertionResult
isSubsetOf(const gf2::BitVector &a, const gf2::BitVector &b)
{
    if (a.size() != b.size())
        return ::testing::AssertionFailure()
               << "size mismatch: " << a.size() << " vs " << b.size();
    if ((a & b) == a)
        return ::testing::AssertionSuccess();
    gf2::BitVector extra = a;
    extra ^= a & b;
    ::testing::AssertionResult failure = ::testing::AssertionFailure();
    failure << "positions set in the first vector but not the second:";
    extra.forEachSetBit([&failure](std::size_t i) { failure << " " << i; });
    return failure;
}

::testing::AssertionResult
identifiedWithinAtRisk(const gf2::BitVector &identified,
                       const gf2::BitVector &atRiskMask,
                       const std::string &profilerName)
{
    const ::testing::AssertionResult subset =
        isSubsetOf(identified, atRiskMask);
    if (subset)
        return subset;
    return ::testing::AssertionFailure()
           << profilerName
           << " identified bits that no installed fault can produce: "
           << subset.message();
}

} // namespace harp::test
