#include "support/golden.hh"

#include <bit>
#include <iomanip>
#include <sstream>
#include <string_view>

#include "common/bits.hh"

namespace harp::test {
namespace {

std::string
hex(std::uint64_t value)
{
    std::ostringstream out;
    out << "0x" << std::hex << std::uppercase << std::setfill('0')
        << std::setw(16) << value << "ULL";
    return out.str();
}

} // namespace

std::uint64_t
goldenMix(std::uint64_t hash, std::uint64_t value)
{
    // Serialize little-endian-style by hand so the chain is
    // endian-independent, then reuse the shared FNV-1a.
    char bytes[8];
    for (int byte = 0; byte < 8; ++byte)
        bytes[byte] = static_cast<char>((value >> (8 * byte)) & 0xFF);
    return common::fnv1a64(std::string_view(bytes, 8), hash);
}

std::uint64_t
goldenMix(std::uint64_t hash, const std::string &text)
{
    return common::fnv1a64(text, hash);
}

std::uint64_t
goldenMixDouble(std::uint64_t hash, double value)
{
    return goldenMix(hash, std::bit_cast<std::uint64_t>(value));
}

std::uint64_t
goldenOf(const gf2::BitVector &bits)
{
    std::uint64_t hash = goldenMix(kGoldenInit, bits.size());
    for (const std::uint64_t word : bits.words())
        hash = goldenMix(hash, word);
    return hash;
}

std::uint64_t
goldenOf(const std::vector<double> &values)
{
    std::uint64_t hash = goldenMix(kGoldenInit, values.size());
    for (const double v : values)
        hash = goldenMixDouble(hash, v);
    return hash;
}

std::uint64_t
goldenOf(const std::vector<std::uint64_t> &values)
{
    std::uint64_t hash = goldenMix(kGoldenInit, values.size());
    for (const std::uint64_t v : values)
        hash = goldenMix(hash, v);
    return hash;
}

::testing::AssertionResult
goldenMatches(std::uint64_t actual, std::uint64_t expected)
{
    if (actual == expected)
        return ::testing::AssertionSuccess();
    return ::testing::AssertionFailure()
           << "golden mismatch: computed " << hex(actual) << ", pinned "
           << hex(expected)
           << " (if the change is intentional, re-pin the constant)";
}

} // namespace harp::test
