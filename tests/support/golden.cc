#include "support/golden.hh"

#include <bit>
#include <iomanip>
#include <sstream>

namespace harp::test {
namespace {

std::string
hex(std::uint64_t value)
{
    std::ostringstream out;
    out << "0x" << std::hex << std::uppercase << std::setfill('0')
        << std::setw(16) << value << "ULL";
    return out.str();
}

} // namespace

std::uint64_t
goldenMix(std::uint64_t hash, std::uint64_t value)
{
    // FNV-1a, one byte at a time, so the chain is endian-independent.
    for (int byte = 0; byte < 8; ++byte) {
        hash ^= (value >> (8 * byte)) & 0xFF;
        hash *= 0x100000001B3ULL;
    }
    return hash;
}

std::uint64_t
goldenMix(std::uint64_t hash, const std::string &text)
{
    for (const char c : text) {
        hash ^= static_cast<unsigned char>(c);
        hash *= 0x100000001B3ULL;
    }
    return hash;
}

std::uint64_t
goldenMixDouble(std::uint64_t hash, double value)
{
    return goldenMix(hash, std::bit_cast<std::uint64_t>(value));
}

std::uint64_t
goldenOf(const gf2::BitVector &bits)
{
    std::uint64_t hash = goldenMix(kGoldenInit, bits.size());
    for (const std::uint64_t word : bits.words())
        hash = goldenMix(hash, word);
    return hash;
}

std::uint64_t
goldenOf(const std::vector<double> &values)
{
    std::uint64_t hash = goldenMix(kGoldenInit, values.size());
    for (const double v : values)
        hash = goldenMixDouble(hash, v);
    return hash;
}

std::uint64_t
goldenOf(const std::vector<std::uint64_t> &values)
{
    std::uint64_t hash = goldenMix(kGoldenInit, values.size());
    for (const std::uint64_t v : values)
        hash = goldenMix(hash, v);
    return hash;
}

::testing::AssertionResult
goldenMatches(std::uint64_t actual, std::uint64_t expected)
{
    if (actual == expected)
        return ::testing::AssertionSuccess();
    return ::testing::AssertionFailure()
           << "golden mismatch: computed " << hex(actual) << ", pinned "
           << hex(expected)
           << " (if the change is intentional, re-pin the constant)";
}

} // namespace harp::test
