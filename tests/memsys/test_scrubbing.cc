/**
 * @file
 * Tests for ECC scrubbing — the classic reactive-profiling mechanism
 * (HARP section 2.3.2) — on the memory controller.
 */

#include <gtest/gtest.h>

#include <array>

#include "common/rng.hh"
#include "memsys/memory_controller.hh"

namespace harp::mem {
namespace {

struct Rig
{
    ecc::HammingCode code;
    MemoryChip chip;
    MemoryController controller;

    explicit Rig(std::uint64_t seed = 1, std::size_t words = 2)
        : code([&] {
              common::Xoshiro256 rng(seed);
              return ecc::HammingCode::randomSec(64, rng);
          }()),
          chip(code, words),
          controller(chip, [&] {
              common::Xoshiro256 rng(seed + 1);
              return ecc::ExtendedHammingCode::randomSecDed(64, rng);
          }())
    {
    }
};

TEST(Scrubbing, CleanWordNeedsNoWriteback)
{
    Rig rig;
    common::Xoshiro256 rng(2);
    const gf2::BitVector d = gf2::BitVector::random(64, rng);
    rig.controller.write(0, d);
    const ControllerReadResult r = rig.controller.scrub(0);
    EXPECT_FALSE(r.corrupt);
    EXPECT_EQ(r.dataword, d);
    EXPECT_EQ(rig.controller.stats().scrubs, 1u);
    EXPECT_EQ(rig.controller.stats().scrubWritebacks, 0u);
}

TEST(Scrubbing, WritebackClearsAccumulatedDataErrors)
{
    Rig rig;
    common::Xoshiro256 rng(3);
    const gf2::BitVector d = gf2::BitVector::random(64, rng);
    rig.controller.write(0, d);
    // One raw data error: on-die ECC corrects it on read; scrubbing must
    // also rewrite the stored codeword so the error cannot combine with
    // future ones.
    gf2::BitVector mask(71);
    mask.set(33, true);
    rig.chip.corrupt(0, mask);

    const ControllerReadResult r = rig.controller.scrub(0);
    EXPECT_FALSE(r.corrupt);
    EXPECT_EQ(r.dataword, d);
    EXPECT_EQ(rig.controller.stats().scrubWritebacks, 1u);
    // The stored codeword is clean again.
    EXPECT_EQ(rig.chip.storedCodeword(0), rig.code.encode(d));
}

TEST(Scrubbing, ScrubDoesNotCountAsApplicationWrite)
{
    Rig rig;
    common::Xoshiro256 rng(4);
    const gf2::BitVector d = gf2::BitVector::random(64, rng);
    rig.controller.write(0, d);
    gf2::BitVector mask(71);
    mask.set(5, true);
    rig.chip.corrupt(0, mask);
    rig.controller.scrub(0);
    EXPECT_EQ(rig.controller.stats().writes, 1u);
}

TEST(Scrubbing, ParityOnlyErrorsAreInvisibleToScrub)
{
    // The bypass path hides parity bits, so a parity-cell error neither
    // triggers a writeback nor harms data by itself.
    Rig rig;
    common::Xoshiro256 rng(5);
    const gf2::BitVector d = gf2::BitVector::random(64, rng);
    rig.controller.write(0, d);
    gf2::BitVector mask(71);
    mask.set(67, true); // parity cell
    rig.chip.corrupt(0, mask);
    const ControllerReadResult r = rig.controller.scrub(0);
    EXPECT_FALSE(r.corrupt);
    EXPECT_EQ(r.dataword, d);
    EXPECT_EQ(rig.controller.stats().scrubWritebacks, 0u);
    // The parity error persists in storage (on-die ECC opacity).
    EXPECT_NE(rig.chip.storedCodeword(0), rig.code.encode(d));
}

TEST(Scrubbing, ScrubVersusProfileDrivenRepair)
{
    // The paper's motivation in miniature. Two rarely-failing at-risk
    // data cells (p = 0.02/window). Three system configurations:
    //
    //  (a) no scrubbing: lone raw errors persist across windows and
    //      eventually coincide — the word ends up permanently
    //      uncorrectable;
    //  (b) scrubbing only: cross-window accumulation is cleaned, but
    //      solo failures are corrected *inside the chip* (invisible to
    //      the controller), so the cells are never learned or repaired
    //      and an eventual same-window double failure still sticks;
    //  (c) scrubbing + HARP active profile: the direct-at-risk cells are
    //      profiled (bypass path) and repaired, so even coincident
    //      failures are absorbed — zero corrupt reads forever.
    enum class Mode { NoScrub, ScrubOnly, ScrubWithProfile };
    constexpr std::size_t num_words = 30;
    constexpr int windows = 400;
    std::array<std::size_t, 3> danger_windows{};
    std::array<std::size_t, 3> corrupt_reads{};

    for (const Mode mode : {Mode::NoScrub, Mode::ScrubOnly,
                            Mode::ScrubWithProfile}) {
        const std::size_t idx = static_cast<std::size_t>(mode);
        for (std::size_t word_seed = 0; word_seed < num_words;
             ++word_seed) {
            Rig rig(6);
            common::Xoshiro256 rng(7 + word_seed);
            const gf2::BitVector d = gf2::BitVector::random(64, rng);
            std::vector<fault::CellFault> cells;
            for (std::size_t pos = 0; pos < 64 && cells.size() < 2;
                 ++pos)
                if (d.get(pos))
                    cells.push_back({pos, 0.02});
            ASSERT_EQ(cells.size(), 2u);
            rig.chip.setFaultModel(0, fault::WordFaultModel(71, cells));

            if (mode == Mode::ScrubWithProfile) {
                // Outcome of HARP's active phase: both cells profiled.
                for (const fault::CellFault &cell : cells)
                    rig.controller.profile().markAtRisk(0,
                                                        cell.position);
            }
            rig.controller.write(0, d);

            common::Xoshiro256 retention(1000 + word_seed);
            for (int window = 0; window < windows; ++window) {
                rig.chip.retentionTick(0, retention);
                gf2::BitVector raw = rig.controller.readRaw(0);
                raw ^= d;
                if (raw.popcount() >= 2)
                    ++danger_windows[idx]; // SEC on-die code overwhelmed
                if (mode != Mode::NoScrub) {
                    const ControllerReadResult r =
                        rig.controller.scrub(0);
                    if (r.corrupt || !(r.dataword == d))
                        ++corrupt_reads[idx];
                }
            }
        }
    }

    // (a) most words accumulate into the danger state and stay there.
    EXPECT_GT(danger_windows[0], num_words * windows / 2);
    // (b) scrubbing cuts danger-state time by a wide margin (only the
    // rare same-window coincidence can stick).
    EXPECT_LT(danger_windows[1] * 2, danger_windows[0]);
    // (c) profile-driven repair absorbs everything: no corrupt reads,
    // even though raw double-failures still physically occur.
    EXPECT_EQ(corrupt_reads[2], 0u);
}

TEST(Scrubbing, ScrubAllCoversEveryWord)
{
    Rig rig(9, 4);
    common::Xoshiro256 rng(10);
    for (std::size_t w = 0; w < 4; ++w)
        rig.controller.write(w, gf2::BitVector::random(64, rng));
    for (std::size_t w = 0; w < 4; ++w) {
        gf2::BitVector mask(71);
        mask.set(w * 3, true);
        rig.chip.corrupt(w, mask);
    }
    EXPECT_EQ(rig.controller.scrubAll(), 0u);
    EXPECT_EQ(rig.controller.stats().scrubs, 4u);
    EXPECT_EQ(rig.controller.stats().scrubWritebacks, 4u);
}

} // namespace
} // namespace harp::mem
