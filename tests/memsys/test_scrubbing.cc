/**
 * @file
 * Tests for ECC scrubbing — the classic reactive-profiling mechanism
 * (HARP section 2.3.2) — on the memory controller.
 */

#include <gtest/gtest.h>

#include <array>

#include "common/rng.hh"
#include "memsys/memory_controller.hh"

namespace harp::mem {
namespace {

struct Rig
{
    ecc::HammingCode code;
    MemoryChip chip;
    MemoryController controller;

    explicit Rig(std::uint64_t seed = 1, std::size_t words = 2)
        : code([&] {
              common::Xoshiro256 rng(seed);
              return ecc::HammingCode::randomSec(64, rng);
          }()),
          chip(code, words),
          controller(chip, [&] {
              common::Xoshiro256 rng(seed + 1);
              return ecc::ExtendedHammingCode::randomSecDed(64, rng);
          }())
    {
    }
};

TEST(Scrubbing, CleanWordNeedsNoWriteback)
{
    Rig rig;
    common::Xoshiro256 rng(2);
    const gf2::BitVector d = gf2::BitVector::random(64, rng);
    rig.controller.write(0, d);
    const ControllerReadResult r = rig.controller.scrub(0);
    EXPECT_FALSE(r.corrupt);
    EXPECT_EQ(r.dataword, d);
    EXPECT_EQ(rig.controller.stats().scrubs, 1u);
    EXPECT_EQ(rig.controller.stats().scrubWritebacks, 0u);
}

TEST(Scrubbing, WritebackClearsAccumulatedDataErrors)
{
    Rig rig;
    common::Xoshiro256 rng(3);
    const gf2::BitVector d = gf2::BitVector::random(64, rng);
    rig.controller.write(0, d);
    // One raw data error: on-die ECC corrects it on read; scrubbing must
    // also rewrite the stored codeword so the error cannot combine with
    // future ones.
    gf2::BitVector mask(71);
    mask.set(33, true);
    rig.chip.corrupt(0, mask);

    const ControllerReadResult r = rig.controller.scrub(0);
    EXPECT_FALSE(r.corrupt);
    EXPECT_EQ(r.dataword, d);
    EXPECT_EQ(rig.controller.stats().scrubWritebacks, 1u);
    // The stored codeword is clean again.
    EXPECT_EQ(rig.chip.storedCodeword(0), rig.code.encode(d));
}

TEST(Scrubbing, ScrubDoesNotCountAsApplicationWrite)
{
    Rig rig;
    common::Xoshiro256 rng(4);
    const gf2::BitVector d = gf2::BitVector::random(64, rng);
    rig.controller.write(0, d);
    gf2::BitVector mask(71);
    mask.set(5, true);
    rig.chip.corrupt(0, mask);
    rig.controller.scrub(0);
    EXPECT_EQ(rig.controller.stats().writes, 1u);
}

TEST(Scrubbing, ParityOnlyErrorsAreInvisibleToScrub)
{
    // The bypass path hides parity bits, so a parity-cell error neither
    // triggers a writeback nor harms data by itself.
    Rig rig;
    common::Xoshiro256 rng(5);
    const gf2::BitVector d = gf2::BitVector::random(64, rng);
    rig.controller.write(0, d);
    gf2::BitVector mask(71);
    mask.set(67, true); // parity cell
    rig.chip.corrupt(0, mask);
    const ControllerReadResult r = rig.controller.scrub(0);
    EXPECT_FALSE(r.corrupt);
    EXPECT_EQ(r.dataword, d);
    EXPECT_EQ(rig.controller.stats().scrubWritebacks, 0u);
    // The parity error persists in storage (on-die ECC opacity).
    EXPECT_NE(rig.chip.storedCodeword(0), rig.code.encode(d));
}

TEST(Scrubbing, ScrubVersusProfileDrivenRepair)
{
    // The paper's motivation in miniature. Two rarely-failing at-risk
    // data cells (p = 0.02/window). Three system configurations:
    //
    //  (a) no scrubbing: lone raw errors persist across windows and
    //      eventually coincide — the word ends up permanently
    //      uncorrectable;
    //  (b) scrubbing only: cross-window accumulation is cleaned, but
    //      solo failures are corrected *inside the chip* (invisible to
    //      the controller), so the cells are never learned or repaired
    //      and an eventual same-window double failure still sticks;
    //  (c) scrubbing + HARP active profile: the direct-at-risk cells are
    //      profiled (bypass path) and repaired, so even coincident
    //      failures are absorbed — zero corrupt reads forever.
    enum class Mode { NoScrub, ScrubOnly, ScrubWithProfile };
    constexpr std::size_t num_words = 30;
    constexpr int windows = 400;
    std::array<std::size_t, 3> danger_windows{};
    std::array<std::size_t, 3> corrupt_reads{};

    for (const Mode mode : {Mode::NoScrub, Mode::ScrubOnly,
                            Mode::ScrubWithProfile}) {
        const std::size_t idx = static_cast<std::size_t>(mode);
        for (std::size_t word_seed = 0; word_seed < num_words;
             ++word_seed) {
            Rig rig(6);
            common::Xoshiro256 rng(7 + word_seed);
            const gf2::BitVector d = gf2::BitVector::random(64, rng);
            std::vector<fault::CellFault> cells;
            for (std::size_t pos = 0; pos < 64 && cells.size() < 2;
                 ++pos)
                if (d.get(pos))
                    cells.push_back({pos, 0.02});
            ASSERT_EQ(cells.size(), 2u);
            rig.chip.setFaultModel(0, fault::WordFaultModel(71, cells));

            if (mode == Mode::ScrubWithProfile) {
                // Outcome of HARP's active phase: both cells profiled.
                for (const fault::CellFault &cell : cells)
                    rig.controller.profile().markAtRisk(0,
                                                        cell.position);
            }
            rig.controller.write(0, d);

            common::Xoshiro256 retention(1000 + word_seed);
            for (int window = 0; window < windows; ++window) {
                rig.chip.retentionTick(0, retention);
                gf2::BitVector raw = rig.controller.readRaw(0);
                raw ^= d;
                if (raw.popcount() >= 2)
                    ++danger_windows[idx]; // SEC on-die code overwhelmed
                if (mode != Mode::NoScrub) {
                    const ControllerReadResult r =
                        rig.controller.scrub(0);
                    if (r.corrupt || !(r.dataword == d))
                        ++corrupt_reads[idx];
                }
            }
        }
    }

    // (a) most words accumulate into the danger state and stay there.
    EXPECT_GT(danger_windows[0], num_words * windows / 2);
    // (b) scrubbing cuts danger-state time by a wide margin (only the
    // rare same-window coincidence can stick).
    EXPECT_LT(danger_windows[1] * 2, danger_windows[0]);
    // (c) profile-driven repair absorbs everything: no corrupt reads,
    // even though raw double-failures still physically occur.
    EXPECT_EQ(corrupt_reads[2], 0u);
}

/** Two data positions whose combined syndrome maps to parity or
 *  nowhere: the on-die decode leaves both standing, and the secondary
 *  SECDED sees a detected-but-uncorrectable double error. */
std::pair<std::size_t, std::size_t>
uncorrectableDataPair(const ecc::HammingCode &code)
{
    for (std::size_t i = 0; i < 64; ++i) {
        for (std::size_t j = i + 1; j < 64; ++j) {
            const std::uint32_t s =
                code.codewordColumn(i) ^ code.codewordColumn(j);
            const auto target = code.syndromeToPosition(s);
            if (!target || *target >= 64)
                return {i, j};
        }
    }
    ADD_FAILURE() << "no uncorrectable data pair in this code";
    return {0, 1};
}

TEST(Scrubbing, FaultArrivingMidScrubPassWaitsForTheNextPass)
{
    // A scrub pass visits words in order. A fault that lands on a word
    // the pass has *already* visited stays in storage until the next
    // pass comes around — the boundary case a fleet scrub interval has
    // to price in.
    Rig rig(11, 2);
    common::Xoshiro256 rng(12);
    const gf2::BitVector d0 = gf2::BitVector::random(64, rng);
    const gf2::BitVector d1 = gf2::BitVector::random(64, rng);
    rig.controller.write(0, d0);
    rig.controller.write(1, d1);

    rig.controller.scrub(0); // pass visits word 0...
    gf2::BitVector mask(71);
    mask.set(17, true); // ...fault lands just behind the scrub pointer
    rig.chip.corrupt(0, mask);
    rig.controller.scrub(1); // ...pass finishes without revisiting

    // The error survived the pass in storage (reads still correct it).
    EXPECT_EQ(rig.controller.stats().scrubWritebacks, 0u);
    EXPECT_NE(rig.chip.storedCodeword(0), rig.code.encode(d0));
    EXPECT_EQ(rig.controller.read(0).dataword, d0);

    // The *next* pass cleans it up.
    EXPECT_EQ(rig.controller.scrubAll(), 0u);
    EXPECT_EQ(rig.controller.stats().scrubWritebacks, 1u);
    EXPECT_EQ(rig.chip.storedCodeword(0), rig.code.encode(d0));
}

TEST(Scrubbing, ScrubTimingDecidesWhetherTwoFaultsCombine)
{
    // The same two single-bit faults in the same word: benign when a
    // scrub lands between them, uncorrectable when both arrive within
    // one scrub window.
    const auto [a, b] = uncorrectableDataPair(Rig(13).code);
    for (const bool scrub_between : {true, false}) {
        Rig rig(13);
        common::Xoshiro256 rng(14);
        const gf2::BitVector d = gf2::BitVector::random(64, rng);
        rig.controller.write(0, d);

        gf2::BitVector first(71), second(71);
        first.set(a, true);
        second.set(b, true);
        rig.chip.corrupt(0, first);
        if (scrub_between) {
            EXPECT_FALSE(rig.controller.scrub(0).corrupt);
        }
        rig.chip.corrupt(0, second);

        const ControllerReadResult r = rig.controller.read(0);
        if (scrub_between) {
            EXPECT_FALSE(r.corrupt);
            EXPECT_EQ(r.dataword, d);
            EXPECT_EQ(rig.controller.stats().uncorrectableEvents, 0u);
        } else {
            EXPECT_TRUE(r.corrupt);
            EXPECT_EQ(rig.controller.stats().uncorrectableEvents, 1u);
        }
    }
}

TEST(Scrubbing, UnscrubbableWordIsNotWrittenBack)
{
    // When the full correction path cannot produce clean data, scrub
    // must not launder the corruption into a writeback: the stored
    // word stays as-is and the word is reported corrupt.
    Rig rig(15);
    const auto [a, b] = uncorrectableDataPair(rig.code);
    common::Xoshiro256 rng(16);
    const gf2::BitVector d = gf2::BitVector::random(64, rng);
    rig.controller.write(0, d);
    rig.controller.write(1, d);
    gf2::BitVector mask(71);
    mask.set(a, true);
    mask.set(b, true);
    rig.chip.corrupt(0, mask);
    const gf2::BitVector stored_before = rig.chip.storedCodeword(0);

    EXPECT_EQ(rig.controller.scrubAll(), 1u);
    EXPECT_EQ(rig.controller.stats().scrubWritebacks, 0u);
    EXPECT_EQ(rig.chip.storedCodeword(0), stored_before);
    // And it stays corrupt on every later pass: scrubbing cannot fix
    // a word that has already exceeded the correction capability.
    EXPECT_EQ(rig.controller.scrubAll(), 1u);
}

TEST(Scrubbing, ScrubAllCoversEveryWord)
{
    Rig rig(9, 4);
    common::Xoshiro256 rng(10);
    for (std::size_t w = 0; w < 4; ++w)
        rig.controller.write(w, gf2::BitVector::random(64, rng));
    for (std::size_t w = 0; w < 4; ++w) {
        gf2::BitVector mask(71);
        mask.set(w * 3, true);
        rig.chip.corrupt(w, mask);
    }
    EXPECT_EQ(rig.controller.scrubAll(), 0u);
    EXPECT_EQ(rig.controller.stats().scrubs, 4u);
    EXPECT_EQ(rig.controller.stats().scrubWritebacks, 4u);
}

} // namespace
} // namespace harp::mem
