/**
 * @file
 * Unit and integration tests for the memory controller: repair + reactive
 * secondary-ECC profiling on the read path (HARP Fig. 5).
 */

#include <gtest/gtest.h>

#include "common/rng.hh"
#include "memsys/memory_controller.hh"

namespace harp::mem {
namespace {

struct Rig
{
    ecc::HammingCode code;
    MemoryChip chip;
    MemoryController controller;

    explicit Rig(std::uint64_t seed = 1, bool secondary = true)
        : code([&] {
              common::Xoshiro256 rng(seed);
              return ecc::HammingCode::randomSec(64, rng);
          }()),
          chip(code, 4),
          controller(chip, secondary
                               ? std::optional<ecc::ExtendedHammingCode>(
                                     [&] {
                                         common::Xoshiro256 rng(seed + 1);
                                         return ecc::ExtendedHammingCode::
                                             randomSecDed(64, rng);
                                     }())
                               : std::nullopt)
    {
    }
};

TEST(MemoryController, CleanWriteReadRoundTrip)
{
    Rig rig;
    common::Xoshiro256 rng(2);
    const gf2::BitVector d = gf2::BitVector::random(64, rng);
    rig.controller.write(0, d);
    const ControllerReadResult r = rig.controller.read(0);
    EXPECT_EQ(r.dataword, d);
    EXPECT_FALSE(r.corrupt);
    EXPECT_FALSE(r.newlyProfiledBit.has_value());
    EXPECT_EQ(rig.controller.stats().reads, 1u);
    EXPECT_EQ(rig.controller.stats().writes, 1u);
}

TEST(MemoryController, OnDieEccAbsorbsSingleRawError)
{
    Rig rig;
    common::Xoshiro256 rng(3);
    const gf2::BitVector d = gf2::BitVector::random(64, rng);
    rig.controller.write(0, d);
    gf2::BitVector mask(71);
    mask.set(20, true);
    rig.chip.corrupt(0, mask);
    const ControllerReadResult r = rig.controller.read(0);
    EXPECT_EQ(r.dataword, d);
    EXPECT_FALSE(r.corrupt);
    // On-die ECC corrected it before the controller ever saw an error.
    EXPECT_EQ(rig.controller.stats().secondaryCorrections, 0u);
}

TEST(MemoryController, ReactiveProfilingIdentifiesIndirectError)
{
    // Find a double raw error whose decode miscorrects a third data bit;
    // the secondary ECC must correct it and record the bit in the profile.
    Rig rig;
    common::Xoshiro256 rng(4);
    const gf2::BitVector d = gf2::BitVector::random(64, rng);

    std::optional<std::pair<std::size_t, std::size_t>> pair;
    std::size_t miscorrected = 0;
    for (std::size_t i = 0; i < 71 && !pair; ++i) {
        for (std::size_t j = i + 1; j < 71 && !pair; ++j) {
            const std::uint32_t s = rig.code.codewordColumn(i) ^
                                    rig.code.codewordColumn(j);
            const auto target = rig.code.syndromeToPosition(s);
            // Want both raw errors in parity so the *only* data-visible
            // error is the miscorrection itself (a pure indirect error).
            if (target && *target < 64 && i >= 64 && j >= 64) {
                pair = {i, j};
                miscorrected = *target;
            }
        }
    }
    ASSERT_TRUE(pair.has_value()) << "no parity-parity miscorrection in "
                                     "this code; seed choice invalid";

    rig.controller.write(0, d);
    gf2::BitVector mask(71);
    mask.set(pair->first, true);
    mask.set(pair->second, true);
    rig.chip.corrupt(0, mask);

    const ControllerReadResult r = rig.controller.read(0);
    EXPECT_EQ(r.dataword, d) << "secondary ECC must undo the miscorrection";
    EXPECT_FALSE(r.corrupt);
    ASSERT_TRUE(r.newlyProfiledBit.has_value());
    EXPECT_EQ(*r.newlyProfiledBit, miscorrected);
    EXPECT_TRUE(rig.controller.profile().isAtRisk(0, miscorrected));
    EXPECT_EQ(rig.controller.stats().reactiveIdentifications, 1u);
    // The same bit failing again is corrected but not re-identified.
    rig.controller.write(0, d);
    rig.chip.corrupt(0, mask);
    const ControllerReadResult r2 = rig.controller.read(0);
    EXPECT_FALSE(r2.newlyProfiledBit.has_value());
    EXPECT_EQ(rig.controller.stats().reactiveIdentifications, 1u);
}

TEST(MemoryController, RepairShieldsSecondaryFromProfiledBits)
{
    Rig rig;
    common::Xoshiro256 rng(5);
    const gf2::BitVector d = gf2::BitVector::random(64, rng);
    // Pre-profile data bit 12, then write (capturing the spare value).
    rig.controller.profile().markAtRisk(0, 12);
    rig.controller.write(0, d);

    // Two raw data errors: one at the profiled bit and one elsewhere.
    // Without repair the secondary SECDED would see a double error; with
    // repair it sees a single (safe) one.
    gf2::BitVector mask(71);
    mask.set(12, true);
    // Find a companion data position whose pair syndrome maps nowhere or
    // to parity, so post-correction errors are exactly {12, companion}.
    std::size_t companion = 71;
    for (std::size_t j = 0; j < 64; ++j) {
        if (j == 12)
            continue;
        const std::uint32_t s = rig.code.codewordColumn(12) ^
                                rig.code.codewordColumn(j);
        const auto target = rig.code.syndromeToPosition(s);
        if (!target || *target >= 64) {
            companion = j;
            break;
        }
    }
    ASSERT_LT(companion, 71u);
    mask.set(companion, true);
    rig.chip.corrupt(0, mask);

    const ControllerReadResult r = rig.controller.read(0);
    EXPECT_FALSE(r.corrupt);
    EXPECT_EQ(r.dataword, d);
    EXPECT_EQ(rig.controller.stats().repairedBits, 1u);
    EXPECT_EQ(rig.controller.stats().secondaryCorrections, 1u);
}

TEST(MemoryController, UncorrectableDoubleErrorFlagged)
{
    Rig rig;
    common::Xoshiro256 rng(6);
    const gf2::BitVector d = gf2::BitVector::random(64, rng);
    rig.controller.write(0, d);

    // Two data errors whose syndrome maps to parity or nowhere: the
    // post-correction word carries both, exceeding SECDED correction.
    std::size_t a = 71, b = 71;
    for (std::size_t i = 0; i < 64 && a == 71; ++i) {
        for (std::size_t j = i + 1; j < 64; ++j) {
            const std::uint32_t s = rig.code.codewordColumn(i) ^
                                    rig.code.codewordColumn(j);
            const auto target = rig.code.syndromeToPosition(s);
            if (!target || *target >= 64) {
                a = i;
                b = j;
                break;
            }
        }
    }
    ASSERT_LT(a, 71u);
    gf2::BitVector mask(71);
    mask.set(a, true);
    mask.set(b, true);
    rig.chip.corrupt(0, mask);

    const ControllerReadResult r = rig.controller.read(0);
    EXPECT_TRUE(r.corrupt);
    EXPECT_EQ(rig.controller.stats().uncorrectableEvents, 1u);
}

TEST(MemoryController, DetectedUncorrectableNeitherProfilesNorRepairs)
{
    // A detected-but-uncorrectable read must be reported and *only*
    // reported: no reactive identification (SECDED cannot localize a
    // double error), no profile growth, no spare allocation — and the
    // event recurs on every read while the corruption persists.
    Rig rig(10);
    common::Xoshiro256 rng(11);
    const gf2::BitVector d = gf2::BitVector::random(64, rng);
    rig.controller.write(0, d);

    std::size_t a = 71, b = 71;
    for (std::size_t i = 0; i < 64 && a == 71; ++i) {
        for (std::size_t j = i + 1; j < 64; ++j) {
            const std::uint32_t s = rig.code.codewordColumn(i) ^
                                    rig.code.codewordColumn(j);
            const auto target = rig.code.syndromeToPosition(s);
            if (!target || *target >= 64) {
                a = i;
                b = j;
                break;
            }
        }
    }
    ASSERT_LT(a, 71u);
    gf2::BitVector mask(71);
    mask.set(a, true);
    mask.set(b, true);
    rig.chip.corrupt(0, mask);

    for (std::size_t attempt = 1; attempt <= 3; ++attempt) {
        const ControllerReadResult r = rig.controller.read(0);
        EXPECT_TRUE(r.corrupt);
        EXPECT_NE(r.dataword, d);
        EXPECT_FALSE(r.newlyProfiledBit.has_value());
        EXPECT_EQ(rig.controller.stats().uncorrectableEvents, attempt);
    }
    EXPECT_EQ(rig.controller.stats().reactiveIdentifications, 0u);
    EXPECT_EQ(rig.controller.profile().totalAtRisk(), 0u);
    EXPECT_EQ(rig.controller.repairMechanism().spareBitsUsed(), 0u);
    EXPECT_EQ(rig.controller.stats().secondaryCorrections, 0u);

    // An application rewrite clears the stored corruption.
    rig.controller.write(0, d);
    const ControllerReadResult clean = rig.controller.read(0);
    EXPECT_FALSE(clean.corrupt);
    EXPECT_EQ(clean.dataword, d);
}

TEST(MemoryController, ZeroRepairCapacityExposesProfiledBitToSecondary)
{
    // With the spare budget at zero, a profiled bit's error is no
    // longer absorbed by repair; the secondary SECDED has to correct
    // it on the read path instead.
    Rig rig(12);
    rig.controller.profile().markAtRisk(0, 12);
    rig.controller.setRepairCapacity(0);
    common::Xoshiro256 rng(13);
    const gf2::BitVector d = gf2::BitVector::random(64, rng);
    rig.controller.write(0, d);

    EXPECT_TRUE(rig.controller.repairMechanism().exhausted());
    EXPECT_EQ(rig.controller.repairMechanism().capacity(), 0u);
    EXPECT_EQ(rig.controller.repairMechanism().droppedAllocations(), 1u);
    EXPECT_EQ(rig.controller.repairMechanism().spareBitsUsed(), 0u);

    gf2::BitVector mask(71);
    mask.set(12, true);
    // A lone parity companion keeps the post-correction error single:
    // find one whose pair syndrome maps nowhere or to parity.
    std::size_t companion = 71;
    for (std::size_t j = 0; j < 64; ++j) {
        if (j == 12)
            continue;
        const std::uint32_t s = rig.code.codewordColumn(12) ^
                                rig.code.codewordColumn(j);
        const auto target = rig.code.syndromeToPosition(s);
        if (!target || *target >= 64) {
            companion = j;
            break;
        }
    }
    ASSERT_LT(companion, 71u);
    mask.set(companion, true);
    rig.chip.corrupt(0, mask);

    // Same construction as RepairShieldsSecondaryFromProfiledBits, but
    // the shield is gone: both errors reach the secondary SECDED and
    // the word is uncorrectable.
    const ControllerReadResult r = rig.controller.read(0);
    EXPECT_TRUE(r.corrupt);
    EXPECT_EQ(rig.controller.stats().repairedBits, 0u);
    EXPECT_EQ(rig.controller.stats().uncorrectableEvents, 1u);
}

TEST(MemoryController, WithoutSecondaryEccErrorsPassThrough)
{
    Rig rig(7, /*secondary=*/false);
    EXPECT_FALSE(rig.controller.hasSecondaryEcc());
    common::Xoshiro256 rng(8);
    const gf2::BitVector d = gf2::BitVector::random(64, rng);
    rig.controller.write(0, d);

    // Same double-data-error construction as above.
    std::size_t a = 71, b = 71;
    for (std::size_t i = 0; i < 64 && a == 71; ++i) {
        for (std::size_t j = i + 1; j < 64; ++j) {
            const std::uint32_t s = rig.code.codewordColumn(i) ^
                                    rig.code.codewordColumn(j);
            const auto target = rig.code.syndromeToPosition(s);
            if (!target || *target >= 64) {
                a = i;
                b = j;
                break;
            }
        }
    }
    ASSERT_LT(a, 71u);
    gf2::BitVector mask(71);
    mask.set(a, true);
    mask.set(b, true);
    rig.chip.corrupt(0, mask);

    const ControllerReadResult r = rig.controller.read(0);
    EXPECT_NE(r.dataword, d); // errors reach the CPU unchecked
    EXPECT_FALSE(r.corrupt);  // and unreported: no secondary ECC
}

TEST(MemoryController, ReadRawUsesBypassPath)
{
    Rig rig;
    common::Xoshiro256 rng(9);
    const gf2::BitVector d = gf2::BitVector::random(64, rng);
    rig.controller.write(0, d);
    gf2::BitVector mask(71);
    mask.set(30, true);
    rig.chip.corrupt(0, mask);
    gf2::BitVector expected = d;
    expected.flip(30);
    EXPECT_EQ(rig.controller.readRaw(0), expected);
}

} // namespace
} // namespace harp::mem
