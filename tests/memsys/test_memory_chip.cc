/**
 * @file
 * Unit tests for the simulated memory chip: on-die ECC read/write paths,
 * the decode-bypass path, and retention-error injection.
 */

#include <gtest/gtest.h>

#include "common/rng.hh"
#include "memsys/memory_chip.hh"

namespace harp::mem {
namespace {

ecc::HammingCode
makeCode(std::uint64_t seed = 1)
{
    common::Xoshiro256 rng(seed);
    return ecc::HammingCode::randomSec(64, rng);
}

TEST(MemoryChip, Geometry)
{
    MemoryChip chip(makeCode(), 8);
    EXPECT_EQ(chip.numWords(), 8u);
    EXPECT_EQ(chip.datawordBits(), 64u);
    EXPECT_EQ(chip.codewordBits(), 71u);
}

TEST(MemoryChip, WriteReadRoundTrip)
{
    MemoryChip chip(makeCode(), 4);
    common::Xoshiro256 rng(2);
    for (std::size_t w = 0; w < chip.numWords(); ++w) {
        const gf2::BitVector d = gf2::BitVector::random(64, rng);
        chip.write(w, d);
        EXPECT_EQ(chip.read(w).dataword, d);
        EXPECT_EQ(chip.readRaw(w), d);
    }
}

TEST(MemoryChip, RawReadExposesUncorrectedErrors)
{
    MemoryChip chip(makeCode(), 1);
    common::Xoshiro256 rng(3);
    const gf2::BitVector d = gf2::BitVector::random(64, rng);
    chip.write(0, d);

    // Single data-bit corruption: normal read corrects it, raw read does
    // not — exactly the difference HARP's active phase exploits.
    gf2::BitVector mask(71);
    mask.set(10, true);
    chip.corrupt(0, mask);

    EXPECT_EQ(chip.read(0).dataword, d);
    gf2::BitVector expected_raw = d;
    expected_raw.flip(10);
    EXPECT_EQ(chip.readRaw(0), expected_raw);
}

TEST(MemoryChip, RawReadHidesParityBits)
{
    MemoryChip chip(makeCode(), 1);
    common::Xoshiro256 rng(4);
    const gf2::BitVector d = gf2::BitVector::random(64, rng);
    chip.write(0, d);
    // Corrupt only a parity cell: the raw (data-only) view is unchanged.
    gf2::BitVector mask(71);
    mask.set(68, true);
    chip.corrupt(0, mask);
    EXPECT_EQ(chip.readRaw(0), d);
    EXPECT_EQ(chip.readRaw(0).size(), 64u);
}

TEST(MemoryChip, ErrorsPersistUntilRewrite)
{
    MemoryChip chip(makeCode(), 1);
    common::Xoshiro256 rng(5);
    const gf2::BitVector d = gf2::BitVector::random(64, rng);
    chip.write(0, d);
    gf2::BitVector mask(71);
    mask.set(0, true);
    mask.set(1, true);
    chip.corrupt(0, mask);
    // Two raw errors stay visible across reads (reads are non-destructive).
    EXPECT_EQ(chip.readRaw(0), chip.readRaw(0));
    EXPECT_NE(chip.readRaw(0), d);
    // Rewriting clears them.
    chip.write(0, d);
    EXPECT_EQ(chip.readRaw(0), d);
}

TEST(MemoryChip, RetentionTickHonoursFaultModel)
{
    MemoryChip chip(makeCode(), 1);
    common::Xoshiro256 rng(6);
    gf2::BitVector d(64);
    d.fill(true); // every data cell charged
    chip.write(0, d);

    chip.setFaultModel(0, fault::WordFaultModel(71, {{7, 1.0}}));
    EXPECT_EQ(chip.retentionTick(0, rng), 1u);
    EXPECT_FALSE(chip.readRaw(0).get(7));
    // A second tick cannot flip the (now discharged) true-cell again.
    EXPECT_EQ(chip.retentionTick(0, rng), 0u);
}

TEST(MemoryChip, RetentionWithNoFaultModelIsNoop)
{
    MemoryChip chip(makeCode(), 2);
    common::Xoshiro256 rng(7);
    const gf2::BitVector d = gf2::BitVector::random(64, rng);
    chip.write(1, d);
    EXPECT_EQ(chip.retentionTick(1, rng), 0u);
    EXPECT_EQ(chip.readRaw(1), d);
}

TEST(MemoryChip, SetFaultModelValidatesSize)
{
    MemoryChip chip(makeCode(), 1);
    EXPECT_THROW(chip.setFaultModel(0, fault::WordFaultModel(64, {})),
                 std::invalid_argument);
}

TEST(MemoryChip, OutOfRangeWordThrows)
{
    MemoryChip chip(makeCode(), 2);
    const gf2::BitVector d(64);
    EXPECT_THROW(chip.write(2, d), std::out_of_range);
    EXPECT_THROW(chip.read(5), std::out_of_range);
    EXPECT_THROW(chip.readRaw(3), std::out_of_range);
}

TEST(MemoryChip, StoredCodewordMatchesEncoder)
{
    const ecc::HammingCode code = makeCode(9);
    MemoryChip chip(code, 1);
    common::Xoshiro256 rng(9);
    const gf2::BitVector d = gf2::BitVector::random(64, rng);
    chip.write(0, d);
    EXPECT_EQ(chip.storedCodeword(0), code.encode(d));
}

} // namespace
} // namespace harp::mem
