/**
 * @file
 * Unit tests for the error profile and the ideal bit-repair mechanism.
 */

#include <gtest/gtest.h>

#include <sstream>

#include "memsys/error_profile.hh"
#include "memsys/repair_mechanism.hh"

namespace harp::mem {
namespace {

TEST(ErrorProfile, StartsEmpty)
{
    const ErrorProfile profile(4, 64);
    EXPECT_EQ(profile.numWords(), 4u);
    EXPECT_EQ(profile.wordBits(), 64u);
    EXPECT_EQ(profile.totalAtRisk(), 0u);
    EXPECT_FALSE(profile.isAtRisk(0, 0));
}

TEST(ErrorProfile, MarkIsIdempotent)
{
    ErrorProfile profile(2, 64);
    profile.markAtRisk(1, 10);
    profile.markAtRisk(1, 10);
    EXPECT_TRUE(profile.isAtRisk(1, 10));
    EXPECT_FALSE(profile.isAtRisk(0, 10));
    EXPECT_EQ(profile.totalAtRisk(), 1u);
}

TEST(ErrorProfile, WordBitmap)
{
    ErrorProfile profile(1, 16);
    profile.markAtRisk(0, 3);
    profile.markAtRisk(0, 9);
    EXPECT_EQ(profile.wordBitmap(0).setBits(),
              (std::vector<std::size_t>{3, 9}));
}

TEST(ErrorProfile, MergeUnion)
{
    ErrorProfile a(2, 8), b(2, 8);
    a.markAtRisk(0, 1);
    b.markAtRisk(0, 2);
    b.markAtRisk(1, 7);
    a.merge(b);
    EXPECT_TRUE(a.isAtRisk(0, 1));
    EXPECT_TRUE(a.isAtRisk(0, 2));
    EXPECT_TRUE(a.isAtRisk(1, 7));
    EXPECT_EQ(a.totalAtRisk(), 3u);
}

TEST(ErrorProfile, MergeShapeMismatchThrows)
{
    ErrorProfile a(2, 8), b(2, 16), c(3, 8);
    EXPECT_THROW(a.merge(b), std::invalid_argument);
    EXPECT_THROW(a.merge(c), std::invalid_argument);
}

TEST(ErrorProfile, ClearResets)
{
    ErrorProfile profile(1, 8);
    profile.markAtRisk(0, 4);
    profile.clear();
    EXPECT_EQ(profile.totalAtRisk(), 0u);
}

TEST(ErrorProfile, OutOfRangeThrows)
{
    ErrorProfile profile(1, 8);
    EXPECT_THROW(profile.markAtRisk(1, 0), std::out_of_range);
}

TEST(ErrorProfile, SaveLoadRoundTrip)
{
    ErrorProfile profile(5, 64);
    profile.markAtRisk(0, 0);
    profile.markAtRisk(0, 63);
    profile.markAtRisk(3, 17);
    std::stringstream stream;
    profile.save(stream);
    const ErrorProfile loaded = ErrorProfile::load(stream);
    EXPECT_EQ(loaded.numWords(), 5u);
    EXPECT_EQ(loaded.wordBits(), 64u);
    EXPECT_EQ(loaded.totalAtRisk(), 3u);
    EXPECT_TRUE(loaded.isAtRisk(0, 0));
    EXPECT_TRUE(loaded.isAtRisk(0, 63));
    EXPECT_TRUE(loaded.isAtRisk(3, 17));
    EXPECT_FALSE(loaded.isAtRisk(1, 0));
}

TEST(ErrorProfile, SaveLoadEmptyProfile)
{
    ErrorProfile profile(2, 16);
    std::stringstream stream;
    profile.save(stream);
    const ErrorProfile loaded = ErrorProfile::load(stream);
    EXPECT_EQ(loaded.numWords(), 2u);
    EXPECT_EQ(loaded.wordBits(), 16u);
    EXPECT_EQ(loaded.totalAtRisk(), 0u);
}

TEST(ErrorProfile, LoadRejectsMalformedInput)
{
    auto expect_throw = [](const std::string &text) {
        std::istringstream stream(text);
        EXPECT_THROW(ErrorProfile::load(stream), std::invalid_argument)
            << text;
    };
    expect_throw("");
    expect_throw("not-a-profile v1 2 16\n");
    expect_throw("harp-profile v2 2 16\n");
    expect_throw("harp-profile v1 2 16\n9 0\n");   // word out of range
    expect_throw("harp-profile v1 2 16\n0 99\n");  // bit out of range
    expect_throw("harp-profile v1 2 16\n0 abc\n"); // non-numeric bit
}

TEST(ErrorProfile, SaveFormatIsStable)
{
    ErrorProfile profile(3, 8);
    profile.markAtRisk(1, 2);
    profile.markAtRisk(1, 5);
    std::stringstream stream;
    profile.save(stream);
    EXPECT_EQ(stream.str(), "harp-profile v1 3 8\n1 2 5\n");
}

TEST(RepairMechanism, RepairsProfiledBitsAfterCapture)
{
    ErrorProfile profile(1, 16);
    profile.markAtRisk(0, 5);
    RepairMechanism repair(1, 16);

    gf2::BitVector written = gf2::BitVector::fromUint(0xBEEF, 16);
    repair.onWrite(0, written, profile);

    gf2::BitVector read_back = written;
    read_back.flip(5); // the profiled bit got corrupted
    read_back.flip(9); // an unprofiled bit got corrupted too
    EXPECT_EQ(repair.repair(0, read_back), 1u);
    EXPECT_EQ(read_back.get(5), written.get(5));
    EXPECT_NE(read_back.get(9), written.get(9)); // not repaired
}

TEST(RepairMechanism, NoSpareNoRepair)
{
    // A bit profiled after the last write has no captured value yet.
    ErrorProfile profile(1, 16);
    RepairMechanism repair(1, 16);
    const gf2::BitVector written = gf2::BitVector::fromUint(0x0F0F, 16);
    repair.onWrite(0, written, profile); // profile empty at write time
    profile.markAtRisk(0, 2);

    gf2::BitVector read_back = written;
    read_back.flip(2);
    EXPECT_EQ(repair.repair(0, read_back), 0u);
}

TEST(RepairMechanism, RepairIsValueAccurate)
{
    // Repair restores the captured value, it does not blindly flip.
    ErrorProfile profile(1, 8);
    profile.markAtRisk(0, 3);
    RepairMechanism repair(1, 8);
    gf2::BitVector written(8);
    written.set(3, true);
    repair.onWrite(0, written, profile);

    gf2::BitVector clean_read = written;
    EXPECT_EQ(repair.repair(0, clean_read), 0u); // value already correct
    EXPECT_EQ(clean_read, written);
}

TEST(RepairMechanism, SpareAccounting)
{
    ErrorProfile profile(2, 8);
    profile.markAtRisk(0, 1);
    profile.markAtRisk(1, 2);
    profile.markAtRisk(1, 3);
    RepairMechanism repair(2, 8);
    const gf2::BitVector d(8);
    repair.onWrite(0, d, profile);
    EXPECT_EQ(repair.spareBitsUsed(), 1u);
    repair.onWrite(1, d, profile);
    EXPECT_EQ(repair.spareBitsUsed(), 3u);
    // Re-writing the same word does not double-count.
    repair.onWrite(1, d, profile);
    EXPECT_EQ(repair.spareBitsUsed(), 3u);
}

} // namespace
} // namespace harp::mem
