/**
 * @file
 * Unit tests for the error profile and the ideal bit-repair mechanism.
 */

#include <gtest/gtest.h>

#include <sstream>

#include "memsys/error_profile.hh"
#include "memsys/repair_mechanism.hh"

namespace harp::mem {
namespace {

TEST(ErrorProfile, StartsEmpty)
{
    const ErrorProfile profile(4, 64);
    EXPECT_EQ(profile.numWords(), 4u);
    EXPECT_EQ(profile.wordBits(), 64u);
    EXPECT_EQ(profile.totalAtRisk(), 0u);
    EXPECT_FALSE(profile.isAtRisk(0, 0));
}

TEST(ErrorProfile, MarkIsIdempotent)
{
    ErrorProfile profile(2, 64);
    profile.markAtRisk(1, 10);
    profile.markAtRisk(1, 10);
    EXPECT_TRUE(profile.isAtRisk(1, 10));
    EXPECT_FALSE(profile.isAtRisk(0, 10));
    EXPECT_EQ(profile.totalAtRisk(), 1u);
}

TEST(ErrorProfile, WordBitmap)
{
    ErrorProfile profile(1, 16);
    profile.markAtRisk(0, 3);
    profile.markAtRisk(0, 9);
    EXPECT_EQ(profile.wordBitmap(0).setBits(),
              (std::vector<std::size_t>{3, 9}));
}

TEST(ErrorProfile, MergeUnion)
{
    ErrorProfile a(2, 8), b(2, 8);
    a.markAtRisk(0, 1);
    b.markAtRisk(0, 2);
    b.markAtRisk(1, 7);
    a.merge(b);
    EXPECT_TRUE(a.isAtRisk(0, 1));
    EXPECT_TRUE(a.isAtRisk(0, 2));
    EXPECT_TRUE(a.isAtRisk(1, 7));
    EXPECT_EQ(a.totalAtRisk(), 3u);
}

TEST(ErrorProfile, MergeShapeMismatchThrows)
{
    ErrorProfile a(2, 8), b(2, 16), c(3, 8);
    EXPECT_THROW(a.merge(b), std::invalid_argument);
    EXPECT_THROW(a.merge(c), std::invalid_argument);
}

TEST(ErrorProfile, ClearResets)
{
    ErrorProfile profile(1, 8);
    profile.markAtRisk(0, 4);
    profile.clear();
    EXPECT_EQ(profile.totalAtRisk(), 0u);
}

TEST(ErrorProfile, OutOfRangeThrows)
{
    ErrorProfile profile(1, 8);
    EXPECT_THROW(profile.markAtRisk(1, 0), std::out_of_range);
}

TEST(ErrorProfile, SaveLoadRoundTrip)
{
    ErrorProfile profile(5, 64);
    profile.markAtRisk(0, 0);
    profile.markAtRisk(0, 63);
    profile.markAtRisk(3, 17);
    std::stringstream stream;
    profile.save(stream);
    const ErrorProfile loaded = ErrorProfile::load(stream);
    EXPECT_EQ(loaded.numWords(), 5u);
    EXPECT_EQ(loaded.wordBits(), 64u);
    EXPECT_EQ(loaded.totalAtRisk(), 3u);
    EXPECT_TRUE(loaded.isAtRisk(0, 0));
    EXPECT_TRUE(loaded.isAtRisk(0, 63));
    EXPECT_TRUE(loaded.isAtRisk(3, 17));
    EXPECT_FALSE(loaded.isAtRisk(1, 0));
}

TEST(ErrorProfile, SaveLoadEmptyProfile)
{
    ErrorProfile profile(2, 16);
    std::stringstream stream;
    profile.save(stream);
    const ErrorProfile loaded = ErrorProfile::load(stream);
    EXPECT_EQ(loaded.numWords(), 2u);
    EXPECT_EQ(loaded.wordBits(), 16u);
    EXPECT_EQ(loaded.totalAtRisk(), 0u);
}

TEST(ErrorProfile, LoadRejectsMalformedInput)
{
    auto expect_throw = [](const std::string &text) {
        std::istringstream stream(text);
        EXPECT_THROW(ErrorProfile::load(stream), std::invalid_argument)
            << text;
    };
    expect_throw("");
    expect_throw("not-a-profile v1 2 16\n");
    expect_throw("harp-profile v2 2 16\n");
    expect_throw("harp-profile v1 2 16\n9 0\n");   // word out of range
    expect_throw("harp-profile v1 2 16\n0 99\n");  // bit out of range
    expect_throw("harp-profile v1 2 16\n0 abc\n"); // non-numeric bit
}

TEST(ErrorProfile, SaveFormatIsStable)
{
    ErrorProfile profile(3, 8);
    profile.markAtRisk(1, 2);
    profile.markAtRisk(1, 5);
    std::stringstream stream;
    profile.save(stream);
    EXPECT_EQ(stream.str(), "harp-profile v1 3 8\n1 2 5\n");
}

TEST(ErrorProfile, MarkWordBitmapOrsIntoExistingEntries)
{
    ErrorProfile profile(2, 8);
    profile.markAtRisk(1, 0);
    gf2::BitVector bits(8);
    bits.set(2, true);
    bits.set(5, true);
    profile.markWordBitmap(1, bits);
    EXPECT_EQ(profile.wordBitmap(1).setBits(),
              (std::vector<std::size_t>{0, 2, 5}));
    EXPECT_EQ(profile.totalAtRisk(), 3u);

    EXPECT_THROW(profile.markWordBitmap(1, gf2::BitVector(9)),
                 std::invalid_argument);
    EXPECT_THROW(profile.markWordBitmap(2, bits), std::out_of_range);
}

TEST(ErrorProfile, TruncateToBudgetKeepsFirstBitsInWordOrder)
{
    ErrorProfile profile(3, 8);
    profile.markAtRisk(0, 6);
    profile.markAtRisk(1, 1);
    profile.markAtRisk(1, 4);
    profile.markAtRisk(2, 0);

    // Budget 2 keeps (0,6) and (1,1) — (word, bit) order — drops 2.
    EXPECT_EQ(profile.truncateToBudget(2), 2u);
    EXPECT_EQ(profile.totalAtRisk(), 2u);
    EXPECT_TRUE(profile.isAtRisk(0, 6));
    EXPECT_TRUE(profile.isAtRisk(1, 1));
    EXPECT_FALSE(profile.isAtRisk(1, 4));
    EXPECT_FALSE(profile.isAtRisk(2, 0));

    // A budget at or above the population is a no-op.
    EXPECT_EQ(profile.truncateToBudget(2), 0u);
    EXPECT_EQ(profile.truncateToBudget(99), 0u);
    EXPECT_EQ(profile.totalAtRisk(), 2u);
}

TEST(RepairMechanism, RepairsProfiledBitsAfterCapture)
{
    ErrorProfile profile(1, 16);
    profile.markAtRisk(0, 5);
    RepairMechanism repair(1, 16);

    gf2::BitVector written = gf2::BitVector::fromUint(0xBEEF, 16);
    repair.onWrite(0, written, profile);

    gf2::BitVector read_back = written;
    read_back.flip(5); // the profiled bit got corrupted
    read_back.flip(9); // an unprofiled bit got corrupted too
    EXPECT_EQ(repair.repair(0, read_back), 1u);
    EXPECT_EQ(read_back.get(5), written.get(5));
    EXPECT_NE(read_back.get(9), written.get(9)); // not repaired
}

TEST(RepairMechanism, NoSpareNoRepair)
{
    // A bit profiled after the last write has no captured value yet.
    ErrorProfile profile(1, 16);
    RepairMechanism repair(1, 16);
    const gf2::BitVector written = gf2::BitVector::fromUint(0x0F0F, 16);
    repair.onWrite(0, written, profile); // profile empty at write time
    profile.markAtRisk(0, 2);

    gf2::BitVector read_back = written;
    read_back.flip(2);
    EXPECT_EQ(repair.repair(0, read_back), 0u);
}

TEST(RepairMechanism, RepairIsValueAccurate)
{
    // Repair restores the captured value, it does not blindly flip.
    ErrorProfile profile(1, 8);
    profile.markAtRisk(0, 3);
    RepairMechanism repair(1, 8);
    gf2::BitVector written(8);
    written.set(3, true);
    repair.onWrite(0, written, profile);

    gf2::BitVector clean_read = written;
    EXPECT_EQ(repair.repair(0, clean_read), 0u); // value already correct
    EXPECT_EQ(clean_read, written);
}

TEST(RepairMechanism, SpareAccounting)
{
    ErrorProfile profile(2, 8);
    profile.markAtRisk(0, 1);
    profile.markAtRisk(1, 2);
    profile.markAtRisk(1, 3);
    RepairMechanism repair(2, 8);
    const gf2::BitVector d(8);
    repair.onWrite(0, d, profile);
    EXPECT_EQ(repair.spareBitsUsed(), 1u);
    repair.onWrite(1, d, profile);
    EXPECT_EQ(repair.spareBitsUsed(), 3u);
    // Re-writing the same word does not double-count.
    repair.onWrite(1, d, profile);
    EXPECT_EQ(repair.spareBitsUsed(), 3u);
}

TEST(RepairMechanism, BudgetExhaustionIsFirstComeFirstServed)
{
    // Word 0 carries profiled bits {3, 7, 11}, word 1 carries {2}.
    // With a budget of 2, the first capturing write wins the spares in
    // ascending bit order: {3, 7} get slots, 11 and word 1's bit 2 are
    // dropped deterministically.
    ErrorProfile profile(2, 16);
    for (const std::size_t bit : {3, 7, 11})
        profile.markAtRisk(0, bit);
    profile.markAtRisk(1, 2);
    RepairMechanism repair(2, 16);
    repair.setCapacity(2);
    EXPECT_EQ(repair.capacity(), 2u);
    EXPECT_FALSE(repair.exhausted());

    const gf2::BitVector w0 = gf2::BitVector::fromUint(0xFFFF, 16);
    repair.onWrite(0, w0, profile);
    EXPECT_EQ(repair.spareBitsUsed(), 2u);
    EXPECT_TRUE(repair.exhausted());
    EXPECT_EQ(repair.droppedAllocations(), 1u); // bit 11

    const gf2::BitVector w1 = gf2::BitVector::fromUint(0x0004, 16);
    repair.onWrite(1, w1, profile);
    EXPECT_EQ(repair.spareBitsUsed(), 2u);
    EXPECT_EQ(repair.droppedAllocations(), 2u); // + word 1 bit 2

    // Exactly the FCFS winners {3, 7} are repaired; 11 and (1, 2) leak.
    gf2::BitVector read0 = w0;
    for (const std::size_t bit : {3, 7, 11})
        read0.flip(bit);
    EXPECT_EQ(repair.repair(0, read0), 2u);
    EXPECT_TRUE(read0.get(3));
    EXPECT_TRUE(read0.get(7));
    EXPECT_FALSE(read0.get(11));
    gf2::BitVector read1 = w1;
    read1.flip(2);
    EXPECT_EQ(repair.repair(1, read1), 0u);

    // Raising the budget lets the *next* capturing writes claim slots
    // for the previously dropped bits.
    repair.setCapacity(4);
    EXPECT_FALSE(repair.exhausted());
    repair.onWrite(0, w0, profile);
    repair.onWrite(1, w1, profile);
    EXPECT_EQ(repair.spareBitsUsed(), 4u);
    gf2::BitVector again = w0;
    again.flip(11);
    EXPECT_EQ(repair.repair(0, again), 1u);
    EXPECT_EQ(again, w0);
}

TEST(RepairMechanism, ValueRefreshNeverConsumesBudget)
{
    // Rewriting a word refreshes the values of already-allocated spares
    // without touching the budget or the dropped counter.
    ErrorProfile profile(1, 8);
    profile.markAtRisk(0, 5);
    RepairMechanism repair(1, 8);
    repair.setCapacity(1);

    gf2::BitVector first(8);
    first.set(5, true);
    repair.onWrite(0, first, profile);
    EXPECT_TRUE(repair.exhausted());

    gf2::BitVector second(8); // bit 5 now 0
    repair.onWrite(0, second, profile);
    EXPECT_EQ(repair.spareBitsUsed(), 1u);
    EXPECT_EQ(repair.droppedAllocations(), 0u);

    // The spare tracks the latest write, not the first.
    gf2::BitVector read = second;
    read.flip(5);
    EXPECT_EQ(repair.repair(0, read), 1u);
    EXPECT_EQ(read, second);
}

TEST(RepairMechanism, ShrinkingCapacityDoesNotEvictSpares)
{
    // Spare rows cannot be un-soldered: shrinking the budget below the
    // allocated count keeps existing repairs working and only blocks
    // new allocations.
    ErrorProfile profile(1, 8);
    for (const std::size_t bit : {1, 4, 6})
        profile.markAtRisk(0, bit);
    RepairMechanism repair(1, 8);
    const gf2::BitVector d = gf2::BitVector::fromUint(0xFF, 8);
    repair.onWrite(0, d, profile);
    EXPECT_EQ(repair.spareBitsUsed(), 3u);

    repair.setCapacity(1);
    EXPECT_TRUE(repair.exhausted());
    EXPECT_EQ(repair.spareBitsUsed(), 3u);
    gf2::BitVector read = d;
    for (const std::size_t bit : {1, 4, 6})
        read.flip(bit);
    EXPECT_EQ(repair.repair(0, read), 3u);

    // A newly profiled bit can no longer be captured.
    profile.markAtRisk(0, 0);
    repair.onWrite(0, d, profile);
    EXPECT_EQ(repair.spareBitsUsed(), 3u);
    EXPECT_EQ(repair.droppedAllocations(), 1u);
}

TEST(RepairMechanism, ZeroCapacityCapturesNothing)
{
    ErrorProfile profile(1, 8);
    profile.markAtRisk(0, 3);
    RepairMechanism repair(1, 8);
    repair.setCapacity(0);
    EXPECT_TRUE(repair.exhausted());

    const gf2::BitVector d = gf2::BitVector::fromUint(0xAB, 8);
    repair.onWrite(0, d, profile);
    EXPECT_EQ(repair.spareBitsUsed(), 0u);
    EXPECT_EQ(repair.droppedAllocations(), 1u);
    gf2::BitVector read = d;
    read.flip(3);
    EXPECT_EQ(repair.repair(0, read), 0u);
}

} // namespace
} // namespace harp::mem
