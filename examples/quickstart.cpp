/**
 * @file
 * Quickstart: profile a simulated DRAM chip with on-die ECC using HARP.
 *
 * Demonstrates the core public API in ~60 lines:
 *  1. build a random (71,64) on-die SEC Hamming code,
 *  2. attach a data-retention fault model to one ECC word,
 *  3. run HARP-U and Naive profiling side by side for 32 rounds,
 *  4. compare both against the exact ground truth.
 *
 * Run:  ./quickstart [--rounds N] [--pre-errors N] [--prob P] [--seed N]
 */

#include <iostream>

#include "common/cli.hh"
#include "common/rng.hh"
#include "core/at_risk_analyzer.hh"
#include "core/harp_profiler.hh"
#include "core/naive_profiler.hh"
#include "core/round_engine.hh"
#include "ecc/hamming_code.hh"

int
main(int argc, char **argv)
{
    using namespace harp;
    const common::CommandLine cli(argc, argv);
    const std::size_t rounds =
        static_cast<std::size_t>(cli.getInt("rounds", 32));
    const std::size_t pre_errors =
        static_cast<std::size_t>(cli.getInt("pre-errors", 4));
    const double prob = cli.getDouble("prob", 0.5);
    const std::uint64_t seed =
        static_cast<std::uint64_t>(cli.getInt("seed", 42));

    // 1. The memory chip's proprietary on-die ECC: a random systematic
    //    (71,64) single-error-correcting Hamming code.
    common::Xoshiro256 code_rng(seed);
    const ecc::HammingCode on_die =
        ecc::HammingCode::randomSec(64, code_rng);
    std::cout << "On-die ECC: (" << on_die.n() << "," << on_die.k()
              << ") SEC Hamming code\n";

    // 2. A data-retention fault model: `pre_errors` at-risk cells placed
    //    uniformly over the codeword, each failing with probability
    //    `prob` when charged.
    common::Xoshiro256 fault_rng(seed + 1);
    const fault::WordFaultModel faults =
        fault::WordFaultModel::makeUniformFixedCount(on_die.n(),
                                                     pre_errors, prob,
                                                     fault_rng);
    std::cout << "At-risk cells (ground truth, hidden from profilers): ";
    for (const std::size_t pos : faults.atRiskPositions())
        std::cout << pos << (pos >= on_die.k() ? "(parity) " : " ");
    std::cout << "\n\n";

    // 3. Profile: HARP-U (bypass read path) vs Naive (post-correction
    //    observations only), against identical injected errors.
    core::NaiveProfiler naive(on_die.k());
    core::HarpUProfiler harp(on_die.k());
    core::RoundEngine engine(on_die, faults, core::PatternKind::Random,
                             seed + 2);
    std::vector<core::Profiler *> profilers = {&naive, &harp};
    for (std::size_t r = 0; r < rounds; ++r) {
        engine.runRound(profilers);
        if ((r + 1) % 8 == 0) {
            std::cout << "after round " << (r + 1) << ": HARP-U found "
                      << harp.identified().popcount()
                      << " at-risk bits, Naive found "
                      << naive.identified().popcount() << "\n";
        }
    }

    // 4. Compare against exact ground truth.
    const core::AtRiskAnalyzer analyzer(on_die, faults);
    const std::size_t direct_total = analyzer.directAtRisk().popcount();
    auto coverage = [&](const core::Profiler &p) {
        gf2::BitVector covered = p.identified();
        covered &= analyzer.directAtRisk();
        return covered.popcount();
    };
    std::cout << "\nGround truth: " << direct_total
              << " bits at risk of direct error, "
              << analyzer.indirectAtRisk().popcount()
              << " at risk of indirect error\n";
    std::cout << "HARP-U direct coverage: " << coverage(harp) << "/"
              << direct_total << "\n";
    std::cout << "Naive  direct coverage: " << coverage(naive) << "/"
              << direct_total << "\n";
    std::cout << "\nWith HARP's profile, at most "
              << analyzer.maxSimultaneousErrors(harp.identified())
              << " simultaneous post-correction error(s) remain "
                 "possible,\nso a single-error-correcting secondary ECC "
                 "can safely finish the job reactively.\n";
    return 0;
}
