/**
 * @file
 * Secondary-ECC sizing walkthrough (the Fig. 9 question, interactively):
 * how strong must the memory controller's secondary ECC be to safely
 * perform reactive profiling after a given active-profiling budget?
 *
 * For one ECC word with a configurable number of at-risk cells, tracks —
 * round by round — the maximum number of simultaneous post-correction
 * errors that remain possible under each profiler's current profile.
 * That maximum IS the required secondary-ECC correction capability.
 *
 * Run:  ./secondary_ecc_sizing [--pre-errors N] [--prob P] [--rounds N]
 */

#include <iomanip>
#include <iostream>

#include "common/cli.hh"
#include "common/rng.hh"
#include "core/at_risk_analyzer.hh"
#include "core/beep_profiler.hh"
#include "core/harp_profiler.hh"
#include "core/naive_profiler.hh"
#include "core/round_engine.hh"

int
main(int argc, char **argv)
{
    using namespace harp;
    const common::CommandLine cli(argc, argv);
    const std::size_t pre_errors =
        static_cast<std::size_t>(cli.getInt("pre-errors", 5));
    const double prob = cli.getDouble("prob", 0.5);
    const std::size_t rounds =
        static_cast<std::size_t>(cli.getInt("rounds", 64));
    const std::uint64_t seed =
        static_cast<std::uint64_t>(cli.getInt("seed", 11));

    common::Xoshiro256 code_rng(seed);
    const ecc::HammingCode on_die =
        ecc::HammingCode::randomSec(64, code_rng);
    common::Xoshiro256 fault_rng(seed + 1);
    const fault::WordFaultModel faults =
        fault::WordFaultModel::makeUniformFixedCount(
            on_die.n(), pre_errors, prob, fault_rng);
    const core::AtRiskAnalyzer analyzer(on_die, faults);

    std::cout << "One (71,64) ECC word with " << pre_errors
              << " at-risk cells (p=" << prob << ")\n"
              << "Ground truth: " << analyzer.directAtRisk().popcount()
              << " direct-at-risk bits, "
              << analyzer.indirectAtRisk().popcount()
              << " indirect-at-risk bits, "
              << analyzer.outcomes().size()
              << " feasible error patterns\n\n";

    core::NaiveProfiler naive(on_die.k());
    core::BeepProfiler beep(on_die);
    core::HarpUProfiler harp_u(on_die.k());
    core::HarpAProfiler harp_a(on_die);
    std::vector<core::Profiler *> profilers = {&naive, &beep, &harp_u,
                                               &harp_a};
    core::RoundEngine engine(on_die, faults, core::PatternKind::Random,
                             seed + 2);

    const gf2::BitVector empty(on_die.k());
    std::cout << "Required secondary-ECC correction capability after "
                 "each round\n(= max simultaneous unrepaired "
                 "post-correction errors):\n\n";
    std::cout << std::setw(7) << "round";
    for (const core::Profiler *p : profilers)
        std::cout << std::setw(13) << p->name();
    std::cout << "\n" << std::setw(7) << 0;
    for (std::size_t i = 0; i < profilers.size(); ++i)
        std::cout << std::setw(13)
                  << analyzer.maxSimultaneousErrors(empty);
    std::cout << "\n";

    for (std::size_t r = 0; r < rounds; ++r) {
        engine.runRound(profilers);
        const bool checkpoint =
            (r + 1) <= 8 || ((r + 1) & r) == 0 || r + 1 == rounds;
        if (!checkpoint)
            continue;
        std::cout << std::setw(7) << (r + 1);
        for (const core::Profiler *p : profilers)
            std::cout << std::setw(13)
                      << analyzer.maxSimultaneousErrors(p->identified());
        std::cout << "\n";
    }

    std::cout << "\nReading the table: a value of 1 means a single-error-"
                 "correcting secondary ECC\n(one per on-die ECC word) "
                 "suffices for safe reactive profiling — HARP reaches 1\n"
                 "as soon as its active phase has seen each direct error "
                 "once; baselines can stay\nabove 1 for the whole "
                 "budget.\n";
    return 0;
}
