/**
 * @file
 * Alias binary for `harp_run secondary_ecc_sizing`: forwards into the unified
 * experiment-campaign runner with this experiment pre-selected. The
 * experiment itself is defined in src/runner/specs_examples.cc, and the
 * narrative walkthrough of this flow lives in docs/ARCHITECTURE.md.
 */

#include "runner/cli.hh"

int
main(int argc, char **argv)
{
    return harp::runner::runnerMain(argc, argv, "secondary_ecc_sizing");
}
