/**
 * @file
 * End-to-end retention case study on the full memory-system model
 * (HARP section 7.4 in miniature).
 *
 * Builds a complete HARP-enabled system — memory chip with on-die ECC,
 * memory controller with bit-repair, error profile, and SECDED secondary
 * ECC — then:
 *  1. runs HARP's active profiling phase over every word via the
 *     decode-bypass read path,
 *  2. switches to normal operation at an aggressive (error-prone)
 *     refresh rate, letting reactive profiling catch indirect errors,
 *  3. reports end-to-end reliability: corrupted reads, reactive
 *     identifications, and repair capacity used.
 *
 * Run:  ./retention_case_study [--words N] [--rber R] [--prob P]
 *                              [--active-rounds N] [--accesses N]
 */

#include <iostream>

#include "common/cli.hh"
#include "common/rng.hh"
#include "common/table.hh"
#include "core/data_pattern.hh"
#include "ecc/extended_hamming_code.hh"
#include "memsys/memory_controller.hh"

int
main(int argc, char **argv)
{
    using namespace harp;
    const common::CommandLine cli(argc, argv);
    const std::size_t num_words =
        static_cast<std::size_t>(cli.getInt("words", 256));
    const double rber = cli.getDouble("rber", 0.01);
    const double prob = cli.getDouble("prob", 0.5);
    const std::size_t active_rounds =
        static_cast<std::size_t>(cli.getInt("active-rounds", 64));
    const std::size_t accesses =
        static_cast<std::size_t>(cli.getInt("accesses", 20000));
    const std::uint64_t seed =
        static_cast<std::uint64_t>(cli.getInt("seed", 7));

    // --- System construction -------------------------------------------
    common::Xoshiro256 code_rng(seed);
    const ecc::HammingCode on_die =
        ecc::HammingCode::randomSec(64, code_rng);
    mem::MemoryChip chip(on_die, num_words);
    common::Xoshiro256 secondary_rng(seed + 1);
    mem::MemoryController controller(
        chip, ecc::ExtendedHammingCode::randomSecDed(64, secondary_rng));

    // Attach retention fault models: every cell at risk with probability
    // `rber` (the aggressive-refresh regime Fig. 10 models).
    common::Xoshiro256 fault_rng(seed + 2);
    std::size_t total_at_risk = 0;
    for (std::size_t w = 0; w < num_words; ++w) {
        auto model = fault::WordFaultModel::makeUniformRber(
            on_die.n(), rber, prob, fault_rng);
        total_at_risk += model.numFaults();
        chip.setFaultModel(w, std::move(model));
    }
    std::cout << "System: " << num_words << " ECC words, RBER=" << rber
              << " -> " << total_at_risk
              << " at-risk cells chip-wide, p(fail|charged)=" << prob
              << "\n\n";

    // --- Phase 1: HARP active profiling --------------------------------
    common::Xoshiro256 retention_rng(seed + 3);
    for (std::size_t w = 0; w < num_words; ++w) {
        core::PatternGenerator patterns(
            core::PatternKind::Random, 64,
            common::deriveSeed(seed, {0xACF1u, w}));
        for (std::size_t r = 0; r < active_rounds; ++r) {
            const gf2::BitVector pattern = patterns.pattern(r);
            controller.write(w, pattern);
            chip.retentionTick(w, retention_rng);
            gf2::BitVector raw = controller.readRaw(w);
            raw ^= pattern;
            raw.forEachSetBit([&](std::size_t bit) {
                controller.profile().markAtRisk(w, bit);
            });
        }
    }
    const std::size_t active_found = controller.profile().totalAtRisk();
    std::cout << "Active phase (" << active_rounds
              << " rounds/word, bypass reads): profiled " << active_found
              << " bits at risk of direct error\n";

    // --- Phase 2: normal operation + reactive profiling ----------------
    common::Xoshiro256 workload_rng(seed + 4);
    std::vector<gf2::BitVector> shadow(num_words, gf2::BitVector(64));
    for (std::size_t w = 0; w < num_words; ++w) {
        shadow[w] = gf2::BitVector::random(64, workload_rng);
        controller.write(w, shadow[w]);
    }
    std::size_t silent_corruptions = 0;
    const std::size_t scrub_interval = num_words * 4;
    for (std::size_t a = 0; a < accesses; ++a) {
        const std::size_t w = workload_rng.nextBelow(num_words);
        if (workload_rng.nextBernoulli(0.5)) {
            shadow[w] = gf2::BitVector::random(64, workload_rng);
            controller.write(w, shadow[w]);
        } else {
            chip.retentionTick(w, retention_rng);
            const mem::ControllerReadResult r = controller.read(w);
            if (!r.corrupt && !(r.dataword == shadow[w]))
                ++silent_corruptions;
            // Writes refresh the word; reads leave errors accumulated.
        }
        // Patrol scrubbing (section 2.3.2) keeps raw errors from
        // accumulating in rarely-written words.
        if (a % scrub_interval == scrub_interval - 1)
            controller.scrubAll();
    }

    const mem::ControllerStats &stats = controller.stats();
    std::cout << "\nReactive phase (" << accesses
              << " accesses at the aggressive refresh rate):\n";
    std::cout << "  secondary ECC corrections:       "
              << stats.secondaryCorrections << "\n";
    std::cout << "  reactive identifications:        "
              << stats.reactiveIdentifications
              << " (bits at risk of indirect error)\n";
    std::cout << "  repaired-bit read fixes:         "
              << stats.repairedBits << "\n";
    std::cout << "  patrol scrubs / writebacks:      " << stats.scrubs
              << " / " << stats.scrubWritebacks << "\n";
    std::cout << "  uncorrectable (detected) events: "
              << stats.uncorrectableEvents << "\n";
    std::cout << "  silent corruptions:              "
              << silent_corruptions << "\n";
    std::cout << "  repair capacity used:            "
              << controller.profile().totalAtRisk() << " bits ("
              << common::formatDouble(
                     100.0 *
                         static_cast<double>(
                             controller.profile().totalAtRisk()) /
                         static_cast<double>(num_words * 64),
                     3)
              << "% of data capacity)\n";

    std::cout << "\nBecause active profiling covered every direct error, "
                 "the secondary SEC code could\nabsorb each remaining "
                 "indirect error on first failure: expect zero silent "
                 "corruptions\nand zero uncorrectable events above.\n";
    return silent_corruptions == 0 ? 0 : 1;
}
