/**
 * @file
 * BEER-style reverse engineering of an unknown on-die ECC function
 * (Patel et al., "Bit-Exact ECC Recovery", MICRO 2020 — the prior work
 * HARP-A builds on to obtain the parity-check matrix).
 *
 * A memory chip hides its systematic SEC Hamming code. The experimenter
 * can program data patterns and induce worst-case retention errors in
 * chosen charged cells, observing only post-correction data. Every
 * pair-failure experiment yields one constraint on the hidden
 * parity-check columns:
 *
 *   - observed error set {i, j, m}: H[i] ^ H[j] = H[m] (miscorrection)
 *   - observed error set {i, j}:    H[i] ^ H[j] matches no data column
 *
 * The demo encodes all such constraints into CNF, solves with the
 * repository's CDCL SAT solver, and verifies that the recovered code is
 * unique (UNSAT after adding a blocking clause) and bit-exact.
 *
 * Run:  ./beer_reverse_engineering [--k N(<=16)] [--seed N]
 */

#include <iostream>
#include <vector>

#include "common/cli.hh"
#include "common/rng.hh"
#include "ecc/hamming_code.hh"
#include "gf2/linear_solver.hh"
#include "sat/cnf_builder.hh"

namespace {

using namespace harp;

/**
 * Oracle for one retention experiment: exactly the two chosen cells
 * fail. Returns the post-correction error positions the experimenter
 * observes (data side only). Mirrors a real BEER experiment where the
 * data pattern charges exactly the targeted cells and the refresh window
 * is long enough that every charged at-risk cell fails.
 */
std::optional<std::vector<std::size_t>>
runPairExperiment(const ecc::HammingCode &code, std::size_t i,
                  std::size_t j)
{
    // Find a dataword charging cells {i, j}. Only the targeted cells are
    // at risk in this experiment, so other charged cells cannot fail and
    // need not be discharged.
    gf2::ConstraintSystem cs(code.k());
    for (const std::size_t cell : {i, j}) {
        if (cell < code.k())
            cs.pinVariable(cell, true);
        else
            cs.addConstraint(code.parityRow(cell - code.k()), true);
    }
    const auto pattern = cs.solveAny();
    if (!pattern)
        return std::nullopt; // experiment cannot be set up; skipped
    gf2::BitVector received = code.encode(*pattern);
    received.flip(i);
    received.flip(j);
    const ecc::DecodeResult decoded = code.decode(received);
    gf2::BitVector diff = decoded.dataword;
    diff ^= *pattern;
    return diff.setBits();
}

} // namespace

int
main(int argc, char **argv)
{
    using namespace harp;
    const common::CommandLine cli(argc, argv);
    const std::size_t k = static_cast<std::size_t>(cli.getInt("k", 8));
    const std::uint64_t seed =
        static_cast<std::uint64_t>(cli.getInt("seed", 5));
    if (k > 16) {
        std::cerr << "demo supports k <= 16 (SAT instance size)\n";
        return 1;
    }

    common::Xoshiro256 rng(seed);
    const ecc::HammingCode hidden = ecc::HammingCode::randomSec(k, rng);
    const std::size_t p = hidden.p();
    std::cout << "Hidden on-die ECC: (" << hidden.n() << "," << k
              << ") systematic SEC Hamming code; recovering its " << k
              << " data parity-columns from pair-failure experiments...\n";

    // --- CNF encoding ----------------------------------------------------
    sat::CnfBuilder cnf;
    // x[c][b]: bit b of hidden data column c.
    std::vector<std::vector<sat::Var>> x(k);
    for (std::size_t c = 0; c < k; ++c)
        x[c] = cnf.newVars(p);
    auto lit = [&](std::size_t c, std::size_t b) {
        return sat::Lit::make(x[c][b], true);
    };

    // Structural constraints: weight >= 2 (systematic code, no collision
    // with identity parity columns), and pairwise-distinct columns.
    for (std::size_t c = 0; c < k; ++c) {
        sat::Clause nonzero;
        for (std::size_t b = 0; b < p; ++b)
            nonzero.push_back(lit(c, b));
        cnf.addClause(nonzero);
        for (std::size_t b = 0; b < p; ++b) {
            // x[c][b] -> some other bit set.
            sat::Clause not_weight1;
            not_weight1.push_back(~lit(c, b));
            for (std::size_t b2 = 0; b2 < p; ++b2)
                if (b2 != b)
                    not_weight1.push_back(lit(c, b2));
            cnf.addClause(not_weight1);
        }
    }
    for (std::size_t c1 = 0; c1 < k; ++c1) {
        for (std::size_t c2 = c1 + 1; c2 < k; ++c2) {
            // Some bit differs: OR over difference variables.
            std::vector<sat::Lit> diffs;
            for (std::size_t b = 0; b < p; ++b) {
                const sat::Var d = cnf.newVar();
                // d = x[c1][b] xor x[c2][b]
                cnf.addXor({lit(c1, b), lit(c2, b),
                            sat::Lit::make(d, true)},
                           false);
                diffs.push_back(sat::Lit::make(d, true));
            }
            cnf.addClause(sat::Clause(diffs.begin(), diffs.end()));
        }
    }

    // Observation constraints from every pair experiment.
    std::size_t experiments = 0, miscorrections = 0;
    auto column_known = [&](std::size_t cell) {
        return cell >= k; // parity columns are identity (systematic)
    };
    for (std::size_t i = 0; i < hidden.n(); ++i) {
        for (std::size_t j = i + 1; j < hidden.n(); ++j) {
            const auto observed = runPairExperiment(hidden, i, j);
            if (!observed)
                continue; // experiment infeasible: no constraint
            ++experiments;
            // Expected observed set always contains the data members of
            // {i, j}; any extra position m is a miscorrection target.
            std::vector<std::size_t> extras;
            for (const std::size_t e : *observed)
                if (e != i && e != j)
                    extras.push_back(e);

            // Syndrome s = H[i] ^ H[j] expressed per bit as a literal
            // list plus a constant from any known (parity) columns.
            for (std::size_t b = 0; b < p; ++b) {
                std::vector<sat::Lit> xor_lits;
                bool constant = false;
                for (const std::size_t cell : {i, j}) {
                    if (column_known(cell))
                        constant ^= ((hidden.codewordColumn(cell) >> b) &
                                     1) != 0;
                    else
                        xor_lits.push_back(lit(cell, b));
                }
                if (!extras.empty()) {
                    ++miscorrections;
                    // s == H[m]: per-bit equality.
                    const std::size_t m = extras.front();
                    xor_lits.push_back(lit(m, b));
                    cnf.addXor(xor_lits, constant);
                }
            }
            if (extras.empty()) {
                // No miscorrection observed: s differs from every data
                // column other than i and j themselves.
                for (std::size_t c = 0; c < k; ++c) {
                    if (c == i || c == j)
                        continue;
                    std::vector<sat::Lit> diffs;
                    for (std::size_t b = 0; b < p; ++b) {
                        const sat::Var d = cnf.newVar();
                        std::vector<sat::Lit> xor_def;
                        bool constant = false;
                        for (const std::size_t cell : {i, j}) {
                            if (column_known(cell))
                                constant ^=
                                    ((hidden.codewordColumn(cell) >> b) &
                                     1) != 0;
                            else
                                xor_def.push_back(lit(cell, b));
                        }
                        xor_def.push_back(lit(c, b));
                        xor_def.push_back(sat::Lit::make(d, true));
                        cnf.addXor(xor_def, constant);
                        diffs.push_back(sat::Lit::make(d, true));
                    }
                    cnf.addClause(sat::Clause(diffs.begin(), diffs.end()));
                }
            }
        }
    }
    std::cout << experiments << " pair experiments run, "
              << miscorrections / p << " exposed miscorrections; CNF has "
              << cnf.solver().numVars() << " vars, "
              << cnf.solver().numClauses() << " clauses\n";

    // --- Solve and verify --------------------------------------------------
    if (cnf.solver().solve() != sat::SolveResult::Sat) {
        std::cerr << "UNSAT: constraints inconsistent (bug)\n";
        return 1;
    }
    std::vector<std::uint32_t> recovered(k, 0);
    for (std::size_t c = 0; c < k; ++c)
        for (std::size_t b = 0; b < p; ++b)
            if (cnf.solver().modelValue(x[c][b]))
                recovered[c] |= std::uint32_t{1} << b;

    bool exact = true;
    for (std::size_t c = 0; c < k; ++c)
        exact = exact && (recovered[c] == hidden.dataColumn(c));
    std::cout << "Recovered parity-check columns are "
              << (exact ? "BIT-EXACT" : "NOT exact") << "\n";

    // Uniqueness: block this model and ask again (BEER's check).
    sat::Clause blocking;
    for (std::size_t c = 0; c < k; ++c)
        for (std::size_t b = 0; b < p; ++b)
            blocking.push_back(sat::Lit::make(
                x[c][b], !cnf.solver().modelValue(x[c][b])));
    cnf.addClause(blocking);
    const bool unique =
        cnf.solver().solve() == sat::SolveResult::Unsat;
    std::cout << "Solution is " << (unique ? "UNIQUE" : "NOT unique")
              << " given the experiments\n";

    if (exact && unique) {
        std::cout << "\nThis is how HARP-A obtains the parity-check "
                     "matrix it uses to precompute\nindirect-error "
                     "targets (HARP section 6.3.1, via BEER).\n";
        return 0;
    }
    return 1;
}
