#!/usr/bin/env bash
# Perf-trajectory snapshot: runs the perf_engine_throughput experiment
# (Hamming + t-error BCH workloads) through harp_run and writes a
# machine-readable snapshot JSON with rounds/s per engine (scalar,
# sliced64, sliced256), the sliced/scalar speedups, memo statistics and
# the profile checksums.
#
#   scripts/bench_snapshot.sh            # full workload -> BENCH_PR6.json
#   scripts/bench_snapshot.sh --smoke    # tiny workload, wiring check only
#
# Full mode enforces the tracked floors on BOTH sliced engines: each
# must be >= 8x scalar on the Hamming workload and >= 9x on the BCH
# workload (sliced64 floors raised in PR 5 by the lane-native
# observation path; PR 6 holds the wide W=4 engine to the same bar),
# always with profiles_match=true (the three-way bit-identity witness).
# Smoke mode (used by verify.sh) only checks the wiring and the
# witness, never timing — timings on loaded machines are noise at
# smoke scale.
set -euo pipefail

cd "$(dirname "$0")/.."

MODE=full
OUT=BENCH_PR6.json
SEED=1
while [[ $# -gt 0 ]]; do
    case "$1" in
      --smoke) MODE=smoke; shift ;;
      --out) OUT=$2; shift 2 ;;
      --seed) SEED=$2; shift 2 ;;
      *)
        echo "usage: $0 [--smoke] [--out FILE] [--seed N]" >&2
        exit 2
        ;;
    esac
done

RUN=./build/src/harp_run
[[ -x $RUN ]] || {
    echo "bench_snapshot: $RUN missing — build first (cmake --build build)" >&2
    exit 1
}

tmpdir=build/bench-snapshot
rm -rf "$tmpdir"
if [[ $MODE == smoke ]]; then
    "$RUN" perf_engine_throughput --seed "$SEED" --threads 1 \
        --codes 2 --words 16 --rounds 16 --reps 1 \
        --out "$tmpdir" > /dev/null
else
    "$RUN" perf_engine_throughput --seed "$SEED" --threads 1 \
        --out "$tmpdir" > /dev/null
fi

jsonl="$tmpdir/perf_engine_throughput.jsonl"
[[ -s $jsonl ]] || {
    echo "bench_snapshot: missing $jsonl" >&2
    exit 1
}

# Every workload row must carry the bit-identity witness.
rows=$(wc -l < "$jsonl")
matches=$(grep -c '"profiles_match":true' "$jsonl" || true)
if [[ $rows -ne 2 || $matches -ne 2 ]]; then
    echo "bench_snapshot: expected 2 rows with profiles_match=true," \
         "got $rows rows / $matches matches" >&2
    exit 1
fi

# Full mode: both workloads must hold their speedup floors on both
# sliced engines. A missing metric fails loudly (required == 1 check):
# a wide-lane engine that silently stopped reporting must not pass.
if [[ $MODE == full ]]; then
    awk '
        function check(name, key, floor) {
            if (match($0, "\"" key "\":[0-9.eE+-]+")) {
                v = substr($0, RSTART + length(key) + 3,
                           RLENGTH - length(key) - 3) + 0
                if (v < floor) {
                    printf "bench_snapshot: %s %s %.2fx below the %gx floor\n", name, key, v, floor > "/dev/stderr"
                    bad = 1
                }
            } else {
                printf "bench_snapshot: %s row missing metric %s\n", name, key > "/dev/stderr"
                bad = 1
            }
        }
        /"workload":"hamming"/ { check("Hamming", "speedup", 8)
                                 check("Hamming", "speedup_256", 8) }
        /"workload":"bch"/     { check("BCH", "speedup", 9)
                                 check("BCH", "speedup_256", 9) }
        END { exit bad }
    ' "$jsonl"
fi

# The JSONL rows are single-line JSON objects: wrap them verbatim.
{
    echo '{'
    echo '  "schema_version": 1,'
    echo '  "bench": "perf_engine_throughput",'
    echo "  \"mode\": \"$MODE\","
    echo "  \"seed\": $SEED,"
    echo '  "workloads": ['
    sed -e 's/^/    /' -e '$!s/$/,/' "$jsonl"
    echo '  ]'
    echo '}'
} > "$OUT"

echo "bench_snapshot: wrote $OUT ($MODE mode, $rows workloads)"
