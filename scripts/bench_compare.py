#!/usr/bin/env python3
"""Compare two perf-trajectory snapshots written by bench_snapshot.sh.

Usage:
    scripts/bench_compare.py OLD.json NEW.json [--threshold 0.15]
                             [--enforce | --no-enforce]
                             [--require-metric NAME]...

Prints a per-workload table of sliced-vs-scalar speedups (old -> new),
the relative delta, and the memo statistics, then exits non-zero when
any workload's speedup regressed by more than --threshold (default
15%).

--require-metric NAME (repeatable) demands that every workload row of
NEW carries a numeric metric NAME; a missing or non-numeric one fails
the run even under --no-enforce. This is a schema-presence check, not
a timing check — it exists so a snapshot that silently stopped
reporting e.g. speedup_256 can never pass as "no regression".

Regression enforcement only makes sense between two *full*-mode
snapshots: smoke snapshots run a tiny workload whose timings are pure
noise. When either side is a smoke snapshot the comparison is printed
for information and enforcement is skipped (unless --enforce forces
it); --no-enforce always skips it, e.g. for CI wiring checks.
"""

import argparse
import json
import sys


def load(path):
    try:
        with open(path, encoding="utf-8") as f:
            snap = json.load(f)
    except (OSError, json.JSONDecodeError) as e:
        sys.exit(f"bench_compare: cannot read {path}: {e}")
    for key in ("bench", "mode", "workloads"):
        if key not in snap:
            sys.exit(f"bench_compare: {path} is not a bench snapshot "
                     f"(missing '{key}')")
    rows = {}
    for row in snap["workloads"]:
        name = row.get("params", {}).get("workload", "?")
        rows[name] = row.get("metrics", {})
    return snap, rows


def fmt_num(v, spec="{:.2f}"):
    return spec.format(v) if isinstance(v, (int, float)) else "-"


def main():
    parser = argparse.ArgumentParser(
        description="Diff two BENCH_PR*.json snapshots")
    parser.add_argument("old")
    parser.add_argument("new")
    parser.add_argument("--threshold", type=float, default=0.15,
                        help="max allowed relative speedup regression "
                             "(default 0.15)")
    enforce = parser.add_mutually_exclusive_group()
    enforce.add_argument("--enforce", action="store_true",
                         help="enforce even against smoke snapshots")
    enforce.add_argument("--no-enforce", action="store_true",
                         help="never fail on regressions, just report")
    parser.add_argument("--require-metric", action="append",
                        default=[], metavar="NAME",
                        help="fail (even with --no-enforce) when any "
                             "workload row of NEW lacks a numeric "
                             "metric NAME; repeatable")
    args = parser.parse_args()

    old_snap, old_rows = load(args.old)
    new_snap, new_rows = load(args.new)

    full_pair = old_snap["mode"] == "full" and new_snap["mode"] == "full"
    enforcing = args.enforce or (full_pair and not args.no_enforce)

    print(f"bench_compare: {args.old} ({old_snap['mode']}) -> "
          f"{args.new} ({new_snap['mode']})")
    header = (f"{'workload':<10} {'old x':>8} {'new x':>8} {'delta':>8} "
              f"{'old hit%':>9} {'new hit%':>9}")
    print(header)
    print("-" * len(header))

    failures = []
    for name in sorted(set(old_rows) | set(new_rows)):
        old_m = old_rows.get(name)
        new_m = new_rows.get(name)
        if old_m is None or new_m is None:
            side = args.old if old_m is None else args.new
            print(f"{name:<10} missing from {side}")
            failures.append(f"{name}: missing from one snapshot")
            continue
        old_s = old_m.get("speedup")
        new_s = new_m.get("speedup")
        have_both = (isinstance(old_s, (int, float)) and old_s and
                     isinstance(new_s, (int, float)))
        delta = (new_s - old_s) / old_s if have_both else None
        if not isinstance(new_s, (int, float)):
            failures.append(f"{name}: no speedup metric in {args.new}")
        old_hit = old_m.get("memo_hit_rate")
        new_hit = new_m.get("memo_hit_rate")
        print(f"{name:<10} {fmt_num(old_s):>8} {fmt_num(new_s):>8} "
              f"{fmt_num(delta, '{:+.1%}') if delta is not None else '-':>8} "
              f"{fmt_num(old_hit, '{:.1%}'):>9} "
              f"{fmt_num(new_hit, '{:.1%}'):>9}")
        if not new_m.get("profiles_match", False):
            failures.append(f"{name}: profiles_match is false in "
                            f"{args.new}")
        if delta is not None and delta < -args.threshold:
            failures.append(
                f"{name}: speedup regressed {delta:+.1%} "
                f"({old_s:.2f}x -> {new_s:.2f}x, threshold "
                f"-{args.threshold:.0%})")

    # Presence requirements are unconditional: they gate schema drift,
    # not timing noise, so smoke snapshots must satisfy them too.
    hard_failures = []
    for name, new_m in sorted(new_rows.items()):
        for metric in args.require_metric:
            if not isinstance(new_m.get(metric), (int, float)):
                hard_failures.append(
                    f"{name}: required metric '{metric}' missing or "
                    f"non-numeric in {args.new}")
    if hard_failures:
        for f in hard_failures:
            print(f"bench_compare: FAIL {f}", file=sys.stderr)
        return 1

    if failures and enforcing:
        for f in failures:
            print(f"bench_compare: FAIL {f}", file=sys.stderr)
        return 1
    if failures:
        for f in failures:
            print(f"bench_compare: note (not enforced): {f}")
    if not enforcing:
        print("bench_compare: regression enforcement skipped "
              + ("(--no-enforce)" if args.no_enforce
                 else "(smoke snapshot in the pair)"))
    else:
        print("bench_compare: OK (no regression beyond "
              f"{args.threshold:.0%})")
    return 0


if __name__ == "__main__":
    sys.exit(main())
