#!/usr/bin/env bash
# Tier-1 verification: the exact ROADMAP.md command plus a smoke-run of
# the quickstart example. Exits nonzero on any failure.
set -euo pipefail

cd "$(dirname "$0")/.."

cmake -B build -S .
cmake --build build -j
(cd build && ctest --output-on-failure -j)

./build/examples/example_quickstart > /dev/null

echo "verify: OK"
