#!/usr/bin/env bash
# Tier-1 verification: the exact ROADMAP.md command, a smoke campaign
# through the harp_run experiment runner (incl. an alias binary), a
# harpd smoke (daemon + client submit, byte-compared against batch), a
# chaos smoke (injected ENOSPC -> degraded -> SIGKILL -> resume,
# byte-compared against batch), an overload smoke (two weighted tenants
# contending + a deadline-expired campaign resumed, all byte-compared
# against batch), and a docs lint (Doxygen warnings are errors; skipped
# when doxygen is not installed). Exits nonzero on any failure.
#
#   scripts/verify.sh          # tier-1 + smoke perf wiring + a 10k-chip
#                              # fleet byte-identity smoke
#   scripts/verify.sh --full   # additionally: full-scale perf snapshot
#                              # (sliced64 AND sliced256 floors + the
#                              # <= 15% regression gate against the
#                              # committed BENCH_PR6.json), the unit +
#                              # fleet + chaos + overload suites under
#                              # TSan and ASan+UBSan (-DHARP_SANITIZE),
#                              # the intra-job scaling check (>= 8 cores
#                              # only), and a million-chip fleet
#                              # acceptance sweep
set -euo pipefail

cd "$(dirname "$0")/.."

FULL=0
[[ "${1:-}" == "--full" ]] && FULL=1

cmake -B build -S .
cmake --build build -j
(cd build && ctest --output-on-failure -j)

# --- harp_run smoke -------------------------------------------------------
# The human --list footer must agree with the machine-readable registry
# (--list-json): the expected counts are *derived* from the JSON, never
# hard-coded here, so adding an experiment cannot silently break this
# check. The python snippet also cross-validates the JSON against
# itself (count == len(experiments), label_counts == recount).
listing="$(./build/src/harp_run --list)"
expected="$(./build/src/harp_run --list-json | python3 -c '
import json, sys
doc = json.load(sys.stdin)
exps = doc["experiments"]
assert doc["count"] == len(exps), "count != len(experiments)"
for label, n in doc["label_counts"].items():
    recount = sum(1 for e in exps if label in e["labels"])
    assert recount == n, f"label_counts[{label}] {n} != recount {recount}"
lc = doc["label_counts"]
count, bench, example = doc["count"], lc.get("bench", 0), lc.get("example", 0)
print(f"{count} experiments ({bench} bench, {example} example)")
')"
echo "$listing" | grep -qF "$expected" || {
    echo "verify: harp_run --list footer does not match --list-json" \
         "(expected: $expected)" >&2
    exit 1
}

# One small campaign end-to-end: runs two experiments, writes JSONL +
# summary, and must be reproducible (equal result hashes across runs).
smoke_dir="build/verify-smoke"
rm -rf "$smoke_dir"
./build/src/harp_run quickstart table01_repair_survey \
    --seed 1 --threads 2 --out "$smoke_dir/a" > /dev/null
./build/src/harp_run quickstart table01_repair_survey \
    --seed 1 --threads 1 --out "$smoke_dir/b" > /dev/null
for f in quickstart.jsonl table01_repair_survey.jsonl summary.json; do
    test -s "$smoke_dir/a/$f" || {
        echo "verify: missing campaign output $f" >&2
        exit 1
    }
done
cmp -s "$smoke_dir/a/quickstart.jsonl" "$smoke_dir/b/quickstart.jsonl" || {
    echo "verify: campaign results differ across thread counts" >&2
    exit 1
}

# Alias binaries forward into the same runner.
./build/examples/example_quickstart --out "$smoke_dir/alias" > /dev/null

# --- harpd smoke ----------------------------------------------------------
# The resident service must stream byte-identical results to a batch
# `harp_run --no-timings` for the same spec/seed, publish the identical
# files on its own data dir, agree with --list-json on the experiment
# registry, and drain cleanly on the shutdown verb (daemon exit 0).
harpd_root="$PWD/$smoke_dir/harpd"
rm -rf "$harpd_root"
mkdir -p "$harpd_root"
./build/src/harpd --socket "$harpd_root/d.sock" \
    --data "$harpd_root/data" --threads 2 \
    > "$harpd_root/daemon.log" 2>&1 &
harpd_pid=$!
trap 'kill -9 "$harpd_pid" 2> /dev/null || true' EXIT
harpd_up=0
for _ in $(seq 1 200); do
    if ./build/src/harpd_client --socket "$harpd_root/d.sock" ping \
        > /dev/null 2>&1; then
        harpd_up=1
        break
    fi
    sleep 0.05
done
[[ $harpd_up -eq 1 ]] || {
    echo "verify: harpd never came up" >&2
    cat "$harpd_root/daemon.log" >&2 || true
    exit 1
}

./build/src/harp_run quickstart --seed 3 --threads 2 --repeat 4 \
    --no-timings --out "$harpd_root/batch" > /dev/null
./build/src/harpd_client --socket "$harpd_root/d.sock" \
    submit smoke quickstart --seed 3 --repeat 4 \
    --out "$harpd_root/served" > /dev/null 2> /dev/null || {
    echo "verify: harpd_client submit failed" >&2
    exit 1
}
for f in quickstart.jsonl summary.json; do
    cmp -s "$harpd_root/batch/$f" "$harpd_root/served/$f" || {
        echo "verify: harpd streamed $f differs from batch harp_run" >&2
        exit 1
    }
    cmp -s "$harpd_root/batch/$f" "$harpd_root/data/results/smoke/$f" || {
        echo "verify: harpd published $f differs from batch harp_run" >&2
        exit 1
    }
done

# The list verb must carry the same machine-readable registry document
# as `harp_run --list-json`, and show the finished campaign.
./build/src/harpd_client --socket "$harpd_root/d.sock" list \
    > "$harpd_root/list.json"
./build/src/harp_run --list-json > "$harpd_root/list-ref.json"
python3 - "$harpd_root/list.json" "$harpd_root/list-ref.json" <<'EOF'
import json, sys
with open(sys.argv[1], encoding="utf-8") as f:
    served = json.load(f)
with open(sys.argv[2], encoding="utf-8") as f:
    reference = json.load(f)
assert served["registry"] == reference, \
    "harpd list registry != harp_run --list-json"
by_id = {c["id"]: c for c in served["campaigns"]}
assert "smoke" in by_id, f"submitted campaign missing: {sorted(by_id)}"
assert by_id["smoke"]["state"] == "done", by_id["smoke"]
EOF

./build/src/harpd_client --socket "$harpd_root/d.sock" shutdown \
    > /dev/null
wait "$harpd_pid" || {
    echo "verify: harpd exited nonzero after shutdown" >&2
    cat "$harpd_root/daemon.log" >&2 || true
    exit 1
}
trap - EXIT

# --- Chaos tier smoke -----------------------------------------------------
# Registration guard first: a mistyped ctest label matches nothing and
# exits 0, so count the fault-injection tier explicitly.
chaos_tests="$(cd build && ctest -L chaos -N | sed -n 's/^Total Tests: //p')"
[[ "${chaos_tests:-0}" -ge 4 ]] || {
    echo "verify: expected >= 4 chaos-labeled tests, found" \
         "'${chaos_tests:-none}'" >&2
    exit 1
}

# Degrade-never-corrupt end-to-end against the real binaries: a daemon
# armed with a deterministic ENOSPC schedule degrades the campaign
# (client exit 4, nothing published), survives a SIGKILL *while*
# degraded, and a clean restart auto-resumes from the checkpoint and
# publishes byte-identically to the batch run.
chaos_root="$PWD/$smoke_dir/chaos"
rm -rf "$chaos_root"
mkdir -p "$chaos_root"
./build/src/harpd --socket "$chaos_root/d.sock" \
    --data "$chaos_root/data" --threads 2 \
    --fault-plan 'write#8+=ENOSPC' \
    > "$chaos_root/daemon.log" 2>&1 &
chaos_pid=$!
trap 'kill -9 "$chaos_pid" 2> /dev/null || true' EXIT
for _ in $(seq 1 200); do
    ./build/src/harpd_client --socket "$chaos_root/d.sock" ping \
        > /dev/null 2>&1 && break
    sleep 0.05
done
chaos_rc=0
./build/src/harpd_client --socket "$chaos_root/d.sock" \
    submit chaos quickstart --seed 3 --repeat 4 \
    > /dev/null 2> "$chaos_root/client.log" || chaos_rc=$?
[[ $chaos_rc -eq 4 ]] || {
    echo "verify: expected degraded exit 4 from submit, got $chaos_rc" >&2
    cat "$chaos_root/client.log" >&2 || true
    exit 1
}
[[ -e "$chaos_root/data/results/chaos" ]] && {
    echo "verify: degraded campaign must not publish results" >&2
    exit 1
}
# disown before the SIGKILL so the shell does not report the kill as
# job-control noise ("Killed ...") on a later wait.
disown "$chaos_pid"
kill -9 "$chaos_pid"
trap - EXIT

./build/src/harpd --socket "$chaos_root/d.sock" \
    --data "$chaos_root/data" --threads 2 \
    >> "$chaos_root/daemon.log" 2>&1 &
chaos_pid=$!
trap 'kill -9 "$chaos_pid" 2> /dev/null || true' EXIT
chaos_done=0
for _ in $(seq 1 400); do
    if ./build/src/harpd_client --socket "$chaos_root/d.sock" \
        status chaos 2> /dev/null | grep -q '"done"'; then
        chaos_done=1
        break
    fi
    sleep 0.05
done
[[ $chaos_done -eq 1 ]] || {
    echo "verify: degraded campaign never resumed to done" >&2
    cat "$chaos_root/daemon.log" >&2 || true
    exit 1
}
for f in quickstart.jsonl summary.json; do
    cmp -s "$harpd_root/batch/$f" "$chaos_root/data/results/chaos/$f" || {
        echo "verify: resumed chaos campaign $f differs from batch" >&2
        exit 1
    }
done
./build/src/harpd_client --socket "$chaos_root/d.sock" shutdown \
    > /dev/null
wait "$chaos_pid" || {
    echo "verify: harpd exited nonzero after chaos shutdown" >&2
    cat "$chaos_root/daemon.log" >&2 || true
    exit 1
}
trap - EXIT

# --- Overload tier smoke --------------------------------------------------
# Registration guard first: a mistyped ctest label matches nothing and
# exits 0, so count the multi-tenant overload tier explicitly.
overload_tests="$(cd build && ctest -L overload -N | sed -n 's/^Total Tests: //p')"
[[ "${overload_tests:-0}" -ge 4 ]] || {
    echo "verify: expected >= 4 overload-labeled tests, found" \
         "'${overload_tests:-none}'" >&2
    exit 1
}

# Two-tenant fairness round-trip against the real binaries: a
# 3:1-weighted pair of tenants contends for a 2-slot pool. Whatever
# interleaving the fair scheduler picks, each campaign must publish
# byte-identically to an uninterrupted batch run — scheduling may
# reorder work, never change bytes. Then deadline propagation: a
# 1 ms deadline parks the campaign resumable (client exit 5, nothing
# published, checkpoint kept) and a plain resume finishes it to the
# same bytes.
ovl_root="$PWD/$smoke_dir/overload"
rm -rf "$ovl_root"
mkdir -p "$ovl_root"
./build/src/harp_run quickstart --seed 23 --threads 2 --repeat 32 \
    --rounds 8192 --no-timings --out "$ovl_root/batch" > /dev/null
./build/src/harpd --socket "$ovl_root/d.sock" \
    --data "$ovl_root/data" --threads 2 \
    --tenant-weight gold=3 --tenant-weight bronze=1 \
    > "$ovl_root/daemon.log" 2>&1 &
ovl_pid=$!
trap 'kill -9 "$ovl_pid" 2> /dev/null || true' EXIT
ovl_up=0
for _ in $(seq 1 200); do
    if ./build/src/harpd_client --socket "$ovl_root/d.sock" ping \
        > /dev/null 2>&1; then
        ovl_up=1
        break
    fi
    sleep 0.05
done
[[ $ovl_up -eq 1 ]] || {
    echo "verify: overload harpd never came up" >&2
    cat "$ovl_root/daemon.log" >&2 || true
    exit 1
}

./build/src/harpd_client --socket "$ovl_root/d.sock" \
    submit gold quickstart --seed 23 --repeat 32 --set rounds 8192 \
    --tenant gold > /dev/null 2>&1 &
gold_pid=$!
./build/src/harpd_client --socket "$ovl_root/d.sock" \
    submit bronze quickstart --seed 23 --repeat 32 --set rounds 8192 \
    --tenant bronze --priority background > /dev/null 2>&1 &
bronze_pid=$!
gold_rc=0
wait "$gold_pid" || gold_rc=$?
bronze_rc=0
wait "$bronze_pid" || bronze_rc=$?
[[ $gold_rc -eq 0 && $bronze_rc -eq 0 ]] || {
    echo "verify: contended submits failed (gold=$gold_rc," \
         "bronze=$bronze_rc)" >&2
    cat "$ovl_root/daemon.log" >&2 || true
    exit 1
}
for name in gold bronze; do
    for f in quickstart.jsonl summary.json; do
        cmp -s "$ovl_root/batch/$f" \
               "$ovl_root/data/results/$name/$f" || {
            echo "verify: contended campaign $name $f differs" \
                 "from batch" >&2
            exit 1
        }
    done
done

dl_rc=0
./build/src/harpd_client --socket "$ovl_root/d.sock" \
    submit expiring quickstart --seed 23 --repeat 32 \
    --set rounds 8192 --tenant gold --deadline-ms 1 \
    > /dev/null 2>&1 || dl_rc=$?
[[ $dl_rc -eq 5 ]] || {
    echo "verify: expected deadline_exceeded exit 5, got $dl_rc" >&2
    cat "$ovl_root/daemon.log" >&2 || true
    exit 1
}
[[ -e "$ovl_root/data/results/expiring" ]] && {
    echo "verify: expired campaign must not publish results" >&2
    exit 1
}
test -e "$ovl_root/data/checkpoints/expiring.ckpt" || {
    echo "verify: expired campaign lost its checkpoint" >&2
    exit 1
}
./build/src/harpd_client --socket "$ovl_root/d.sock" \
    resume expiring > /dev/null 2>&1 || {
    echo "verify: resume after deadline expiry failed" >&2
    cat "$ovl_root/daemon.log" >&2 || true
    exit 1
}
# resume is fire-and-forget; subscribe streams the revived campaign to
# its terminal event (exit 0 = done).
./build/src/harpd_client --socket "$ovl_root/d.sock" \
    subscribe expiring > /dev/null 2>&1 || {
    echo "verify: resumed campaign did not reach done" >&2
    cat "$ovl_root/daemon.log" >&2 || true
    exit 1
}
for f in quickstart.jsonl summary.json; do
    cmp -s "$ovl_root/batch/$f" \
           "$ovl_root/data/results/expiring/$f" || {
        echo "verify: resumed expired campaign $f differs from batch" >&2
        exit 1
    }
done

./build/src/harpd_client --socket "$ovl_root/d.sock" shutdown \
    > /dev/null
wait "$ovl_pid" || {
    echo "verify: harpd exited nonzero after overload shutdown" >&2
    cat "$ovl_root/daemon.log" >&2 || true
    exit 1
}
trap - EXIT

# --- Engine equivalence ---------------------------------------------------
# A seed-fixed campaign must be byte-identical under the scalar,
# sliced64 and sliced256 profiling engines (70 words/code exercises a
# ragged 64+6 sliced block at W=1 and a 70-lane wide block at W=4;
# fig10 exercises heterogeneous per-lane codes).
for engine in scalar sliced64 sliced256; do
    ./build/src/harp_run fig06_direct_coverage fig10_case_study \
        --seed 5 --threads 2 --engine "$engine" \
        --codes 1 --words 70 --rounds 6 --prob 0.5 --pre_errors 3 \
        --samples 5 --max_cells 2 \
        --out "$smoke_dir/engine-$engine" > /dev/null
done
for engine in sliced64 sliced256; do
    for f in fig06_direct_coverage.jsonl fig10_case_study.jsonl; do
        cmp -s "$smoke_dir/engine-scalar/$f" \
               "$smoke_dir/engine-$engine/$f" || {
            echo "verify: $f differs between scalar and $engine" >&2
            exit 1
        }
    done
done

# The BCH t-sweep must be byte-identical too: the memoized sliced BCH
# datapath is exactly equivalent to the scalar Berlekamp-Massey
# decoder at every lane width (70 words/point exercises a ragged
# 64 + 6 sliced block).
for engine in scalar sliced64 sliced256; do
    ./build/src/harp_run bch_t_sweep \
        --seed 9 --threads 2 --engine "$engine" \
        --words 70 --rounds 6 \
        --out "$smoke_dir/bch-$engine" > /dev/null
done
for engine in sliced64 sliced256; do
    cmp -s "$smoke_dir/bch-scalar/bch_t_sweep.jsonl" \
           "$smoke_dir/bch-$engine/bch_t_sweep.jsonl" || {
        echo "verify: bch_t_sweep.jsonl differs between scalar and $engine" >&2
        exit 1
    }
done

# Heterogeneous per-word codes through the lane-native observation
# path (Naive/HARP-U lanes) must also stay byte-identical.
for engine in scalar sliced64 sliced256; do
    ./build/src/harp_run extension_low_probability \
        --seed 11 --threads 2 --engine "$engine" \
        --words 70 --rounds 8 \
        --out "$smoke_dir/elp-$engine" > /dev/null
done
for engine in sliced64 sliced256; do
    cmp -s "$smoke_dir/elp-scalar/extension_low_probability.jsonl" \
           "$smoke_dir/elp-$engine/extension_low_probability.jsonl" || {
        echo "verify: extension_low_probability.jsonl differs" \
             "(scalar vs $engine)" >&2
        exit 1
    }
done

# --- Fleet tier smoke -----------------------------------------------------
# The fleet simulator's registration guard first: a mistyped ctest
# label matches nothing and exits 0, so count the tier explicitly.
fleet_tests="$(cd build && ctest -L fleet -N | sed -n 's/^Total Tests: //p')"
[[ "${fleet_tests:-0}" -ge 4 ]] || {
    echo "verify: expected >= 4 fleet-labeled tests, found" \
         "'${fleet_tests:-none}'" >&2
    exit 1
}

# A 10k-chip policy sweep must be byte-identical across thread counts
# and across the sliced64/sliced256 engines (the fleet CRN contract,
# end-to-end through harp_run).
for variant in t1-sliced64 t4-sliced64 t4-sliced256; do
    threads="${variant#t}"
    threads="${threads%%-*}"
    engine="${variant#*-}"
    ./build/src/harp_run fleet_policy_sweep \
        --seed 17 --threads "$threads" --engine "$engine" \
        --chips 10000 --fit_scale 50 --windows 6 --rounds 8 \
        --profiler harp_u \
        --out "$smoke_dir/fleet-$variant" > /dev/null
done
for variant in t4-sliced64 t4-sliced256; do
    cmp -s "$smoke_dir/fleet-t1-sliced64/fleet_policy_sweep.jsonl" \
           "$smoke_dir/fleet-$variant/fleet_policy_sweep.jsonl" || {
        echo "verify: fleet_policy_sweep.jsonl differs" \
             "(t1-sliced64 vs $variant)" >&2
        exit 1
    }
done

# --- Perf snapshot (smoke) ------------------------------------------------
# Wiring + bit-identity witness of the engine-throughput bench, and a
# non-enforcing bench_compare against the committed snapshot (smoke
# timings are noise; the comparison checks the tooling end-to-end).
scripts/bench_snapshot.sh --smoke --out "$smoke_dir/BENCH_smoke.json"
test -s "$smoke_dir/BENCH_smoke.json" || {
    echo "verify: bench_snapshot smoke wrote no snapshot" >&2
    exit 1
}
scripts/bench_compare.py BENCH_PR6.json "$smoke_dir/BENCH_smoke.json" \
    --no-enforce --require-metric speedup --require-metric speedup_256

# --- Perf snapshot (full) -------------------------------------------------
# Full mode: re-measure at snapshot scale, enforce the sliced64 AND
# sliced256 floors (Hamming >= 8x, BCH >= 9x, inside bench_snapshot.sh)
# and fail on a > 15% speedup regression against the committed
# snapshot. --require-metric makes a silently-missing wide-lane metric
# a hard failure instead of a skipped comparison.
if [[ $FULL -eq 1 ]]; then
    scripts/bench_snapshot.sh --out "$smoke_dir/BENCH_full.json"
    scripts/bench_compare.py BENCH_PR6.json "$smoke_dir/BENCH_full.json" \
        --require-metric speedup --require-metric speedup_256
fi

# --- Sanitizer tier (full) ------------------------------------------------
# The whole unit suite under TSan (memo sharing + intra-job sharding
# races) and ASan+UBSan (lane/transpose pointer arithmetic), in
# dedicated build trees so the sanitizer runtimes never mix with the
# primary build/. The unit label includes the harpd protocol,
# checkpoint, and in-process server suites; the merger/bounded-queue
# contention stress and the out-of-process kill/resume properties are
# labeled stress/integration, so they are run explicitly here.
if [[ $FULL -eq 1 ]]; then
    for san in thread address; do
        sdir="build-tsan"
        [[ $san == address ]] && sdir="build-asan"
        cmake -B "$sdir" -S . -DHARP_SANITIZE="$san" \
            -DHARP_BUILD_BENCH=OFF -DHARP_BUILD_EXAMPLES=OFF > /dev/null
        cmake --build "$sdir" -j
        (cd "$sdir" && ctest -L unit --output-on-failure -j) || {
            echo "verify: unit suite failed under $san sanitizer" >&2
            exit 1
        }
        (cd "$sdir" && ctest --output-on-failure \
            -R '^(test_merge_queue_stress|test_harpd_resume)$') || {
            echo "verify: harpd stress/resume failed under $san" >&2
            exit 1
        }
        # The fault-injection tier: injected I/O faults -> degraded ->
        # resume, SIGKILL-while-degraded, client retries — all with the
        # sanitizer watching the failure paths themselves.
        (cd "$sdir" && ctest -L chaos --output-on-failure) || {
            echo "verify: chaos tier failed under $san sanitizer" >&2
            exit 1
        }
        # The fleet statistical/property tier (chi-square/KS sampler
        # GOF, monotonicity sweeps, cross-engine/thread identity) is
        # labeled integration, so run it explicitly under sanitizers.
        (cd "$sdir" && ctest -L fleet --output-on-failure) || {
            echo "verify: fleet tier failed under $san sanitizer" >&2
            exit 1
        }
        # The overload tier: weighted fair scheduling, bounded
        # admission queues, deadline cancellation, and SIGTERM/SIGHUP
        # handling under multi-tenant contention — the scheduler's
        # locking and the cancel/drain paths are exactly where a data
        # race or use-after-free would hide.
        (cd "$sdir" && ctest -L overload --output-on-failure) || {
            echo "verify: overload tier failed under $san sanitizer" >&2
            exit 1
        }
    done
fi

# --- Fleet acceptance scale (full) ----------------------------------------
# A million-chip policy sweep completes on one machine with
# byte-identical JSONL across --threads {1, 4, hw} and across the
# sliced64/sliced256 engines.
if [[ $FULL -eq 1 ]]; then
    for variant in t1-sliced64 t4-sliced64 thw-sliced64 thw-sliced256; do
        threads="${variant#t}"
        threads="${threads%%-*}"
        [[ "$threads" == "hw" ]] && threads=0
        engine="${variant#*-}"
        ./build/src/harp_run fleet_policy_sweep \
            --seed 29 --threads "$threads" --engine "$engine" \
            --chips 1000000 --fit_scale 20 --windows 8 --rounds 16 \
            --profiler harp_u \
            --out "$smoke_dir/fleet1m-$variant" > /dev/null
    done
    for variant in t4-sliced64 thw-sliced64 thw-sliced256; do
        cmp -s "$smoke_dir/fleet1m-t1-sliced64/fleet_policy_sweep.jsonl" \
               "$smoke_dir/fleet1m-$variant/fleet_policy_sweep.jsonl" || {
            echo "verify: 1M-chip fleet sweep differs" \
                 "(t1-sliced64 vs $variant)" >&2
            exit 1
        }
    done
fi

# --- Intra-job scaling (full, hardware-gated) -----------------------------
# One heavy (point, repeat) job must scale through intra-job block
# sharding: >= 3x wall-clock from --threads 1 to --threads 8 with
# byte-identical JSONL. Meaningless below 8 cores, so gated on nproc.
if [[ $FULL -eq 1 ]]; then
    if [[ "$(nproc)" -ge 8 ]]; then
        for t in 1 8; do
            ./build/src/harp_run fig06_direct_coverage \
                --seed 21 --threads "$t" --codes 1 --words 4096 \
                --rounds 24 --prob 0.5 --pre_errors 3 \
                --out "$smoke_dir/scale-$t" > /dev/null
        done
        cmp -s "$smoke_dir/scale-1/fig06_direct_coverage.jsonl" \
               "$smoke_dir/scale-8/fig06_direct_coverage.jsonl" || {
            echo "verify: sharded JSONL differs from single-threaded" >&2
            exit 1
        }
        python3 - "$smoke_dir/scale-1/summary.json" \
                  "$smoke_dir/scale-8/summary.json" <<'EOF'
import json, sys
walls = []
for path in sys.argv[1:]:
    with open(path, encoding="utf-8") as f:
        walls.append(json.load(f)["experiments"][0]["wall_seconds"])
scale = walls[0] / walls[1] if walls[1] > 0 else float("inf")
print(f"verify: intra-job scaling 1->8 threads: {scale:.2f}x")
sys.exit(0 if scale >= 3.0 else 1)
EOF
    else
        echo "verify: < 8 hardware threads, skipping intra-job" \
             "scaling check"
    fi
fi

# --- Docs lint ------------------------------------------------------------
if command -v doxygen > /dev/null 2>&1; then
    cmake -B build -S . -DHARP_BUILD_DOCS=ON > /dev/null
    cmake --build build --target docs
    cmake -B build -S . -DHARP_BUILD_DOCS=OFF > /dev/null
else
    echo "verify: doxygen not installed, skipping docs lint"
fi

echo "verify: OK"
