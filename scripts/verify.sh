#!/usr/bin/env bash
# Tier-1 verification: the exact ROADMAP.md command, a smoke campaign
# through the harp_run experiment runner (incl. an alias binary), and a
# docs lint (Doxygen warnings are errors; skipped when doxygen is not
# installed). Exits nonzero on any failure.
#
#   scripts/verify.sh          # tier-1 + smoke perf wiring
#   scripts/verify.sh --full   # additionally runs the full-scale perf
#                              # snapshot, enforcing the Hamming >= 8x /
#                              # BCH >= 9x floors and the <= 15%
#                              # regression gate against the committed
#                              # BENCH_PR5.json
set -euo pipefail

cd "$(dirname "$0")/.."

FULL=0
[[ "${1:-}" == "--full" ]] && FULL=1

cmake -B build -S .
cmake --build build -j
(cd build && ctest --output-on-failure -j)

# --- harp_run smoke -------------------------------------------------------
# The registry must expose every ported bench + example experiment plus
# the engine-throughput perf experiment.
listing="$(./build/src/harp_run --list)"
echo "$listing" | grep -q "20 experiments (16 bench, 4 example)" || {
    echo "verify: harp_run --list does not show 20 experiments" >&2
    exit 1
}

# One small campaign end-to-end: runs two experiments, writes JSONL +
# summary, and must be reproducible (equal result hashes across runs).
smoke_dir="build/verify-smoke"
rm -rf "$smoke_dir"
./build/src/harp_run quickstart table01_repair_survey \
    --seed 1 --threads 2 --out "$smoke_dir/a" > /dev/null
./build/src/harp_run quickstart table01_repair_survey \
    --seed 1 --threads 1 --out "$smoke_dir/b" > /dev/null
for f in quickstart.jsonl table01_repair_survey.jsonl summary.json; do
    test -s "$smoke_dir/a/$f" || {
        echo "verify: missing campaign output $f" >&2
        exit 1
    }
done
cmp -s "$smoke_dir/a/quickstart.jsonl" "$smoke_dir/b/quickstart.jsonl" || {
    echo "verify: campaign results differ across thread counts" >&2
    exit 1
}

# Alias binaries forward into the same runner.
./build/examples/example_quickstart --out "$smoke_dir/alias" > /dev/null

# --- Engine equivalence ---------------------------------------------------
# A seed-fixed campaign must be byte-identical under the scalar and
# sliced64 profiling engines (70 words/code exercises a ragged 64+6
# sliced block; fig10 exercises heterogeneous per-lane codes).
for engine in scalar sliced64; do
    ./build/src/harp_run fig06_direct_coverage fig10_case_study \
        --seed 5 --threads 2 --engine "$engine" \
        --codes 1 --words 70 --rounds 6 --prob 0.5 --pre_errors 3 \
        --samples 5 --max_cells 2 \
        --out "$smoke_dir/engine-$engine" > /dev/null
done
for f in fig06_direct_coverage.jsonl fig10_case_study.jsonl; do
    cmp -s "$smoke_dir/engine-scalar/$f" "$smoke_dir/engine-sliced64/$f" || {
        echo "verify: $f differs between scalar and sliced64 engines" >&2
        exit 1
    }
done

# The BCH t-sweep must be byte-identical too: the memoized sliced BCH
# datapath is exactly equivalent to the scalar Berlekamp-Massey
# decoder (70 words/point exercises a ragged 64 + 6 sliced block).
for engine in scalar sliced64; do
    ./build/src/harp_run bch_t_sweep \
        --seed 9 --threads 2 --engine "$engine" \
        --words 70 --rounds 6 \
        --out "$smoke_dir/bch-$engine" > /dev/null
done
cmp -s "$smoke_dir/bch-scalar/bch_t_sweep.jsonl" \
       "$smoke_dir/bch-sliced64/bch_t_sweep.jsonl" || {
    echo "verify: bch_t_sweep.jsonl differs between scalar and sliced64" >&2
    exit 1
}

# Heterogeneous per-word codes through the lane-native observation
# path (Naive/HARP-U lanes) must also stay byte-identical.
for engine in scalar sliced64; do
    ./build/src/harp_run extension_low_probability \
        --seed 11 --threads 2 --engine "$engine" \
        --words 70 --rounds 8 \
        --out "$smoke_dir/elp-$engine" > /dev/null
done
cmp -s "$smoke_dir/elp-scalar/extension_low_probability.jsonl" \
       "$smoke_dir/elp-sliced64/extension_low_probability.jsonl" || {
    echo "verify: extension_low_probability.jsonl differs between engines" >&2
    exit 1
}

# --- Perf snapshot (smoke) ------------------------------------------------
# Wiring + bit-identity witness of the engine-throughput bench, and a
# non-enforcing bench_compare against the committed snapshot (smoke
# timings are noise; the comparison checks the tooling end-to-end).
scripts/bench_snapshot.sh --smoke --out "$smoke_dir/BENCH_smoke.json"
test -s "$smoke_dir/BENCH_smoke.json" || {
    echo "verify: bench_snapshot smoke wrote no snapshot" >&2
    exit 1
}
scripts/bench_compare.py BENCH_PR5.json "$smoke_dir/BENCH_smoke.json" \
    --no-enforce

# --- Perf snapshot (full) -------------------------------------------------
# Full mode: re-measure at snapshot scale, enforce the Hamming >= 8x /
# BCH >= 9x floors (inside bench_snapshot.sh) and fail on a > 15%
# speedup regression against the committed snapshot.
if [[ $FULL -eq 1 ]]; then
    scripts/bench_snapshot.sh --out "$smoke_dir/BENCH_full.json"
    scripts/bench_compare.py BENCH_PR5.json "$smoke_dir/BENCH_full.json"
fi

# --- Docs lint ------------------------------------------------------------
if command -v doxygen > /dev/null 2>&1; then
    cmake -B build -S . -DHARP_BUILD_DOCS=ON > /dev/null
    cmake --build build --target docs
    cmake -B build -S . -DHARP_BUILD_DOCS=OFF > /dev/null
else
    echo "verify: doxygen not installed, skipping docs lint"
fi

echo "verify: OK"
